"""Serving KGNet over HTTP: the SPARQL 1.1 Protocol end to end.

The demo boots a durable platform behind :class:`repro.server.KGNetHTTPServer`,
then talks to it three ways:

1. :class:`repro.server.RemoteClient` — the pure-stdlib network client that
   mirrors ``APIClient``'s surface (envelope ops + raw SPARQL protocol),
2. plain :mod:`urllib` — proving any stock HTTP client can play,
3. content negotiation — the same SELECT served as JSON, XML, CSV and TSV.

Run from the repository root::

    PYTHONPATH=src python examples/http_server.py

Pass ``--serve --port 8765`` to keep the server up for manual curl poking
(CI's HTTP smoke job uses exactly that)::

    curl -H 'Accept: text/csv' 'http://127.0.0.1:8765/sparql?query=SELECT...'
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
import urllib.request
from urllib.parse import quote

from repro.kgnet import KGNet
from repro.server import RemoteClient, serve
from repro.storage import StorageEngine

TURTLE = """
@prefix ex: <http://example.org/demo/> .
ex:alice  ex:knows ex:bob ;   ex:name "Alice" .
ex:bob    ex:knows ex:carol ; ex:name "Bob" .
ex:carol  ex:name "Carol\\u2728" .
"""

NAMES = "SELECT ?who ?name WHERE { ?who <http://example.org/demo/name> ?name } ORDER BY ?name"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", action="store_true",
                        help="keep serving until interrupted (for curl/CI)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (default: ephemeral)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="kgnet-http-") as directory:
        platform = KGNet(storage=StorageEngine(directory))
        server = serve(platform.api, port=args.port)
        print(f"serving {server.base_url}  (SPARQL at /sparql, "
              f"envelopes at /kgnet/v1/<op>)")

        client = RemoteClient(server.base_url)

        # --- bulk-load over the wire, durably (checkpoint included) -------
        report = client.call("admin/bulk_load", turtle=TURTLE)
        print(f"bulk-loaded {report['triples_added']} triples "
              f"({report['total_triples']} total, checkpointed)")

        # --- the same SELECT in all four negotiated formats ---------------
        for accept in ("application/sparql-results+json",
                       "application/sparql-results+xml",
                       "text/csv", "text/tab-separated-values"):
            status, content_type, body = client.protocol_query(
                NAMES, accept=accept)
            lines = body.strip().splitlines()
            preview = lines[min(1, len(lines) - 1)][:60]
            print(f"  {status} {content_type:<36} | {preview}")

        # --- update via POST, then re-query --------------------------------
        client.protocol_update(
            "INSERT DATA { <http://example.org/demo/dave> "
            '<http://example.org/demo/name> "Dave" }')
        rows = client.protocol_select(NAMES)
        print("after update:", [row["name"]["value"] for row in rows])

        # --- raw urllib: any stock HTTP client works -----------------------
        url = (server.base_url + "/sparql?query=" + quote(NAMES, safe=""))
        request = urllib.request.Request(
            url, headers={"Accept": "application/sparql-results+json"})
        with urllib.request.urlopen(request) as response:
            document = json.loads(response.read())
        print("urllib sees:", [row["name"]["value"]
                               for row in document["results"]["bindings"]])

        # --- envelope ops ride the same server -----------------------------
        metrics = client.metrics()
        print(f"route metrics: sparql p99 = "
              f"{metrics['sparql']['p99_seconds']}s over "
              f"{metrics['sparql']['calls']} calls")

        if args.serve:
            print("serving until interrupted (Ctrl-C) ...")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
        client.close()
        server.stop()
        platform.storage.close()


if __name__ == "__main__":
    main()
