"""Quickstart: drive the whole KGNet platform through the service API.

This walks the KGNet loop of the paper, but the way the paper deploys it —
as a *service*: every step below travels through a versioned JSON envelope
(`repro.kgnet.api`), exactly what a remote HTTP client would send:

1. load a knowledge graph into the platform's RDF endpoint,
2. train a node-classification model with a SPARQL-ML INSERT (paper Fig 8),
3. query the KG *and* the model with a SPARQL-ML SELECT (paper Fig 2),
4. run batched inference (one amortised call for many nodes),
5. inspect KGMeta and drop the model with a SPARQL-ML DELETE (paper Fig 9).

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro.datasets import DBLPConfig, generate_dblp_kg
from repro.kgnet import APIClient

TRAIN_QUERY = """
prefix dblp:<https://www.dblp.org/>
prefix kgnet:<https://www.kgnet.com/>
Insert into <kgnet> { ?s ?p ?o }
where {select * from kgnet.TrainGML(
  {Name: 'DBLP_Paper-Venue_Classifier',
   GML-Task:{ TaskType: kgnet:NodeClassifier,
              TargetNode: dblp:Publication,
              NodeLable: dblp:publishedIn},
   Task Budget:{ MaxMemory:8GB, MaxTime:10min, Priority:ModelScore} } )};
"""

SELECT_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
select ?title ?venue
where {
?paper a dblp:Publication.
?paper dblp:title ?title.
?paper ?NodeClassifier ?venue.
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode dblp:Publication.
?NodeClassifier kgnet:NodeLabel dblp:publishedIn.}
"""

DELETE_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
delete {?NodeClassifier ?p ?o}
where {
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode dblp:Publication.
?NodeClassifier kgnet:NodeLabel dblp:publishedIn.}
"""


def main() -> None:
    # 1. Stand up a platform behind a JSON-only API client and load a KG.
    client = APIClient.in_process()
    graph = generate_dblp_kg(DBLPConfig(scale=0.3, seed=7))
    loaded = client.load_graph(graph)
    print(f"Loaded KG with {loaded['total_triples']} triples")

    # 2. Train a paper-venue classifier via SPARQL-ML INSERT.  The response
    #    is the plain-JSON projection of the training report.
    report = client.train(query=TRAIN_QUERY)
    print(f"\nTrained model {report['model_uri']}")
    print(f"  method           : {report['method']} (picked automatically)")
    print(f"  accuracy         : {report['metrics']['accuracy']:.2%}")
    print(f"  KG' triples      : {report['meta_sampling']['num_subgraph_triples']} "
          f"of {report['meta_sampling']['num_kg_triples']} "
          f"({report['meta_sampling']['config']} meta-sampling)")
    print(f"  training time    : {report['training']['elapsed_seconds']:.2f} s")

    # 3. Ask for every paper's (predicted) venue with a SPARQL-ML SELECT.
    #    Large result sets page through server-side cursors.
    answers = client.query(SELECT_QUERY, page_size=5)
    print(f"\nSPARQL-ML SELECT returned {answers['num_results']} rows "
          f"using plan '{answers['plans'][0]['plan']}' "
          f"({answers['http_calls']} HTTP call(s))")
    for row in answers["rows"]:
        print(f"  {row['title']!r:42} -> {row['venue']}")
    fetched = sum(1 for _ in client.iter_pages(answers, "rows"))
    print(f"  ... followed cursors through the remaining "
          f"{fetched - len(answers['rows'])} rows ({fetched} total)")

    # 4. Batched inference: classify many papers with ONE amortised call.
    papers = [row["s"] for row in client.sparql(
        "SELECT ?s WHERE { ?s a <https://www.dblp.org/Publication> }")["rows"]]
    batch = client.infer_batch(report["model_uri"], papers[:10])
    print(f"\ninfer_batch classified {batch['total']} papers "
          f"in {batch['http_calls']} HTTP call(s)")

    # 5. KGMeta knows about the model; DELETE removes it again.
    print("\nModels registered in KGMeta:")
    for model in client.list_models():
        print(f"  {model['uri']}  accuracy={model['accuracy']:.2f} "
              f"inference={model['inference_seconds'] * 1000:.1f} ms")
    deletion = client.delete_models(DELETE_QUERY)
    print(f"\nDeleted {len(deletion['deleted_models'])} model(s); "
          f"KGMeta now holds {len(client.list_models())} model(s)")

    # Every call above crossed a JSON boundary; the router kept score.
    metrics = client.metrics()
    print("\nPer-route API metrics:")
    for op, row in metrics.items():
        print(f"  {op:15} calls={row['calls']:3}  mean={row['mean_seconds'] * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
