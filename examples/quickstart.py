"""Quickstart: load a KG, train a model with SPARQL-ML, query it.

This walks through the KGNet loop of the paper in ~60 lines:

1. load a knowledge graph into the platform's RDF endpoint,
2. train a node-classification model with a SPARQL-ML INSERT (paper Fig 8) —
   the platform meta-samples a task-specific subgraph, picks a GML method
   within the budget, trains it and registers the model in KGMeta,
3. query the KG *and* the model with a SPARQL-ML SELECT (paper Fig 2),
4. inspect KGMeta and drop the model with a SPARQL-ML DELETE (paper Fig 9).

Run:  python examples/quickstart.py
"""

from repro.datasets import DBLPConfig, generate_dblp_kg
from repro.kgnet import KGNet

TRAIN_QUERY = """
prefix dblp:<https://www.dblp.org/>
prefix kgnet:<https://www.kgnet.com/>
Insert into <kgnet> { ?s ?p ?o }
where {select * from kgnet.TrainGML(
  {Name: 'DBLP_Paper-Venue_Classifier',
   GML-Task:{ TaskType: kgnet:NodeClassifier,
              TargetNode: dblp:Publication,
              NodeLable: dblp:publishedIn},
   Task Budget:{ MaxMemory:8GB, MaxTime:10min, Priority:ModelScore} } )};
"""

SELECT_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
select ?title ?venue
where {
?paper a dblp:Publication.
?paper dblp:title ?title.
?paper ?NodeClassifier ?venue.
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode dblp:Publication.
?NodeClassifier kgnet:NodeLabel dblp:publishedIn.}
"""

DELETE_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
delete {?NodeClassifier ?p ?o}
where {
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode dblp:Publication.
?NodeClassifier kgnet:NodeLabel dblp:publishedIn.}
"""


def main() -> None:
    # 1. Stand up the platform and load a DBLP-like knowledge graph.
    platform = KGNet()
    graph = generate_dblp_kg(DBLPConfig(scale=0.3, seed=7))
    platform.load_graph(graph)
    print(f"Loaded KG with {len(platform.graph)} triples")

    # 2. Train a paper-venue classifier via SPARQL-ML INSERT.
    report = platform.train_sparqlml(TRAIN_QUERY)
    print(f"\nTrained model {report.model_uri}")
    print(f"  method           : {report.method} (picked automatically)")
    print(f"  accuracy         : {report.metrics['accuracy']:.2%}")
    print(f"  KG' triples      : {report.meta_sampling['num_subgraph_triples']} "
          f"of {report.meta_sampling['num_kg_triples']} "
          f"({report.meta_sampling['config']} meta-sampling)")
    print(f"  training time    : {report.training['elapsed_seconds']:.2f} s")

    # 3. Ask for every paper's (predicted) venue with a SPARQL-ML SELECT.
    answers = platform.query(SELECT_QUERY)
    print(f"\nSPARQL-ML SELECT returned {len(answers.results)} rows "
          f"using plan '{answers.plans[0].plan}' ({answers.http_calls} HTTP call(s))")
    print(answers.results.to_table(max_rows=5))

    # 4. KGMeta knows about the model; DELETE removes it again.
    print("\nModels registered in KGMeta:")
    for model in platform.list_models():
        print(f"  {model.uri.value}  accuracy={model.accuracy:.2f} "
              f"inference={model.inference_seconds * 1000:.1f} ms")
    deletion = platform.delete_models(DELETE_QUERY)
    print(f"\nDeleted {len(deletion.deleted_models)} model(s); "
          f"KGMeta now holds {len(platform.list_models())} model(s)")


if __name__ == "__main__":
    main()
