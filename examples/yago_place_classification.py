"""Place-country classification on the YAGO-4-like KG, with and without KGNet.

Reproduces the comparison behind paper Fig 14 as a runnable script: the same
GML method is trained once on the full KG (the traditional OGB-style
pipeline) and once on the task-specific subgraph extracted by KGNet's
meta-sampler, and the script reports accuracy, training time, memory and the
size of what each pipeline had to load.

Run:  python examples/yago_place_classification.py [method]
      method ∈ {graph_saint, rgcn, shadow_saint}, default graph_saint
"""

import sys

from repro.datasets import YAGOConfig, generate_yago_kg, yago_place_country_task
from repro.kgnet import KGNet
from repro.rdf.stats import compute_statistics, format_table

COUNTRY_QUERY = """
prefix yago: <http://yago-knowledge.org/resource/>
prefix kgnet: <https://www.kgnet.com/>
select ?place ?country
where {
?place a yago:Place.
?place ?NodeClassifier ?country.
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode yago:Place.
?NodeClassifier kgnet:NodeLabel yago:locatedInCountry.}
"""


def main() -> None:
    method = sys.argv[1] if len(sys.argv) > 1 else "graph_saint"
    platform = KGNet()
    graph = generate_yago_kg(YAGOConfig(scale=0.4, seed=7))
    platform.load_graph(graph)
    task = yago_place_country_task()

    stats = compute_statistics(graph)
    print(f"YAGO-like KG: {stats.num_triples} triples, "
          f"{stats.num_node_types} node types, {stats.num_edge_types} edge types")

    rows = []
    for label, use_meta in (("full KG (traditional pipeline)", False),
                            ("KGNet KG' (meta-sampling d1h1)", True)):
        report = platform.train_task(task, method=method,
                                     use_meta_sampling=use_meta)
        rows.append({
            "pipeline": label,
            "accuracy_%": round(report.metrics["accuracy"] * 100, 1),
            "f1_macro_%": round(report.metrics["f1_macro"] * 100, 1),
            "train_time_s": round(report.training["elapsed_seconds"], 2),
            "memory_MB": round(report.training["peak_memory_bytes"] / 1e6, 1),
            "triples_used": (report.meta_sampling.get("num_subgraph_triples")
                             if use_meta else len(platform.graph)),
        })

    print("\n" + format_table(rows, title=f"Place-country classification with {method}"))

    # The most recent model answers SPARQL-ML queries; show a few predictions.
    answers = platform.query(COUNTRY_QUERY)
    print(f"\nPredicted countries for {len(answers.results)} places "
          f"({answers.http_calls} HTTP call(s), plan={answers.plans[0].plan}):")
    print(answers.results.to_table(max_rows=5))


if __name__ == "__main__":
    main()
