"""Durability walkthrough: open → bulk load → checkpoint → crash → recover.

Demonstrates the ``repro.storage`` subsystem end to end:

1. open a :class:`~repro.storage.StorageEngine` over an empty directory,
2. stream a synthetic Turtle KG through the bulk loader (batched id-space
   inserts + automatic checkpoint),
3. commit live updates through the write-ahead log,
4. "crash" (drop the platform without any shutdown ceremony) and reopen —
   recovery replays the committed WAL suffix on top of the checkpoint,
5. compact the log via ``admin/persist`` and inspect the storage metrics.

Run with::

    PYTHONPATH=src python examples/persistent_store.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro import KGNet, StorageEngine

EX = "http://example.org/demo/"


def synthetic_turtle(papers: int = 500) -> str:
    lines = ["@prefix ex: <http://example.org/demo/> ."]
    for index in range(papers):
        lines.append(
            f'ex:paper{index} a ex:Publication ; '
            f'ex:title "Paper {index}"@en ; '
            f'ex:year {1990 + index % 35} ; '
            f'ex:venue ex:venue{index % 7} .')
    # Anonymous blank nodes work too (new in the ISSUE-4 parser):
    lines.append('ex:paper0 ex:reviewedBy [ ex:name "Reviewer" ; '
                 'ex:grade "A" ] .')
    return "\n".join(lines)


def main() -> None:
    directory = tempfile.mkdtemp(prefix="kgnet-demo-store-")
    try:
        # -- first process lifetime ------------------------------------
        platform = KGNet(storage=StorageEngine(directory))
        load = platform.client.call("admin/bulk_load",
                                    turtle=synthetic_turtle())
        print(f"bulk-loaded {load['triples_added']} triples in "
              f"{load['batches']} batches "
              f"({load['triples_per_second']:.0f} triples/s), "
              "checkpointed")

        platform.sparql(f'INSERT DATA {{ <{EX}paper0> <{EX}award> "best" }}')
        platform.sparql(f'INSERT DATA {{ <{EX}paper1> <{EX}award> "runner-up" }}')
        total = len(platform.endpoint.graph)
        print(f"after journalled updates: {total} triples "
              "(each INSERT fsynced at its commit epoch)")
        platform.storage.close()  # simulate a crash: nothing else persisted

        # -- second process lifetime -----------------------------------
        engine = StorageEngine(directory)
        rebooted = KGNet(storage=engine)
        print(f"recovered {len(rebooted.endpoint.graph)} triples "
              f"(checkpoint + {engine.recovered_transactions} replayed "
              "WAL transactions)")

        rows = rebooted.sparql(
            f"SELECT ?p ?a WHERE {{ ?p <{EX}award> ?a }}").to_python()
        print("awards survived the restart:", rows)

        persist = rebooted.client.call("admin/persist")
        print(f"compacted: checkpoint of {persist['checkpoint']['triples']} "
              f"triples in {persist['checkpoint']['seconds']}s, WAL rotated")
        stats = rebooted.client.call("metrics")["storage"]
        print(f"storage stats: wal_seq={stats['wal']['last_seq']}, "
              f"checkpoints={stats['checkpoints_written']}")
        rebooted.storage.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
