"""Budget-aware automatic method selection (the GMLaaS "GML optimizer").

Paper §IV-A: the TrainGML request carries a memory/time budget and a
priority; the GML optimizer estimates each method's cost from the sparse-
matrix sizes and picks the near-optimal method within the budget.  This
example sweeps budgets on the DBLP paper-venue task and shows

* which method the selector picks per budget and why (the cost estimates),
* that the chosen method is then actually trained and registered,
* what happens when no method fits (the selector falls back and flags it).

Run:  python examples/budget_aware_automl.py
"""

from repro.datasets import DBLPConfig, dblp_paper_venue_task, generate_dblp_kg
from repro.gml.train import MethodCostEstimator, TaskBudget
from repro.gml.transform import RDFGraphTransformer
from repro.kgnet import KGNet, MethodSelector, MetaSampler, MetaSamplingConfig
from repro.rdf.stats import format_table


def main() -> None:
    graph = generate_dblp_kg(DBLPConfig(scale=0.3, seed=7))
    task = dblp_paper_venue_task()

    # The selector works on the meta-sampled subgraph, exactly like the platform.
    subgraph, sampling = MetaSampler(MetaSamplingConfig(1, 1)).extract(graph, task)
    transformer = RDFGraphTransformer(feature_dim=24)
    data, _ = transformer.to_node_classification_data(
        subgraph, task.target_node_type, task.label_predicate)
    print(f"Task-specific subgraph: {sampling.num_subgraph_triples} of "
          f"{sampling.num_kg_triples} triples -> {data.num_nodes} nodes, "
          f"{data.num_relations} relations")

    # --- cost estimates per method -------------------------------------------
    estimator = MethodCostEstimator(hidden_dim=24)
    rows = []
    for method in ("rgcn", "gcn", "gat", "graph_saint", "shadow_saint"):
        estimate = estimator.estimate(method, data)
        rows.append({
            "method": method,
            "est_memory_MB": round(estimate.memory_bytes / 1e6, 2),
            "est_time_s": round(estimate.time_seconds, 2),
            "accuracy_prior": estimate.accuracy_prior,
        })
    print("\n" + format_table(rows, title="Cost estimates (paper Fig 6, 'Optimal GML "
                                           "Method Selection')"))

    # --- what gets selected under different budgets ---------------------------
    selector = MethodSelector(estimator)
    rgcn_memory = estimator.estimate("rgcn", data).memory_bytes
    budgets = [
        ("unconstrained / ModelScore", TaskBudget()),
        ("priority = Time", TaskBudget(priority="Time")),
        ("memory < RGCN's need", TaskBudget(max_memory_bytes=rgcn_memory * 0.9)),
        ("impossible (1 byte)", TaskBudget(max_memory_bytes=1.0)),
    ]
    selection_rows = []
    for label, budget in budgets:
        selection = selector.select("node_classification", data, budget=budget)
        selection_rows.append({
            "budget": label,
            "selected": selection.method,
            "within_budget": selection.within_budget,
        })
    print("\n" + format_table(selection_rows, title="Selector decisions per budget"))

    # --- end to end: the platform trains whatever the selector picked ---------
    platform = KGNet()
    platform.load_graph(graph)
    report = platform.train_task(task, budget=TaskBudget(max_memory_bytes=512 * 1024 ** 2,
                                                         max_time_seconds=300,
                                                         priority="ModelScore"))
    print(f"\nPlatform trained '{report.method}' within the budget "
          f"(accuracy {report.metrics['accuracy']:.2%}, "
          f"{report.training['elapsed_seconds']:.2f}s, "
          f"{report.training['peak_memory_bytes'] / 1e6:.1f} MB); "
          f"model registered as {report.model_uri}")


if __name__ == "__main__":
    main()
