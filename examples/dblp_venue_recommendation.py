"""Venue recommendation on the DBLP-like KG (the paper's motivating example).

Scenario (paper §I, Fig 1): the venue of a paper is a *virtual* node — it may
be missing for new papers — and a node-classification model can predict it on
the fly inside a SPARQL query.  This example:

1. trains two venue classifiers with different methods / budgets (so KGMeta
   holds several candidate models for the same user-defined predicate),
2. shows how the SPARQL-ML optimizer picks the model with the best
   accuracy/inference-time trade-off,
3. compares the two physical plans of paper Figs 11-12 (per-instance UDF
   calls vs. one dictionary call) on the same query,
4. filters the predictions with ordinary SPARQL constructs (FILTER / ORDER BY)
   to show SPARQL-ML composes with plain SPARQL.

Run:  python examples/dblp_venue_recommendation.py
"""

from repro.datasets import DBLPConfig, dblp_paper_venue_task, generate_dblp_kg
from repro.gml.train import TaskBudget
from repro.kgnet import KGNet, ModelSelectionObjective

VENUE_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
select ?paper ?title ?venue
where {
?paper a dblp:Publication.
?paper dblp:title ?title.
?paper ?NodeClassifier ?venue.
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode dblp:Publication.
?NodeClassifier kgnet:NodeLabel dblp:publishedIn.
FILTER(CONTAINS(STR(?title), "1"))}
"""


def main() -> None:
    platform = KGNet()
    platform.load_graph(generate_dblp_kg(DBLPConfig(scale=0.3, seed=7)))
    task = dblp_paper_venue_task()
    print(f"KG loaded: {len(platform.graph)} triples")

    # --- train two candidate models for the same predicate -------------------
    print("\nTraining two venue classifiers (both registered in KGMeta)...")
    fast = platform.train_task(task, method="rgcn",
                               budget=TaskBudget(priority="Time"))
    accurate = platform.train_task(task, method="shadow_saint",
                                   budget=TaskBudget(priority="ModelScore"))
    for name, report in (("rgcn", fast), ("shadow_saint", accurate)):
        print(f"  {name:13s} accuracy={report.metrics['accuracy']:.2%} "
              f"train={report.training['elapsed_seconds']:.2f}s "
              f"inference={report.training['inference_seconds'] * 1000:.1f}ms")

    # --- the optimizer picks among the registered models ---------------------
    print("\nQuery with the default objective (maximise accuracy):")
    best = platform.query(VENUE_QUERY)
    print(f"  model used : {best.models[0].uri.value}")
    print(f"  plan       : {best.plans[0].plan}, HTTP calls: {best.http_calls}")
    print(best.results.to_table(max_rows=5))

    print("\nQuery preferring low inference latency:")
    fast_answer = platform.query(
        VENUE_QUERY,
        objective=ModelSelectionObjective(time_weight=100.0))
    print(f"  model used : {fast_answer.models[0].uri.value}")

    # --- plan comparison (paper Figs 11-12) -----------------------------------
    print("\nExecution-plan comparison on the unfiltered query:")
    unfiltered = VENUE_QUERY.replace('FILTER(CONTAINS(STR(?title), "1"))', "")
    for plan in ("per_instance", "dictionary"):
        answer = platform.query(unfiltered, force_plan=plan)
        print(f"  {plan:13s} HTTP calls={answer.http_calls:4d} "
              f"rows={len(answer.results):4d} "
              f"exec={answer.elapsed_seconds * 1000:.1f} ms")

    # --- per-venue distribution of the predictions ---------------------------
    print("\nPredicted venue distribution (via plain SPARQL over the answers):")
    counts = {}
    for row in platform.query(unfiltered).results:
        venue = row.get_value("venue")
        if venue is not None:
            counts[venue.value] = counts.get(venue.value, 0) + 1
    for venue, count in sorted(counts.items(), key=lambda item: -item[1]):
        print(f"  {venue:45s} {count:4d} papers")


if __name__ == "__main__":
    main()
