"""Scale-out serving: a primary with two read replicas on loopback.

The demo walks the whole replication story in one process (the nodes are
real HTTP servers on ephemeral loopback ports — only the process boundary
is elided; ``python -m repro.replication`` runs the same pieces as separate
OS processes):

1. a durable **primary** serves reads and writes,
2. two :class:`~repro.replication.ReplicaEngine` followers bootstrap and
   tail-apply its WAL, serving reads while they apply,
3. a :class:`~repro.replication.ReplicaSetClient` routes the application's
   traffic: writes to the primary, reads round-robin across replicas, with
   per-session read-your-writes stickiness,
4. a replica dies mid-traffic: the router ejects it, answers from the
   survivors, and re-admits it when it returns,
5. a late follower joins after the primary compacted its history away and
   bootstraps from a shipped checkpoint instead.

Run from the repository root::

    PYTHONPATH=src python examples/replicated_cluster.py
"""

from __future__ import annotations

import tempfile
import time

from repro.kgnet import KGNet
from repro.replication import ReplicaEngine, ReplicaSetClient
from repro.server import KGNetHTTPServer
from repro.storage import StorageEngine

EX = "http://example.org/cluster/"
COUNT = "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"


def wait_for(predicate, timeout: float = 10.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise RuntimeError("cluster did not converge in time")


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="kgnet-cluster-")

    # -- 1. the primary: a durable platform behind HTTP -----------------
    storage = StorageEngine(f"{tmp}/primary", fsync=False)
    platform = KGNet(storage=storage)
    primary = KGNetHTTPServer(("127.0.0.1", 0), router=platform.api).start()
    print(f"primary   serving at {primary.base_url}")

    # -- 2. two followers tail the primary's WAL ------------------------
    replicas, servers = [], []
    for i in (1, 2):
        engine = ReplicaEngine(f"{tmp}/replica{i}", primary.base_url,
                               poll_interval=0.05)
        server = KGNetHTTPServer(("127.0.0.1", 0),
                                 router=engine.start().api).start()
        replicas.append(engine)
        servers.append(server)
        print(f"replica {i} serving at {server.base_url}")

    # -- 3. one client over the whole set -------------------------------
    router = ReplicaSetClient(primary.base_url,
                              [server.base_url for server in servers],
                              eject_seconds=0.5, status_max_age=0.05)
    for n in range(50):
        router.update(f'INSERT DATA {{ <{EX}s{n}> <{EX}p> "row {n}" }}')
    # Read-your-writes: this read is correct even if both replicas are
    # still applying — the router checks their applied seq first.
    rows = router.select(COUNT)
    print(f"\nwrote 50 rows; routed read sees {rows[0]['n']['value']} "
          f"(watermark seq {router.last_write_seq})")

    wait_for(lambda: all(r.applied_seq >= router.last_write_seq
                         for r in replicas))
    for i, engine in enumerate(replicas, start=1):
        lag = engine.replication_lag()
        print(f"replica {i} caught up: applied_seq={lag['applied_seq']} "
              f"seq_lag={lag['seq_lag']}")

    time.sleep(0.1)
    for _ in range(20):
        router.select(COUNT)
    stats = router.stats()
    print(f"\n20 reads routed: {stats['replica_reads']} to replicas, "
          f"{stats['primary_reads']} to the primary")

    # -- 4. kill one replica mid-traffic --------------------------------
    victim_port = int(servers[1].server_address[1])
    servers[1].stop()
    router._replicas[1].client.close()   # sever the keep-alive socket too
    for _ in range(10):
        rows = router.select(COUNT)
        assert rows[0]["n"]["value"] == "50"
    stats = router.stats()
    print(f"\nreplica 2 killed: {stats['ejections']} ejection(s), reads "
          "keep answering from the survivors")

    servers[1] = KGNetHTTPServer(("127.0.0.1", victim_port),
                                 router=replicas[1].platform.api).start()
    time.sleep(0.6)                      # past the eject window
    for _ in range(10):
        router.select(COUNT)
    state = router.stats()["replicas"][1]
    print(f"replica 2 restarted: healthy={state['healthy']}, "
          f"served {state['reads']} reads total")

    # -- 5. a late joiner after history was compacted away ---------------
    storage.archive.retain = 0
    storage.checkpoint()                 # all shipped history pruned
    late = ReplicaEngine(f"{tmp}/replica3", primary.base_url,
                         poll_interval=0.05)
    late.start()
    wait_for(lambda: late.applied_seq >= router.last_write_seq)
    print(f"\nlate follower joined: snapshot_bootstraps="
          f"{late.snapshot_bootstraps}, applied_seq={late.applied_seq}")

    router.close()
    late.stop()
    for server in servers:
        server.stop()
    for engine in replicas:
        engine.stop()
    primary.stop()
    storage.close()
    print("\ncluster shut down cleanly")


if __name__ == "__main__":
    main()
