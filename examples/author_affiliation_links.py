"""Author-affiliation link prediction and entity similarity on DBLP.

Reproduces the workflow behind paper Figs 10 and 15: a MorsE-style inductive
link predictor is trained on the d2h1 task-specific subgraph and then used

1. from SPARQL-ML (the Fig 10 query, with a ``kgnet:TopK-Links`` bound), and
2. through the direct GMLaaS inference API (top-k predicted affiliations per
   author, plus author similarity search over the learned embeddings — the
   entity-similarity task of Table I, served by the embedding store).

Run:  python examples/author_affiliation_links.py
"""

from repro.datasets import (
    DBLPConfig,
    dblp_author_affiliation_task,
    generate_dblp_kg,
)
from repro.kgnet import KGNet
from repro.rdf import DBLP, RDF_TYPE

LINK_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
select ?author ?affiliation
where { ?author a dblp:Person.
?author ?LinkPredictor ?affiliation.
?LinkPredictor a kgnet:LinkPredictor.
?LinkPredictor kgnet:SourceNode dblp:Person.
?LinkPredictor kgnet:DestinationNode dblp:Affiliation.
?LinkPredictor kgnet:TopK-Links 1.}
"""


def main() -> None:
    platform = KGNet()
    platform.load_graph(generate_dblp_kg(DBLPConfig(scale=0.3, seed=7)))
    task = dblp_author_affiliation_task()

    # Train MorsE on the d2h1 subgraph (the paper's best setting for LP).
    print("Training the author-affiliation link predictor (MorsE, d2h1)...")
    report = platform.train_task(task, method="morse", meta_sampling="d2h1")
    print(f"  Hits@10          : {report.metrics['hits@10']:.2%}")
    print(f"  MRR              : {report.metrics['mrr']:.3f}")
    print(f"  KG' triples      : {report.meta_sampling['num_subgraph_triples']} "
          f"of {report.meta_sampling['num_kg_triples']}")
    print(f"  training time    : {report.training['elapsed_seconds']:.2f} s")
    model_uri = report.model_uri

    # --- SPARQL-ML: predict the best affiliation link per author -------------
    answers = platform.query(LINK_QUERY)
    print(f"\nSPARQL-ML link prediction returned {len(answers.results)} rows "
          f"(model {answers.models[0].uri.value})")
    print(answers.results.to_table(max_rows=5))

    # --- direct inference: top-3 affiliations for a few authors --------------
    authors = [a for a in platform.graph.subjects(RDF_TYPE, DBLP["Person"])][:3]
    print("\nTop-3 predicted affiliations per author (GMLaaS inference API):")
    for author in authors:
        known = platform.graph.value(author, DBLP["affiliation"])
        predictions = platform.predict_links(model_uri, author.value, k=3)
        predicted = ", ".join(p["entity"].rsplit("/", 1)[-1] for p in predictions)
        print(f"  {author.value.rsplit('/', 1)[-1]:10s} "
              f"known={known.value.rsplit('/', 1)[-1] if known else '-':4s} "
              f"predicted=[{predicted}]")

    # --- entity similarity over the learned embeddings -----------------------
    print("\nMost similar authors (embedding-store search):")
    anchor = authors[0]
    for hit in platform.similar_entities(model_uri, anchor.value, k=5):
        if "person" in hit["entity"]:
            print(f"  {hit['entity'].rsplit('/', 1)[-1]:10s} score={hit['score']:.3f}")

    print(f"\nTotal GMLaaS HTTP calls served: {platform.http_calls}")


if __name__ == "__main__":
    main()
