"""Shared harness for the paper-reproduction benchmarks.

Each ``bench_*`` module reproduces one table or figure of the paper.  The
harness provides:

* :func:`run_training_comparison` — trains one GML method twice (traditional
  pipeline on the full KG vs. KGNet pipeline on the meta-sampled ``KG'``) and
  returns the accuracy / time / memory rows of paper Figs 13-15,
* :func:`save_report` — writes the paper-style text table both to stdout and
  to ``benchmarks/results/<name>.txt`` so the regenerated numbers are kept
  next to the code,
* small helpers shared by the ablation benchmarks.

Scale: the generated KGs default to ``scale=0.4`` of the laptop-scale presets
(override with the ``KGNET_BENCH_SCALE`` environment variable).  The paper's
absolute numbers come from 252M-400M triple KGs on a 256 GB server; only the
relative shape (who wins, by roughly what factor) is expected to match.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.datasets import DBLPConfig, YAGOConfig, generate_dblp_kg, generate_yago_kg
from repro.gml.tasks import TaskSpec
from repro.kgnet import KGNet, MetaSamplingConfig, TrainingManagerConfig
from repro.rdf import Graph
from repro.rdf.stats import format_table

__all__ = [
    "bench_scale",
    "percentile",
    "bench_training_config",
    "build_dblp_graph",
    "build_yago_graph",
    "make_platform",
    "run_training_comparison",
    "save_report",
    "RESULTS_DIR",
]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def percentile(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample sequence.

    Delegates to the router's implementation — the SAME definition
    `RouteMetrics` reports, so benchmark numbers and the server's own
    `metrics` route can never disagree on what p99 means.
    """
    from repro.kgnet.api.router import _percentile
    return _percentile(list(ordered), quantile)


def bench_scale() -> float:
    """Scale factor for generated benchmark KGs (env: KGNET_BENCH_SCALE)."""
    return float(os.environ.get("KGNET_BENCH_SCALE", "0.4"))


def bench_training_config() -> TrainingManagerConfig:
    """Training settings used by every benchmark (kept small but meaningful)."""
    return TrainingManagerConfig(
        feature_dim=24, hidden_dim=24, embedding_dim=24,
        epochs_full_batch=25, epochs_sampling=12, epochs_kge=12,
        learning_rate=0.03, seed=0)


def build_dblp_graph(scale: Optional[float] = None) -> Graph:
    return generate_dblp_kg(DBLPConfig(scale=scale or bench_scale(), seed=7))


def build_yago_graph(scale: Optional[float] = None) -> Graph:
    return generate_yago_kg(YAGOConfig(scale=scale or bench_scale(), seed=7))


def make_platform(graph: Graph) -> KGNet:
    platform = KGNet(training_config=bench_training_config())
    platform.load_graph(graph)
    return platform


def run_training_comparison(platform: KGNet, task: TaskSpec, method: str,
                            meta_sampling: str,
                            metric_key: str = "accuracy") -> List[Dict[str, object]]:
    """Train ``method`` on the full KG and on KG'; return two report rows.

    This is exactly the comparison of paper Figs 13, 14 and 15: the
    "traditional pipeline" row uses the whole KG, the "KGNet (KG')" row uses
    the task-specific subgraph extracted by meta-sampling.
    """
    rows: List[Dict[str, object]] = []
    for setting, use_meta in (("full KG", False), ("KGNET (KG')", True)):
        report = platform.train_task(
            task, method=method,
            meta_sampling=MetaSamplingConfig.from_label(meta_sampling) if use_meta else None,
            use_meta_sampling=use_meta)
        metric_value = report.metrics.get(metric_key, 0.0)
        rows.append({
            "method": method,
            "pipeline": setting,
            metric_key: round(float(metric_value) * 100, 1),
            "time_s": round(report.training["elapsed_seconds"], 2),
            "memory_mb": round(report.training["peak_memory_bytes"] / 1e6, 1),
            "triples": (report.meta_sampling.get("num_subgraph_triples")
                        if use_meta else len(platform.graph)),
        })
    return rows


def reduction(rows: List[Dict[str, object]], key: str) -> float:
    """Relative reduction of ``key`` achieved by KG' over the full KG."""
    full = [r[key] for r in rows if r["pipeline"] == "full KG"]
    sampled = [r[key] for r in rows if r["pipeline"] != "full KG"]
    if not full or not sampled or not full[0]:
        return 0.0
    return 1.0 - float(sampled[0]) / float(full[0])


def save_report(name: str, title: str, rows: Sequence[Dict[str, object]],
                headers: Optional[List[str]] = None,
                notes: Optional[List[str]] = None) -> str:
    """Render, print and persist a paper-style table; returns the text."""
    table = format_table(list(rows), headers=headers, title=title)
    if notes:
        table += "\n" + "\n".join(f"  * {note}" for note in notes)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    print("\n" + table)
    return table
