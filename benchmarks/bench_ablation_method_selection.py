"""Ablation E7 — automatic GML method selection under a task budget.

Paper §IV-A: the GML optimizer estimates memory and training time per method
and picks the near-optimal one within the TrainGML budget.  This benchmark
sweeps budgets and checks the selector's decisions: an unconstrained budget
picks the highest-prior method, tight memory budgets exclude full-batch RGCN,
and a "Time" priority picks the fastest estimated method.  It also measures
the cost of selection itself (it must be negligible next to training).
"""

from __future__ import annotations

import pytest

from harness import bench_training_config, save_report
from repro.datasets import dblp_paper_venue_task
from repro.gml.tasks import TaskType
from repro.gml.train import MethodCostEstimator, TaskBudget
from repro.gml.transform import RDFGraphTransformer
from repro.kgnet import MethodSelector

_ROWS = []


@pytest.fixture(scope="module")
def nc_data(dblp_graph_bench):
    task = dblp_paper_venue_task()
    transformer = RDFGraphTransformer(feature_dim=bench_training_config().feature_dim)
    data, _ = transformer.to_node_classification_data(
        dblp_graph_bench, task.target_node_type, task.label_predicate)
    return data


BUDGETS = [
    ("unconstrained", TaskBudget()),
    ("time priority", TaskBudget(priority="Time")),
    ("memory priority", TaskBudget(priority="Memory")),
    ("tight memory", None),   # filled in at run time (90% of RGCN's estimate)
    ("infeasible", TaskBudget(max_memory_bytes=1.0)),
]


@pytest.mark.benchmark(group="ablation-method-selection")
@pytest.mark.parametrize("name,budget", BUDGETS, ids=[b[0] for b in BUDGETS])
def test_method_selection_under_budget(benchmark, nc_data, name, budget):
    selector = MethodSelector(MethodCostEstimator(hidden_dim=24))
    if name == "tight memory":
        rgcn_estimate = selector.estimator.estimate("rgcn", nc_data)
        budget = TaskBudget(max_memory_bytes=rgcn_estimate.memory_bytes * 0.9)

    selection = benchmark.pedantic(
        selector.select, args=(TaskType.NODE_CLASSIFICATION, nc_data),
        kwargs={"budget": budget}, rounds=3, iterations=1)

    if name == "unconstrained":
        assert selection.method == "shadow_saint"
        assert selection.within_budget
    elif name == "time priority":
        fastest = min(selection.candidates, key=lambda e: e.time_seconds)
        assert selection.method == fastest.method
    elif name == "memory priority":
        smallest = min(selection.candidates, key=lambda e: e.memory_bytes)
        assert selection.method == smallest.method
    elif name == "tight memory":
        assert selection.method != "rgcn"
        assert selection.within_budget
    else:  # infeasible
        assert not selection.within_budget

    _ROWS.append({
        "budget": name,
        "selected_method": selection.method,
        "within_budget": selection.within_budget,
        "est_memory_mb": round(selection.estimate.memory_bytes / 1e6, 2),
        "est_time_s": round(selection.estimate.time_seconds, 3),
    })
    if name == BUDGETS[-1][0]:
        save_report(
            "ablation_method_selection",
            "Automatic GML method selection under task budgets (paper §IV-A)",
            _ROWS,
            notes=["Selection is estimate-driven and costs microseconds, so it adds "
                   "nothing to the training budget."])


@pytest.mark.benchmark(group="ablation-method-selection")
def test_estimator_orders_methods_like_measurements(benchmark, nc_data, dblp_platform):
    """The cost model must reproduce the measured full-KG ordering: RGCN uses
    the most memory among the three NC methods (paper Fig 13C)."""
    estimator = MethodCostEstimator(hidden_dim=24)

    def estimate_all():
        return {m: estimator.estimate(m, nc_data) for m in
                ("rgcn", "graph_saint", "shadow_saint")}

    estimates = benchmark.pedantic(estimate_all, rounds=5, iterations=1)
    assert estimates["rgcn"].memory_bytes == max(e.memory_bytes
                                                 for e in estimates.values())
