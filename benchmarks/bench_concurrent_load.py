"""Concurrent serving benchmark: snapshot-isolated readers, coalesced inference.

Drives the platform's serving surface (:meth:`APIRouter.serve_concurrent
<repro.kgnet.api.router.APIRouter.serve_concurrent>`) with a closed-loop
mixed workload — plan-cache-friendly SPARQL reads plus single-node inference
calls — and compares:

* **baseline** — one thread dispatching the whole workload sequentially,
* **concurrent** — the same workload through the bounded worker pool at
  N reader threads, with in-flight inference coalescing active,
* **reader/writer mix** — the concurrent run again while writer threads
  commit batched inserts the whole time (snapshot isolation keeps readers
  consistent; the run also reports writer throughput).

Inference calls carry a small simulated network latency
(``--call-latency``, default 2 ms) because that is the paper's deployment:
every UDF/inference call is an HTTP round-trip between the RDF engine and
GMLaaS.  The concurrent gain is exactly the gain of overlapping and
coalescing those round-trips — pure-CPU SPARQL evaluation stays GIL-bound
and is reported separately so nobody mistakes it for a parallel win.

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_concurrent_load.py            # full run
    PYTHONPATH=../src python bench_concurrent_load.py --smoke    # CI-sized

Each run appends one record to ``BENCH_concurrent_load.json`` next to this
script and refreshes the human-readable table in
``results/bench_concurrent_load.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import save_report  # noqa: E402
from repro.datasets import DBLPConfig, generate_dblp_kg  # noqa: E402
from repro.gml.tasks import TaskType  # noqa: E402
from repro.kgnet import KGNet  # noqa: E402
from repro.kgnet.api.envelopes import APIRequest  # noqa: E402
from repro.concurrency import AtomicCounter  # noqa: E402
from repro.kgnet.gmlaas.model_store import StoredModel  # noqa: E402
from repro.rdf import IRI, Literal, Triple  # noqa: E402

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_concurrent_load.json")

PREFIX = "PREFIX dblp: <https://www.dblp.org/>\n"

#: A small pool of query templates so the plan cache is exercised the way a
#: real serving workload exercises it (few shapes, many executions).
QUERY_POOL = [
    PREFIX + "SELECT ?p ?a WHERE { ?p dblp:authoredBy ?a . }",
    PREFIX + "SELECT ?p ?v WHERE { ?p dblp:publishedIn ?v . }",
    PREFIX + ("SELECT ?p ?a ?v WHERE { ?p dblp:authoredBy ?a . "
              "?p dblp:publishedIn ?v . }"),
    PREFIX + ("SELECT ?p ?t WHERE { ?p dblp:title ?t . "
              "?p dblp:yearOfPublication ?y . } LIMIT 50"),
]

MODEL_URI = "https://www.kgnet.com/model/bench/venue-clf"
EX = "http://example.org/bench/"


def build_platform(scale: float) -> KGNet:
    platform = KGNet()
    graph = generate_dblp_kg(DBLPConfig(scale=scale, seed=7))
    platform.load_graph(graph)
    # A synthetic stored classifier (no training run): inference serving is
    # what this benchmark measures, not the trainer.
    subjects = [term.value for term in graph.subjects(IRI(
        "https://www.dblp.org/title"), None)]
    if not subjects:
        subjects = [term.value for term, *_ in zip(graph.nodes(), range(500))]
    prediction_map = {node: f"venue{index % 7}"
                      for index, node in enumerate(subjects)}
    platform.gmlaas.model_store.add(StoredModel(
        uri=IRI(MODEL_URI), task_type=TaskType.NODE_CLASSIFICATION,
        method="mlp", model=None,
        artifacts={"prediction_map": prediction_map}))
    return platform, sorted(prediction_map)


def build_workload(nodes: List[str], operations: int, infer_share: float,
                   seed: int = 13) -> List[APIRequest]:
    rng = random.Random(seed)
    requests = []
    for _ in range(operations):
        if rng.random() < infer_share:
            requests.append(APIRequest(op="infer_node_class", params={
                "model_uri": MODEL_URI, "node": rng.choice(nodes)}))
        else:
            requests.append(APIRequest(op="sparql", params={
                "query": rng.choice(QUERY_POOL)}))
    return requests


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _latency_stats(responses) -> Dict[str, float]:
    latencies = [response.meta.get("elapsed_seconds", 0.0)
                 for response in responses]
    return {
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


def run_baseline(platform: KGNet, requests: List[APIRequest]) -> Dict[str, object]:
    started = time.perf_counter()
    responses = [platform.api.dispatch(request) for request in requests]
    elapsed = time.perf_counter() - started
    assert all(response.ok for response in responses)
    result = {"metric": "baseline_1thread", "operations": len(requests),
              "seconds": round(elapsed, 6),
              "qps": round(len(requests) / elapsed, 1)}
    result.update(_latency_stats(responses))
    return result


def run_concurrent(platform: KGNet, requests: List[APIRequest],
                   threads: int) -> Dict[str, object]:
    calls_before = platform.gmlaas.http_calls
    started = time.perf_counter()
    responses = platform.api.serve_concurrent(requests, max_workers=threads)
    elapsed = time.perf_counter() - started
    assert all(response.ok for response in responses)
    coalescing = platform.api.coalescing_stats()
    result = {"metric": f"concurrent_{threads}threads",
              "operations": len(requests),
              "seconds": round(elapsed, 6),
              "qps": round(len(requests) / elapsed, 1),
              "inference_http_calls": platform.gmlaas.http_calls - calls_before,
              "coalescing_calls_saved": coalescing["calls_saved"]}
    result.update(_latency_stats(responses))
    return result


def run_reader_writer_mix(platform: KGNet, requests: List[APIRequest],
                          threads: int, writers: int) -> Dict[str, object]:
    stop = threading.Event()
    batches = AtomicCounter()
    errors: List[BaseException] = []

    def writer(seed: int) -> None:
        # Paced update stream (a few hundred batch commits per second per
        # writer), the shape of a real ingest feed.  An unthrottled spin
        # loop would mostly measure writers queueing on their own write
        # lock rather than reader/writer interaction.
        rng = random.Random(seed)
        graph = platform.endpoint.graph
        try:
            while not stop.is_set():
                graph.add_all([Triple(IRI(EX + f"s{rng.randrange(5000)}"),
                                      IRI(EX + "p"),
                                      Literal(rng.randrange(10_000)))
                               for _ in range(20)])
                batches.increment()
                time.sleep(0.003)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    writer_threads = [threading.Thread(target=writer, args=(seed,), daemon=True)
                      for seed in range(writers)]
    for thread in writer_threads:
        thread.start()
    started = time.perf_counter()
    responses = platform.api.serve_concurrent(requests, max_workers=threads)
    elapsed = time.perf_counter() - started
    stop.set()
    for thread in writer_threads:
        thread.join(timeout=30)
    if errors:
        raise errors[0]
    assert all(response.ok for response in responses)
    result = {"metric": f"readers{threads}_writers{writers}",
              "operations": len(requests),
              "seconds": round(elapsed, 6),
              "qps": round(len(requests) / elapsed, 1),
              "writer_batches_committed": batches.value}
    result.update(_latency_stats(responses))
    return result


def run(scale: float, operations: int, threads: int, writers: int,
        infer_share: float, call_latency: float) -> Dict[str, object]:
    platform, nodes = build_platform(scale)
    platform.gmlaas.inference_manager.call_latency_seconds = call_latency
    requests = build_workload(nodes, operations, infer_share)

    # Warm the plan cache the way a steady-state server is warm.
    for query in QUERY_POOL:
        platform.api.dispatch(APIRequest(op="sparql", params={"query": query}))

    baseline = run_baseline(platform, requests)
    concurrent = run_concurrent(platform, requests, threads)
    mixed = run_reader_writer_mix(platform, requests, threads, writers)
    speedup = round(concurrent["qps"] / baseline["qps"], 3) if baseline["qps"] else 0.0
    concurrent["speedup_vs_baseline"] = speedup
    mixed["speedup_vs_baseline"] = (round(mixed["qps"] / baseline["qps"], 3)
                                    if baseline["qps"] else 0.0)
    return {
        "benchmark": "concurrent_load",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": ".".join(map(str, sys.version_info[:3])),
        "scale": scale,
        "operations": operations,
        "reader_threads": threads,
        "writer_threads": writers,
        "infer_share": infer_share,
        "call_latency_seconds": call_latency,
        "kg_triples": len(platform.endpoint.graph),
        "results": [baseline, concurrent, mixed],
    }


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        try:
            with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle)
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small KG, fewer operations")
    parser.add_argument("--scale", type=float, default=None,
                        help="KG scale factor (default 0.4, smoke 0.15)")
    parser.add_argument("--operations", type=int, default=None,
                        help="workload size (default 600, smoke 150)")
    parser.add_argument("--threads", type=int, default=8,
                        help="reader threads for the concurrent runs")
    parser.add_argument("--writers", type=int, default=2,
                        help="writer threads for the mixed run")
    parser.add_argument("--infer-share", type=float, default=0.3,
                        help="fraction of operations that are inference calls")
    parser.add_argument("--call-latency", type=float, default=0.002,
                        help="simulated GMLaaS HTTP round-trip latency (s)")
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (0.15 if args.smoke else 0.4)
    operations = args.operations if args.operations is not None else (
        150 if args.smoke else 600)

    record = run(scale, operations, args.threads, args.writers,
                 args.infer_share, args.call_latency)
    append_trajectory(record)

    rows: List[Dict[str, object]] = []
    headers: List[str] = ["metric"]
    for result in record["results"]:
        rows.append(dict(result))
        for key in result:
            if key not in headers:
                headers.append(key)
    save_report("bench_concurrent_load",
                f"Concurrent serving benchmark (scale={scale}, "
                f"ops={operations}, threads={args.threads})",
                rows, headers=headers)
    print(f"trajectory appended to {TRAJECTORY_PATH}")
    speedup = record["results"][1]["speedup_vs_baseline"]
    print(f"aggregate QPS at {args.threads} reader threads: "
          f"{speedup}x the single-threaded loop")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
