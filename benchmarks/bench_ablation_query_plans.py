"""Ablation E6 — SPARQL-ML execution plans (paper Figs 11 and 12).

A SPARQL-ML SELECT with a node-classification predicate can be rewritten as
(1) one UDF/HTTP call per target instance, or (2) a single call that builds a
dictionary of all predictions plus per-row lookups.  The paper's optimizer
chooses between them using the target cardinality and the model cardinality.
This benchmark runs the Fig 2 query under both plans and measures the number
of HTTP calls and the end-to-end execution time, then checks the optimizer
picks the cheaper plan.
"""

from __future__ import annotations

import pytest

from harness import save_report
from repro.datasets import dblp_paper_venue_task
from repro.rdf import DBLP, RDF_TYPE

FIG2_QUERY = """
prefix dblp: <https://www.dblp.org/>
prefix kgnet: <https://www.kgnet.com/>
select ?paper ?title ?venue
where {
?paper a dblp:Publication.
?paper dblp:title ?title.
?paper ?NodeClassifier ?venue.
?NodeClassifier a kgnet:NodeClassifier.
?NodeClassifier kgnet:TargetNode dblp:Publication.
?NodeClassifier kgnet:NodeLabel dblp:publishedIn.}
"""

_ROWS = []


@pytest.fixture(scope="module")
def platform_with_nc_model(dblp_platform):
    existing = [m for m in dblp_platform.list_models()
                if m.task_type == "node_classification"]
    if not existing:
        dblp_platform.train_task(dblp_paper_venue_task(), method="graph_saint")
    return dblp_platform


@pytest.mark.benchmark(group="ablation-query-plans")
@pytest.mark.parametrize("plan", ["per_instance", "dictionary"])
def test_query_plan_http_calls(benchmark, platform_with_nc_model, plan):
    platform = platform_with_nc_model
    num_targets = platform.graph.count(None, RDF_TYPE, DBLP["Publication"])

    def run():
        return platform.query(FIG2_QUERY, force_plan=plan)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(report.results) == num_targets
    expected_calls = num_targets if plan == "per_instance" else 1
    assert report.http_calls == expected_calls
    _ROWS.append({
        "plan": plan,
        "targets": num_targets,
        "http_calls": report.http_calls,
        "dictionary_entries": report.plans[0].estimated_dictionary_entries,
        "exec_time_s": round(report.elapsed_seconds, 4),
    })
    benchmark.extra_info["http_calls"] = report.http_calls


@pytest.mark.benchmark(group="ablation-query-plans")
def test_optimizer_chooses_cheaper_plan(benchmark, platform_with_nc_model):
    platform = platform_with_nc_model

    def run():
        return platform.query(FIG2_QUERY)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    num_targets = platform.graph.count(None, RDF_TYPE, DBLP["Publication"])
    # With hundreds of targets the dictionary plan must win (1 call vs N calls).
    assert report.plans[0].plan == "dictionary"
    assert report.http_calls == 1
    _ROWS.append({
        "plan": "optimizer choice (" + report.plans[0].plan + ")",
        "targets": num_targets,
        "http_calls": report.http_calls,
        "dictionary_entries": report.plans[0].estimated_dictionary_entries,
        "exec_time_s": round(report.elapsed_seconds, 4),
    })
    save_report(
        "ablation_query_plans",
        "SPARQL-ML execution plans (paper Figs 11-12): per-instance UDF calls vs dictionary",
        _ROWS,
        notes=[
            "Paper: the per-instance template issues |?papers| HTTP calls; the "
            "dictionary template reduces this to a single call.",
        ])
