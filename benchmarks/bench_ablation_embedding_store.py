"""Ablation E8 — the embedding store (entity-similarity search, Table I's ES task).

GMLaaS keeps trained embeddings in an embedding store (FAISS in the paper)
for ad-hoc similarity queries.  This benchmark indexes the embeddings of a
trained link-prediction model and compares the exact (flat) index with the
inverted-file (IVF) index on top-10 search latency and recall.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import save_report
from repro.kgnet.gmlaas.embedding_store import FlatIndex, IVFIndex

_ROWS = []


@pytest.fixture(scope="module")
def embeddings():
    rng = np.random.default_rng(11)
    # Clustered embeddings: 20 clusters of 100 vectors, 32 dimensions.
    centers = rng.normal(scale=4.0, size=(20, 32))
    vectors = np.concatenate([
        center + rng.normal(scale=0.5, size=(100, 32)) for center in centers])
    queries = vectors[rng.choice(vectors.shape[0], size=50, replace=False)]
    return vectors, queries


def _recall(reference: np.ndarray, candidate: np.ndarray) -> float:
    hits = 0
    for ref_row, cand_row in zip(reference, candidate):
        hits += len(set(ref_row.tolist()) & set(cand_row.tolist()))
    return hits / reference.size


@pytest.mark.benchmark(group="ablation-embedding-store")
def test_flat_index_search(benchmark, embeddings):
    vectors, queries = embeddings
    index = FlatIndex(dim=vectors.shape[1])
    index.add(vectors)
    _, indices = benchmark(index.search, queries, 10)
    assert indices.shape == (queries.shape[0], 10)
    _ROWS.append({"index": "flat (exact)", "recall@10": 1.0,
                  "vectors": vectors.shape[0]})


@pytest.mark.benchmark(group="ablation-embedding-store")
@pytest.mark.parametrize("nprobe", [1, 4])
def test_ivf_index_search(benchmark, embeddings, nprobe):
    vectors, queries = embeddings
    flat = FlatIndex(dim=vectors.shape[1])
    flat.add(vectors)
    _, exact = flat.search(queries, 10)

    index = IVFIndex(dim=vectors.shape[1], num_clusters=20, nprobe=nprobe, seed=0)
    index.add(vectors)
    index.search(queries[:1], 1)  # train the coarse quantiser outside the timer
    _, approximate = benchmark(index.search, queries, 10)
    recall = _recall(exact, approximate)
    # Probing more clusters must not lose much recall; nprobe=4 should be high.
    assert recall > (0.3 if nprobe == 1 else 0.7)
    _ROWS.append({"index": f"ivf nprobe={nprobe}", "recall@10": round(recall, 3),
                  "vectors": vectors.shape[0]})
    benchmark.extra_info["recall"] = recall
    if nprobe == 4:
        save_report(
            "ablation_embedding_store",
            "Embedding store: exact vs inverted-file similarity search "
            "(GMLaaS embedding store, paper §IV-A)",
            _ROWS,
            notes=["The paper uses FAISS; the reproduction's IVF index trades a "
                   "little recall for fewer distance computations."])
