"""Figure 15 — DBLP author-affiliation link prediction with MorsE.

The paper's Fig 15 trains MorsE (edge-sampling inductive KGE) once on the
full DBLP KG and once on the d2h1 task-specific subgraph, and reports
(A) Hits@10, (B) training time and (C) training memory.  The paper's headline:
KG' improves Hits@10 dramatically (16 -> 89) while cutting time and memory by
~94%.
"""

from __future__ import annotations

import pytest

from harness import run_training_comparison, save_report, reduction
from repro.datasets import dblp_author_affiliation_task

_ROWS = []


@pytest.mark.benchmark(group="fig15")
def test_fig15_dblp_author_affiliation_morse(benchmark, dblp_platform):
    task = dblp_author_affiliation_task()
    rows = benchmark.pedantic(
        run_training_comparison,
        args=(dblp_platform, task, "morse", "d2h1"),
        kwargs={"metric_key": "hits@10"},
        rounds=1, iterations=1)
    _ROWS.extend(rows)

    full_row = next(r for r in rows if r["pipeline"] == "full KG")
    kgnet_row = next(r for r in rows if r["pipeline"] != "full KG")
    # Paper shape: the task-specific subgraph trains faster, uses less memory
    # and reaches at least comparable (in the paper: much better) Hits@10.
    assert kgnet_row["time_s"] < full_row["time_s"]
    assert kgnet_row["memory_mb"] <= full_row["memory_mb"] * 1.05
    assert kgnet_row["hits@10"] >= full_row["hits@10"] - 5.0
    benchmark.extra_info.update({
        "hits10_full": full_row["hits@10"],
        "hits10_kgnet": kgnet_row["hits@10"],
        "time_reduction": round(reduction(rows, "time_s"), 3),
        "memory_reduction": round(reduction(rows, "memory_mb"), 3),
    })
    save_report(
        "fig15_dblp_link_prediction",
        "Figure 15: DBLP author-affiliation link prediction with MorsE "
        "(A) Hits@10 %, (B) training time, (C) training memory",
        _ROWS,
        notes=[
            "Paper (full KG -> KG'): Hits@10 16 -> 89, time 58.8h -> 3.1h, "
            "memory 136GB -> 6GB (94% reductions).",
            "Expected shape: KG' (d2h1) is cheaper on both resources with "
            "comparable or better Hits@10.",
        ])
