"""Figure 13 — DBLP paper-venue node classification: KG vs. KGNet (KG').

The paper's Fig 13 reports, for Graph-SAINT, RGCN and ShaDow-SAINT:
(A) accuracy, (B) training time and (C) training memory, once with the
traditional pipeline on the full DBLP KG and once with KGNet's task-specific
subgraph (meta-sampling d1h1).  Expected shape: KG' cuts time and memory for
every method while keeping comparable or better accuracy; full-batch RGCN is
the most memory-hungry method on the full KG.
"""

from __future__ import annotations

import pytest

from harness import run_training_comparison, save_report, reduction
from repro.datasets import dblp_paper_venue_task

METHODS = ["graph_saint", "rgcn", "shadow_saint"]

_ROWS = []


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("method", METHODS)
def test_fig13_dblp_paper_venue(benchmark, dblp_platform, method):
    task = dblp_paper_venue_task()
    rows = benchmark.pedantic(
        run_training_comparison,
        args=(dblp_platform, task, method, "d1h1"),
        kwargs={"metric_key": "accuracy"},
        rounds=1, iterations=1)
    _ROWS.extend(rows)

    full_row = next(r for r in rows if r["pipeline"] == "full KG")
    kgnet_row = next(r for r in rows if r["pipeline"] != "full KG")
    # Paper shape: KG' reduces training time and memory ...
    assert kgnet_row["time_s"] < full_row["time_s"]
    assert kgnet_row["memory_mb"] < full_row["memory_mb"]
    # ... while accuracy stays comparable (within 15 points) or improves.
    assert kgnet_row["accuracy"] >= full_row["accuracy"] - 15.0
    benchmark.extra_info.update({
        "accuracy_full": full_row["accuracy"],
        "accuracy_kgnet": kgnet_row["accuracy"],
        "time_reduction": round(reduction(rows, "time_s"), 3),
        "memory_reduction": round(reduction(rows, "memory_mb"), 3),
    })

    if method == METHODS[-1]:
        save_report(
            "fig13_dblp_node_classification",
            "Figure 13: DBLP paper-venue node classification "
            "(A) accuracy %, (B) training time, (C) training memory",
            _ROWS,
            notes=[
                "Paper (full KG -> KG'): G-SAINT 82->90%, RGCN 74->80%, SH-SAINT 85->91%; "
                "time 1.9->1.4h, 2->1.4h, 9.2->5.9h; memory 46->36GB, 220->82GB, 94->54GB.",
                "Expected shape: KG' cheaper in time and memory for every method, "
                "accuracy comparable or better; RGCN needs the most memory on the full KG.",
            ])
