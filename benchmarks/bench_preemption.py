"""Preemption benchmark: cheap-query latency under an adversarial neighbour.

The hostile-load PR's acceptance number, measured on a real HTTP server:

* ``unloaded`` — cheap-query p50/p99 against an idle scheduler-backed
  server (the baseline),
* ``adversary`` — the same cheap workload while one client loops an
  adversarial cross product (``?a ?b ?c . ?d ?e ?f . ?g ?h ?i``) against
  the same two scheduler lanes.  With SaGe-style time-slicing the cheap
  p99 must stay within 5x of unloaded; without preemption it would be the
  duration of a whole cross product,
* ``no_preemption_reference`` — the same contention on a plain server
  (no scheduler): queries run inline on connection threads, unsliced and
  at the default GIL switch interval, showing the latency tail that
  preemption removes.  Skipped in ``--smoke`` runs,
* ``saturation`` — a burst of concurrent clients against a small
  admission bound: throughput of admitted requests plus the shed rate
  (every shed is a fast typed 503, not a queued stall).

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_preemption.py            # full run
    PYTHONPATH=../src python bench_preemption.py --smoke    # CI-sized

Each run appends one record to ``BENCH_preemption.json`` next to this
script and refreshes ``results/bench_preemption.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import percentile, save_report  # noqa: E402
from repro.concurrency import AdmissionController, QueryScheduler  # noqa: E402
from repro.exceptions import KGNetError  # noqa: E402
from repro.kgnet import KGNet  # noqa: E402
from repro.rdf import IRI, Literal, Triple  # noqa: E402
from repro.server import RemoteClient, serve  # noqa: E402

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_preemption.json")

EX = "http://example.org/bench/preempt/"
CHEAP_QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }} LIMIT 25"
#: Explicit projection keeps the pipeline lazy; the triple cross product is
#: effectively unbounded at benchmark scale.
ADVERSARY = "SELECT ?a ?d WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }"


def build_platform(triples: int, scheduler: bool,
                   max_inflight: Optional[int] = None) -> KGNet:
    platform = KGNet(
        scheduler=QueryScheduler(max_workers=2, quantum_rows=256,
                                 quantum_seconds=0.01) if scheduler else None,
        admission=(AdmissionController(max_inflight=max_inflight,
                                       retry_after=0.2)
                   if max_inflight else None),
        max_query_timeout=60.0,
    )
    platform.load_graph([
        Triple(IRI(f"{EX}s{i}"), IRI(f"{EX}p{i % 4}"), Literal(f"v{i}"))
        for i in range(triples)
    ])
    return platform


def measure_cheap(base_url: str, rounds: int) -> List[float]:
    client = RemoteClient(base_url)
    latencies: List[float] = []
    try:
        for _ in range(rounds):
            t0 = time.perf_counter()
            client.protocol_select(CHEAP_QUERY)
            latencies.append(time.perf_counter() - t0)
    finally:
        client.close()
    return sorted(latencies)


def leg_stats(leg: str, latencies: List[float]) -> Dict[str, object]:
    return {"leg": leg, "requests": len(latencies),
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
            "max_ms": round(latencies[-1] * 1000, 3)}


def with_adversary(base_url: str, rounds: int, adversary_timeout: float,
                   adversaries: int = 1) -> List[float]:
    """Cheap-query latencies while cross-product adversaries loop."""
    stop = threading.Event()

    def adversary_loop() -> None:
        client = RemoteClient(base_url, max_retries=0)
        try:
            while not stop.is_set():
                try:
                    client.protocol_select(ADVERSARY,
                                           timeout=adversary_timeout)
                except KGNetError:
                    pass  # timed out / shed — it restarts immediately
        finally:
            client.close()

    threads = [threading.Thread(target=adversary_loop, daemon=True)
               for _ in range(adversaries)]
    for thread in threads:
        thread.start()
    time.sleep(0.3)  # adversaries in full swing before measuring
    try:
        return measure_cheap(base_url, rounds)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=max(30.0, 2 * adversary_timeout))


def bench_saturation(base_url: str, clients: int, per_client: int,
                     platform: KGNet) -> Dict[str, object]:
    """Burst load against a small admission bound: shed rate + speed."""
    outcomes: List[str] = []
    lock = threading.Lock()

    def worker() -> None:
        client = RemoteClient(base_url, max_retries=0)
        try:
            for _ in range(per_client):
                try:
                    client.protocol_select(CHEAP_QUERY)
                    result = "ok"
                except KGNetError as exc:
                    result = ("shed" if type(exc).__name__ == "ServerOverloaded"
                              else "error")
                with lock:
                    outcomes.append(result)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = len(outcomes)
    shed = outcomes.count("shed")
    admission = platform.api.admission.stats()
    return {"leg": f"saturation_x{clients}", "requests": total,
            "seconds": round(elapsed, 4),
            "completed": outcomes.count("ok"),
            "shed": shed,
            "errors": outcomes.count("error"),
            "shed_rate": round(shed / total, 4) if total else 0.0,
            "qps_admitted": round(outcomes.count("ok") / elapsed, 1),
            "inflight_high_water": admission["inflight_high_water"]}


def run(triples: int, rounds: int, clients: int,
        include_reference: bool) -> Dict[str, object]:
    legs: List[Dict[str, object]] = []

    # Legs 1+2: preemptable server, unloaded then under adversary.
    platform = build_platform(triples, scheduler=True)
    server = serve(platform.api, max_workers=max(6, clients + 2))
    try:
        unloaded = measure_cheap(server.base_url, rounds)
        legs.append(leg_stats("unloaded", unloaded))
        loaded = with_adversary(server.base_url, rounds,
                                adversary_timeout=5.0)
        legs.append(leg_stats("adversary_preemptable", loaded))
        if include_reference:
            # Both scheduler lanes occupied by adversaries: cheap queries
            # must overtake via preemption, nothing else can save them.
            both_lanes = with_adversary(server.base_url, rounds,
                                        adversary_timeout=5.0, adversaries=2)
            legs.append(leg_stats("adversary_x2_preemptable", both_lanes))
        scheduler_stats = platform.api.scheduler.stats()
    finally:
        server.stop()
        platform.api.scheduler.close()

    # Reference (optional): the same two-adversary pressure with no
    # preemption.  The HTTP pool runs *connections*, so the server needs a
    # worker per client (two adversaries pinning a 2-worker pool would
    # starve the cheap connection outright rather than merely slow it);
    # queries then run inline, unsliced, at the default GIL interval.
    if include_reference:
        plain = build_platform(triples, scheduler=False)
        plain_server = serve(plain.api, max_workers=6)
        try:
            reference = with_adversary(plain_server.base_url,
                                       max(10, rounds // 4),
                                       adversary_timeout=2.0, adversaries=2)
            legs.append(leg_stats("adversary_x2_no_preemption", reference))
        finally:
            plain_server.stop()

    # Leg 4: saturation against a small admission bound.
    bounded = build_platform(triples, scheduler=True, max_inflight=4)
    bounded_server = serve(bounded.api, max_workers=max(6, clients + 2))
    try:
        legs.append(bench_saturation(bounded_server.base_url, clients,
                                     per_client=max(10, rounds // 2),
                                     platform=bounded))
    finally:
        bounded_server.stop()
        bounded.api.scheduler.close()

    by_leg = {leg["leg"]: leg for leg in legs}
    slowdown = (by_leg["adversary_preemptable"]["p99_ms"]
                / max(by_leg["unloaded"]["p99_ms"], 1e-9))
    record = {
        "benchmark": "preemption",
        "triples": triples,
        "rounds": rounds,
        "clients": clients,
        "legs": legs,
        "cheap_p99_slowdown_under_adversary_x": round(slowdown, 2),
        "scheduler": {key: scheduler_stats[key]
                      for key in ("queries_preempted", "queries_timed_out",
                                  "queries_cancelled", "queue_high_water")},
    }
    return record


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    record = dict(record)
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer triples and rounds, no "
                             "no-preemption reference leg)")
    args = parser.parse_args()
    triples = 150 if args.smoke else 400
    rounds = 30 if args.smoke else 120
    clients = 6 if args.smoke else 12

    record = run(triples, rounds, clients,
                 include_reference=not args.smoke)
    append_trajectory(record)

    rows = []
    for leg in record["legs"]:
        rows.append({"leg": leg["leg"], "requests": leg["requests"],
                     "p50_ms": leg.get("p50_ms", ""),
                     "p99_ms": leg.get("p99_ms", ""),
                     "shed_rate": leg.get("shed_rate", "")})
    save_report("bench_preemption",
                "Preemptable execution: cheap-query latency under adversary",
                rows,
                headers=["leg", "requests", "p50_ms", "p99_ms", "shed_rate"],
                notes=[f"{record['triples']} triples, {record['rounds']} "
                       f"cheap rounds, {record['clients']} burst clients",
                       "cheap p99 slowdown under adversary: "
                       f"{record['cheap_p99_slowdown_under_adversary_x']}x "
                       "(acceptance bound: 5x)"])
    print(f"cheap p99 slowdown under adversary: "
          f"{record['cheap_p99_slowdown_under_adversary_x']}x "
          f"(unloaded {record['legs'][0]['p99_ms']}ms)")
    print(f"trajectory appended to {TRAJECTORY_PATH}")


if __name__ == "__main__":
    main()
