"""Shared fixtures for the paper-reproduction benchmarks."""

from __future__ import annotations

import pytest

from harness import build_dblp_graph, build_yago_graph, make_platform


@pytest.fixture(scope="session")
def dblp_graph_bench():
    return build_dblp_graph()


@pytest.fixture(scope="session")
def yago_graph_bench():
    return build_yago_graph()


@pytest.fixture(scope="session")
def dblp_platform(dblp_graph_bench):
    return make_platform(dblp_graph_bench)


@pytest.fixture(scope="session")
def yago_platform(yago_graph_bench):
    return make_platform(yago_graph_bench)
