"""Query hot-path benchmark: encoded store, streaming joins, plan cache.

Measures the three layers this repository's SPARQL rebuild introduced and
writes a machine-readable trajectory file so later PRs can track regressions:

1. **Ingest** — triples/second loading a synthetic DBLP KG into the
   dictionary-encoded :class:`~repro.rdf.graph.Graph`.
2. **BGP join throughput** — solutions/second for 3- and 4-pattern joins,
   streaming id-space :class:`~repro.sparql.evaluator.QueryEvaluator` vs the
   frozen seed :class:`~repro.sparql.reference.ReferenceQueryEvaluator` on
   the same graph (reported as a speedup).
3. **Plan cache** — cold (parse + plan) vs warm (cache hit) latency for the
   same query through :class:`~repro.sparql.SPARQLEndpoint`, plus the
   resulting hit rate.

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_query_pipeline.py            # full run
    PYTHONPATH=../src python bench_query_pipeline.py --smoke    # CI-sized

Each run appends one record to ``BENCH_query_pipeline.json`` next to this
script (the committed trajectory file; ``results/`` is gitignored) and
refreshes the human-readable table in ``results/bench_query_pipeline.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import RESULTS_DIR, save_report  # noqa: E402
from repro.datasets import DBLPConfig, generate_dblp_kg  # noqa: E402
from repro.rdf import Graph  # noqa: E402
from repro.sparql import SPARQLEndpoint  # noqa: E402
from repro.sparql.evaluator import QueryEvaluator, QueryPlan  # noqa: E402
from repro.sparql.parser import SPARQLParser  # noqa: E402
from repro.sparql.reference import ReferenceQueryEvaluator  # noqa: E402

# The trajectory lives next to the benchmark (not in results/, which is
# gitignored) so the perf history is committed and accumulates across PRs.
TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_query_pipeline.json")

PREFIX = "PREFIX dblp: <https://www.dblp.org/>\n"

JOIN_3PAT = PREFIX + """
SELECT ?p ?a ?v WHERE {
  ?p dblp:authoredBy ?a .
  ?p dblp:publishedIn ?v .
  ?p dblp:yearOfPublication ?y .
}"""

JOIN_4PAT = PREFIX + """
SELECT ?p ?a ?v ?y ?t WHERE {
  ?p dblp:authoredBy ?a .
  ?p dblp:publishedIn ?v .
  ?p dblp:yearOfPublication ?y .
  ?p dblp:title ?t .
}"""

CACHED_QUERY = JOIN_3PAT


def _best_of(callable_, repeats: int) -> float:
    """Run ``callable_`` ``repeats`` times, return the fastest wall time."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def bench_ingest(triples: List, repeats: int) -> Dict[str, object]:
    def load():
        graph = Graph()
        graph.add_all(triples)
    seconds = _best_of(load, repeats)
    return {
        "metric": "ingest",
        "triples": len(triples),
        "seconds": round(seconds, 6),
        "triples_per_second": round(len(triples) / seconds, 1),
    }


def bench_join(graph: Graph, label: str, query_text: str,
               repeats: int) -> Dict[str, object]:
    query = SPARQLParser(query_text, namespaces=graph.namespaces).parse_query()
    rows = len(QueryEvaluator(graph).evaluate(query))
    # The pipeline runs with a reused QueryPlan, exactly as the endpoint's
    # plan cache deploys it (compile once, stream every execution); the seed
    # evaluator has no plan concept and replans per call by design.
    plan = QueryPlan()
    new_seconds = _best_of(
        lambda: QueryEvaluator(graph, plan=plan).evaluate(query), repeats)
    seed_seconds = _best_of(
        lambda: ReferenceQueryEvaluator(graph).evaluate(query), repeats)
    return {
        "metric": f"bgp_join_{label}",
        "rows": rows,
        "pipeline_seconds": round(new_seconds, 6),
        "seed_seconds": round(seed_seconds, 6),
        "pipeline_solutions_per_second": round(rows / new_seconds, 1),
        "seed_solutions_per_second": round(rows / seed_seconds, 1),
        "speedup": round(seed_seconds / new_seconds, 3),
    }


def bench_plan_cache(graph: Graph, repeats: int) -> Dict[str, object]:
    endpoint = SPARQLEndpoint()
    endpoint.load(graph)
    started = time.perf_counter()
    cold_rows = len(endpoint.select(CACHED_QUERY))
    cold_seconds = time.perf_counter() - started
    warm = _best_of(lambda: endpoint.select(CACHED_QUERY), repeats)
    info = endpoint.cache_info()
    return {
        "metric": "plan_cache",
        "rows": cold_rows,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm, 6),
        "cold_over_warm": round(cold_seconds / warm, 3) if warm else 0.0,
        "cache_hits": info["hits"],
        "cache_misses": info["misses"],
        "hit_rate": info["hit_rate"],
    }


def run(scale: float, repeats: int) -> Dict[str, object]:
    graph = generate_dblp_kg(DBLPConfig(scale=scale, seed=7))
    triples = list(graph)
    results = [
        bench_ingest(triples, repeats),
        bench_join(graph, "3pat", JOIN_3PAT, repeats),
        bench_join(graph, "4pat", JOIN_4PAT, repeats),
        bench_plan_cache(graph, repeats),
    ]
    return {
        "benchmark": "query_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": ".".join(map(str, sys.version_info[:3])),
        "scale": scale,
        "repeats": repeats,
        "kg_triples": len(graph),
        "results": results,
    }


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        try:
            with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle)
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small KG, few repetitions")
    parser.add_argument("--scale", type=float, default=None,
                        help="KG scale factor (default 1.0, smoke 0.3)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repetitions per measurement (default 7, smoke 3)")
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (0.3 if args.smoke else 1.0)
    repeats = args.repeats if args.repeats is not None else (3 if args.smoke else 7)

    record = run(scale, repeats)
    append_trajectory(record)

    rows = []
    headers: List[str] = ["metric"]
    for result in record["results"]:
        rows.append(dict(result))
        for key in result:
            if key not in headers:
                headers.append(key)
    save_report("bench_query_pipeline",
                f"Query pipeline benchmark (scale={scale}, repeats={repeats})",
                rows, headers=headers)
    print(f"trajectory appended to {TRAJECTORY_PATH}")

    joins = [r for r in record["results"] if r["metric"].startswith("bgp_join")]
    best = max(j["speedup"] for j in joins)
    print(f"best BGP-join speedup vs seed evaluator: {best}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
