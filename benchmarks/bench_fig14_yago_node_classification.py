"""Figure 14 — YAGO-4 place-country node classification: KG vs. KGNet (KG').

Same protocol as Fig 13 but on the YAGO-4-like KG: Graph-SAINT, RGCN and
ShaDow-SAINT trained on the full KG and on the d1h1 task-specific subgraph.
"""

from __future__ import annotations

import pytest

from harness import run_training_comparison, save_report, reduction
from repro.datasets import yago_place_country_task

METHODS = ["graph_saint", "rgcn", "shadow_saint"]

_ROWS = []


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("method", METHODS)
def test_fig14_yago_place_country(benchmark, yago_platform, method):
    task = yago_place_country_task()
    rows = benchmark.pedantic(
        run_training_comparison,
        args=(yago_platform, task, method, "d1h1"),
        kwargs={"metric_key": "accuracy"},
        rounds=1, iterations=1)
    _ROWS.extend(rows)

    full_row = next(r for r in rows if r["pipeline"] == "full KG")
    kgnet_row = next(r for r in rows if r["pipeline"] != "full KG")
    assert kgnet_row["time_s"] < full_row["time_s"]
    assert kgnet_row["memory_mb"] < full_row["memory_mb"]
    assert kgnet_row["accuracy"] >= full_row["accuracy"] - 15.0
    benchmark.extra_info.update({
        "accuracy_full": full_row["accuracy"],
        "accuracy_kgnet": kgnet_row["accuracy"],
        "time_reduction": round(reduction(rows, "time_s"), 3),
        "memory_reduction": round(reduction(rows, "memory_mb"), 3),
    })

    if method == METHODS[-1]:
        save_report(
            "fig14_yago_node_classification",
            "Figure 14: YAGO-4 place-country node classification "
            "(A) accuracy %, (B) training time, (C) training memory",
            _ROWS,
            notes=[
                "Paper (full KG -> KG'): G-SAINT 79->90%, RGCN 95->81%, SH-SAINT 94->94%; "
                "time 7.3->1.8h, 2->2.1h, 6.4->2.6h; memory 130->30GB, 220->100GB, 150->50GB.",
                "Expected shape: large time/memory reductions for every method with "
                "comparable accuracy.",
            ])
