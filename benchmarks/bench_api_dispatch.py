"""API dispatch overhead and batched-inference throughput.

The API redesign routes every platform operation through versioned JSON
envelopes (``repro.kgnet.api``).  This benchmark quantifies what that surface
costs and what batching buys:

1. **Envelope overhead per call** — the same no-op operation (``ping``) and a
   cheap real operation (``list_models``) dispatched (a) straight through the
   router with rich envelopes, and (b) through :class:`APIClient`, i.e. with a
   full JSON serialise -> route -> deserialise round trip per call.
2. **Batched vs single inference** — classifying every publication through
   one ``infer_node_class`` call per node versus a single ``infer_batch``
   call, reporting HTTP calls and throughput.
"""

from __future__ import annotations

import time

import pytest

from harness import save_report
from repro.datasets import dblp_paper_venue_task
from repro.kgnet.api import APIRequest
from repro.rdf import DBLP, RDF_TYPE

_ROWS = []


@pytest.fixture(scope="module")
def platform_with_nc_model(dblp_platform):
    existing = [m for m in dblp_platform.list_models()
                if m.task_type == "node_classification"]
    if not existing:
        dblp_platform.train_task(dblp_paper_venue_task(), method="graph_saint")
    return dblp_platform


def _per_call_us(total_seconds: float, calls: int) -> float:
    return round(total_seconds / calls * 1e6, 1)


@pytest.mark.benchmark(group="api-dispatch")
@pytest.mark.parametrize("op", ["ping", "list_models"])
def test_envelope_overhead_per_call(benchmark, platform_with_nc_model, op):
    """Router dispatch vs full JSON round trip for one cheap operation."""
    platform = platform_with_nc_model
    calls = 200

    def run_router():
        for _ in range(calls):
            platform.api.dispatch(APIRequest(op=op)).raise_for_error()

    started = time.perf_counter()
    run_router()
    router_seconds = time.perf_counter() - started

    def run_client():
        for _ in range(calls):
            platform.client.call(op)

    benchmark.pedantic(run_client, rounds=1, iterations=1)
    started = time.perf_counter()
    run_client()
    client_seconds = time.perf_counter() - started

    _ROWS.append({
        "workload": f"{op} (router, rich envelopes)",
        "calls": calls,
        "http_calls": 0,
        "per_call_us": _per_call_us(router_seconds, calls),
        "items_per_s": round(calls / router_seconds),
    })
    _ROWS.append({
        "workload": f"{op} (client, JSON round trip)",
        "calls": calls,
        "http_calls": 0,
        "per_call_us": _per_call_us(client_seconds, calls),
        "items_per_s": round(calls / client_seconds),
    })
    benchmark.extra_info["per_call_us_json"] = _per_call_us(client_seconds, calls)


@pytest.mark.benchmark(group="api-dispatch")
def test_batched_vs_single_inference(benchmark, platform_with_nc_model):
    """One infer_batch call vs one infer_node_class call per target node."""
    platform = platform_with_nc_model
    model = next(m for m in platform.list_models()
                 if m.task_type == "node_classification")
    papers = [s.value for s in platform.graph.subjects(
        RDF_TYPE, DBLP["Publication"])]

    before = platform.http_calls
    started = time.perf_counter()
    for paper in papers:
        platform.predict_node_class(model.uri, paper)
    single_seconds = time.perf_counter() - started
    single_calls = platform.http_calls - before

    def run_batch():
        return platform.client.infer_batch(model.uri.value, papers)

    batch_result = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    started = time.perf_counter()
    batch_result = run_batch()
    batch_seconds = time.perf_counter() - started

    assert batch_result["total"] == len(papers)
    assert batch_result["http_calls"] == 1

    _ROWS.append({
        "workload": "infer single (1 call per node)",
        "calls": len(papers),
        "http_calls": single_calls,
        "per_call_us": _per_call_us(single_seconds, len(papers)),
        "items_per_s": round(len(papers) / single_seconds),
    })
    _ROWS.append({
        "workload": "infer_batch (1 call, JSON round trip)",
        "calls": 1,
        "http_calls": batch_result["http_calls"],
        "per_call_us": _per_call_us(batch_seconds, len(papers)),
        "items_per_s": round(len(papers) / batch_seconds),
    })
    save_report(
        "api_dispatch",
        "Service API: envelope dispatch overhead and batched inference throughput",
        _ROWS,
        notes=[
            "per_call_us amortises total wall-clock over logical items "
            "(calls for ping/list_models, nodes for inference).",
            "The JSON rows pay serialise -> route -> deserialise on every "
            "call; batching amortises it across the whole input list.",
        ])
