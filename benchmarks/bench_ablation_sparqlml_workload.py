"""Ablation E10 — SPARQL-ML optimizer benchmark workload (paper §III-C).

The paper identifies "benchmarks to evaluate optimization approaches for
SPARQL-ML queries" — queries varying in the number of user-defined
predicates and the cardinality of their variables — as a research
opportunity.  This benchmark generates such a workload with
:class:`repro.kgnet.sparqlml.workload.SPARQLMLWorkloadGenerator`, executes it
once with the cost-based plan optimizer and once with each plan forced, and
reports the total number of UDF/HTTP calls each strategy needs.
"""

from __future__ import annotations

import pytest

from harness import save_report
from repro.datasets import dblp_author_affiliation_task, dblp_paper_venue_task
from repro.kgnet import SPARQLMLWorkloadGenerator, run_workload

_ROWS = []
_STRATEGIES = [("optimizer", None), ("force per_instance", "per_instance"),
               ("force dictionary", "dictionary")]


@pytest.fixture(scope="module")
def workload_platform(dblp_platform):
    tasks = {m.task_type for m in dblp_platform.list_models()}
    if "node_classification" not in tasks:
        dblp_platform.train_task(dblp_paper_venue_task(), method="graph_saint")
    if "link_prediction" not in tasks:
        dblp_platform.train_task(dblp_author_affiliation_task(), method="morse",
                                 meta_sampling="d2h1")
    return dblp_platform


@pytest.fixture(scope="module")
def workload(workload_platform):
    generator = SPARQLMLWorkloadGenerator(workload_platform, seed=5)
    return generator.generate(num_queries=6, selectivities=(1.0, 0.5, 0.1))


@pytest.mark.benchmark(group="ablation-sparqlml-workload")
@pytest.mark.parametrize("label,plan", _STRATEGIES, ids=[s[0] for s in _STRATEGIES])
def test_workload_execution_strategy(benchmark, workload_platform, workload,
                                     label, plan):
    reports = benchmark.pedantic(run_workload, args=(workload_platform, workload),
                                 kwargs={"force_plan": plan}, rounds=1, iterations=1)
    total_calls = sum(r.http_calls for r in reports)
    total_rows = sum(r.rows for r in reports)
    assert total_rows > 0
    _ROWS.append({
        "strategy": label,
        "queries": len(reports),
        "total_http_calls": total_calls,
        "total_rows": total_rows,
        "total_exec_s": round(sum(r.elapsed_seconds for r in reports), 4),
    })
    benchmark.extra_info["total_http_calls"] = total_calls

    if label == _STRATEGIES[-1][0]:
        optimizer_calls = next(r["total_http_calls"] for r in _ROWS
                               if r["strategy"] == "optimizer")
        forced_calls = [r["total_http_calls"] for r in _ROWS
                        if r["strategy"] != "optimizer"]
        # The cost-based optimizer must not be worse than either fixed strategy.
        assert optimizer_calls <= max(forced_calls)
        per_query_rows = [r.as_row() for r in reports]
        save_report(
            "ablation_sparqlml_workload",
            "SPARQL-ML optimizer benchmark workload (paper §III-C): "
            "total UDF/HTTP calls per execution strategy",
            _ROWS,
            notes=["Workload: mixed NC/LP predicates, single- and two-predicate "
                   "queries, selectivities 1.0/0.5/0.1.",
                   "Per-query details of the last run: " +
                   "; ".join(f"{row['name']}={row['http_calls']} calls"
                             for row in per_query_rows)])
