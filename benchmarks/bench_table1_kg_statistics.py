"""Table I — statistics of the benchmark KGs and their GML tasks.

Paper Table I reports, for DBLP and YAGO-4: the number of triples, the
number of classification / link-prediction targets, and the number of edge
and node types.  This benchmark regenerates the same rows for the synthetic
KGs (at laptop scale) and measures how long statistics collection takes.
"""

from __future__ import annotations

import pytest

from harness import save_report
from repro.datasets import dblp_paper_venue_task, yago_place_country_task
from repro.rdf import DBLP, YAGO, RDF_TYPE
from repro.rdf.stats import compute_statistics


def _table1_row(name, graph, target_type, label_predicate, tasks):
    stats = compute_statistics(graph)
    labels = set()
    for _, _, obj in graph.triples(None, label_predicate, None):
        labels.add(obj)
    return {
        "Knowledge Graph": name,
        "#Triples": stats.num_triples,
        "#Targets": graph.count(None, RDF_TYPE, target_type),
        "#Classes": len(labels),
        "#Edge Types": stats.num_edge_types,
        "#Node Types": stats.num_node_types,
        "Tasks": tasks,
    }


@pytest.mark.benchmark(group="table1")
def test_table1_dblp_statistics(benchmark, dblp_graph_bench):
    task = dblp_paper_venue_task()
    row = benchmark.pedantic(
        _table1_row, args=("DBLP", dblp_graph_bench, task.target_node_type,
                           task.label_predicate, "NC,LP,ES"),
        rounds=1, iterations=1)
    assert row["#Edge Types"] >= 15
    assert row["#Node Types"] >= 10
    benchmark.extra_info.update({k: v for k, v in row.items() if k != "Tasks"})
    test_table1_dblp_statistics.row = row


@pytest.mark.benchmark(group="table1")
def test_table1_yago_statistics(benchmark, yago_graph_bench, dblp_graph_bench):
    task = yago_place_country_task()
    row = benchmark.pedantic(
        _table1_row, args=("YAGO4", yago_graph_bench, task.target_node_type,
                           task.label_predicate, "NC"),
        rounds=1, iterations=1)
    assert row["#Edge Types"] >= 15
    benchmark.extra_info.update({k: v for k, v in row.items() if k != "Tasks"})

    dblp_task = dblp_paper_venue_task()
    dblp_row = _table1_row("DBLP", dblp_graph_bench, dblp_task.target_node_type,
                           dblp_task.label_predicate, "NC,LP,ES")
    save_report(
        "table1_kg_statistics",
        "Table I: Statistics of the used KGs and GNN tasks (synthetic, laptop scale)",
        [dblp_row, row],
        notes=[
            "Paper: DBLP 252M triples / 48 edge types / 42 node types; "
            "YAGO4 400M triples / 98 edge types / 104 node types.",
            "The synthetic KGs preserve the heterogeneity (many node/edge types, "
            "few classes) at ~10^3-10^4 triples.",
        ])
