"""Ablation E5 — meta-sampling parameter study (d x h).

Paper §IV-B.2 evaluates four combinations of direction d ∈ {1,2} and hops
h ∈ {1,2} and reports that d1h1 works best for node classification while
d2h1 works best for link prediction.  This benchmark measures, for each
configuration, the size of the extracted subgraph and the accuracy / Hits@10
obtained by training on it, plus the extraction cost itself.
"""

from __future__ import annotations

import pytest

from harness import make_platform, save_report
from repro.datasets import dblp_author_affiliation_task, dblp_paper_venue_task
from repro.kgnet import MetaSampler, MetaSamplingConfig

CONFIGS = ["d1h1", "d2h1", "d1h2", "d2h2"]

_NC_ROWS = []
_LP_ROWS = []


@pytest.mark.benchmark(group="ablation-meta-sampling")
@pytest.mark.parametrize("label", CONFIGS)
def test_meta_sampling_extraction_cost(benchmark, dblp_graph_bench, label):
    """Extraction time and subgraph size per (d, h) configuration."""
    sampler = MetaSampler(MetaSamplingConfig.from_label(label))
    task = dblp_paper_venue_task()
    subgraph, report = benchmark.pedantic(
        sampler.extract, args=(dblp_graph_bench, task), rounds=1, iterations=1)
    assert 0 < len(subgraph) <= len(dblp_graph_bench)
    benchmark.extra_info.update(report.as_dict())
    # Monotonicity: more hops / both directions never shrink the subgraph.
    if label == "d2h2":
        d1h1 = MetaSampler(MetaSamplingConfig(1, 1)).extract(dblp_graph_bench, task)[1]
        assert report.num_subgraph_triples >= d1h1.num_subgraph_triples


@pytest.mark.benchmark(group="ablation-meta-sampling")
@pytest.mark.parametrize("label", ["d1h1", "d2h1"])
def test_meta_sampling_accuracy_nc(benchmark, dblp_graph_bench, label):
    """Node-classification accuracy when training on each subgraph flavour."""
    platform = make_platform(dblp_graph_bench)
    task = dblp_paper_venue_task()

    def run():
        return platform.train_task(task, method="graph_saint", meta_sampling=label)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _NC_ROWS.append({
        "task": "NC paper-venue", "config": label,
        "metric_%": round(report.metrics["accuracy"] * 100, 1),
        "subgraph_triples": report.meta_sampling["num_subgraph_triples"],
        "time_s": round(report.training["elapsed_seconds"], 2),
    })
    assert report.metrics["accuracy"] > 0.0


@pytest.mark.benchmark(group="ablation-meta-sampling")
@pytest.mark.parametrize("label", ["d1h1", "d2h1"])
def test_meta_sampling_hits_lp(benchmark, dblp_graph_bench, label):
    """Link-prediction Hits@10 when training on each subgraph flavour."""
    platform = make_platform(dblp_graph_bench)
    task = dblp_author_affiliation_task()

    def run():
        return platform.train_task(task, method="morse", meta_sampling=label)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _LP_ROWS.append({
        "task": "LP author-affiliation", "config": label,
        "metric_%": round(report.metrics["hits@10"] * 100, 1),
        "subgraph_triples": report.meta_sampling["num_subgraph_triples"],
        "time_s": round(report.training["elapsed_seconds"], 2),
    })
    assert report.metrics["hits@10"] >= 0.0
    if label == "d2h1":
        save_report(
            "ablation_meta_sampling",
            "Meta-sampling parameter study (paper §IV-B.2): d/h vs subgraph size and quality",
            _NC_ROWS + _LP_ROWS,
            notes=[
                "Paper: d1h1 is the best setting for node classification, "
                "d2h1 for link prediction.",
            ])
