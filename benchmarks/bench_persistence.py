"""Durable-storage benchmark: bulk load, checkpoint, restore, WAL replay.

Measures the four legs of the ``repro.storage`` subsystem on a synthetic
KG (100k triples by default) and keeps a perf trajectory across PRs:

* ``turtle_parse`` — the pre-storage baseline: re-parsing the KG's
  N-Triples text through the tokenizer into a fresh graph (what every
  process restart cost before checkpoints existed),
* ``bulk_load`` — the streaming loader: parser output fed into the id-space
  indexes in batches (one epoch bump per batch),
* ``checkpoint_write`` / ``checkpoint_restore`` — the binary snapshot path;
  ``restore_speedup_vs_parse`` is the ISSUE-4 acceptance number (must be
  ≥ 5× on the 100k-triple KG),
* ``wal_replay`` — committed-transaction recovery throughput.

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_persistence.py            # full run
    PYTHONPATH=../src python bench_persistence.py --smoke    # CI-sized

Each run appends one record to ``BENCH_persistence.json`` next to this
script and refreshes ``results/bench_persistence.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import save_report  # noqa: E402
from repro.rdf import Dataset, IRI, Literal, Triple, parse_ntriples, serialize_ntriples  # noqa: E402
from repro.storage import (  # noqa: E402
    StorageEngine,
    read_checkpoint,
    stream_load,
    write_checkpoint,
)

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_persistence.json")

EX = "http://example.org/bench/persist/"


def build_triples(count: int) -> List[Triple]:
    """A synthetic KG with realistic term reuse (shared predicates/objects)."""
    predicates = [IRI(EX + f"p{i}") for i in range(12)]
    triples = []
    append = triples.append
    for index in range(count):
        subject = IRI(EX + f"s{index % (count // 4 or 1)}")
        predicate = predicates[index % len(predicates)]
        bucket = index % 5
        if bucket == 0:
            obj = Literal(index)
        elif bucket == 1:
            obj = Literal(f"label {index}", language="en")
        else:
            # 997 is prime w.r.t. every cycle above, so (s, p, o) never
            # collides and the KG really holds `count` distinct triples.
            obj = IRI(EX + f"o{index % 997}")
        append(Triple(subject, predicate, obj))
    return triples


#: Timing repeats; the best run is reported so a noisy neighbour can not
#: skew the restore-vs-parse ratio the acceptance criterion keys on.
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def bench_parse(text: str) -> Dict[str, object]:
    graph, elapsed = _best_of(lambda: parse_ntriples(text))
    return {"metric": "turtle_parse", "triples": len(graph),
            "seconds": round(elapsed, 4),
            "triples_per_second": round(len(graph) / elapsed, 1)}, elapsed


def bench_bulk_load(text: str) -> Dict[str, object]:
    dataset = Dataset()
    started = time.perf_counter()
    report = stream_load(dataset.default_graph, text)
    elapsed = time.perf_counter() - started
    row = {"metric": "bulk_load", "triples": report.triples_added,
           "batches": report.batches, "seconds": round(elapsed, 4),
           "triples_per_second": round(report.triples_added / elapsed, 1)}
    return row, dataset


def bench_checkpoint(dataset: Dataset, directory: str, parse_seconds: float):
    path = os.path.join(directory, "bench.kgck")
    started = time.perf_counter()
    info = write_checkpoint(dataset, path)
    write_elapsed = time.perf_counter() - started
    write_row = {"metric": "checkpoint_write", "triples": info.triples,
                 "bytes": info.bytes, "seconds": round(write_elapsed, 4),
                 "triples_per_second": round(info.triples / write_elapsed, 1)}
    (restored, _, _), restore_elapsed = _best_of(lambda: read_checkpoint(path))
    assert len(restored) == len(dataset)
    restore_row = {"metric": "checkpoint_restore", "triples": len(restored),
                   "seconds": round(restore_elapsed, 4),
                   "triples_per_second": round(len(restored) / restore_elapsed, 1),
                   "restore_speedup_vs_parse": round(parse_seconds / restore_elapsed, 2)}
    return write_row, restore_row


def bench_wal_replay(triples: List[Triple], directory: str,
                     batch: int = 50) -> Dict[str, object]:
    """Commit the KG through the WAL in batches, then time recovery."""
    wal_dir = os.path.join(directory, "wal-bench")
    engine = StorageEngine(wal_dir)
    graph = engine.open().default_graph
    subset = triples[: min(len(triples), 20_000)]
    for start in range(0, len(subset), batch):
        graph.add_all(subset[start:start + batch])
    commits = engine._wal.commits
    wal_bytes = engine._wal.size_bytes()
    engine.close()
    replay = StorageEngine(wal_dir)
    started = time.perf_counter()
    recovered = replay.open()
    elapsed = time.perf_counter() - started
    row = {"metric": "wal_replay", "transactions": replay.recovered_transactions,
           "ops": replay.recovered_ops, "wal_bytes": wal_bytes,
           "seconds": round(elapsed, 4),
           "ops_per_second": round(replay.recovered_ops / elapsed, 1)}
    assert replay.recovered_transactions == commits
    assert len(recovered.default_graph) == len(graph)
    replay.close()
    return row


def run(triple_count: int) -> Dict[str, object]:
    directory = tempfile.mkdtemp(prefix="kgnet-bench-persist-")
    try:
        triples = build_triples(triple_count)
        source = Dataset()
        source.default_graph.add_all(triples)
        text = serialize_ntriples(source.default_graph)

        parse_row, parse_seconds = bench_parse(text)
        bulk_row, dataset = bench_bulk_load(text)
        write_row, restore_row = bench_checkpoint(dataset, directory,
                                                  parse_seconds)
        replay_row = bench_wal_replay(triples, directory)
        return {
            "benchmark": "persistence",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": ".".join(map(str, sys.version_info[:3])),
            "kg_triples": len(source.default_graph),
            "results": [parse_row, bulk_row, write_row, restore_row,
                        replay_row],
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        try:
            with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle)
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 10k triples")
    parser.add_argument("--triples", type=int, default=None,
                        help="KG size (default 100000, smoke 10000)")
    args = parser.parse_args(argv)
    count = args.triples if args.triples is not None else (
        10_000 if args.smoke else 100_000)

    record = run(count)
    append_trajectory(record)

    rows: List[Dict[str, object]] = []
    headers: List[str] = ["metric"]
    for result in record["results"]:
        rows.append(dict(result))
        for key in result:
            if key not in headers:
                headers.append(key)
    save_report("bench_persistence",
                f"Durable storage benchmark ({record['kg_triples']} triples)",
                rows, headers=headers)
    print(f"trajectory appended to {TRAJECTORY_PATH}")
    speedup = record["results"][3]["restore_speedup_vs_parse"]
    print(f"checkpoint restore is {speedup}x faster than re-parsing Turtle")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
