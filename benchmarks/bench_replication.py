"""Replication benchmark: read scale-out and follower catch-up speed.

Boots a real multi-process cluster via ``python -m repro.replication`` —
one primary and up to four replicas, each its own OS process on loopback —
and measures:

* **read QPS at 0/1/2/4 replicas** — concurrent readers behind a
  :class:`~repro.replication.ReplicaSetClient`; 0 replicas is the
  single-node baseline every scale-out factor is reported against.
  Separate processes matter here: in-process replicas would share one
  interpreter and scale nothing,
* **catch-up speed** — a fresh follower joins after the primary has
  accumulated its history and tail-applies everything; reported normalised
  as seconds per 10k commits,
* **write throughput through the router** (context for the catch-up rate:
  the follower must apply at least this fast to ever converge).

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_replication.py            # full run
    PYTHONPATH=../src python bench_replication.py --smoke    # CI-sized

Each run appends one record to ``BENCH_replication.json`` next to this
script and refreshes ``results/bench_replication.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import percentile, save_report  # noqa: E402
from repro.replication import ReplicaSetClient  # noqa: E402
from repro.server import RemoteClient  # noqa: E402

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_replication.json")
SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, "src")

EX = "http://example.org/bench/repl/"
#: Server-CPU-heavy with a one-row response: the cost of a read lives on
#: the node that serves it, so aggregate QPS grows with serving processes
#: (given the cores to run them — see the cpu_count note in the record).
HOT_QUERY = f'SELECT (COUNT(?s) AS ?n) WHERE {{ ?s ?p ?o }}'


def spawn_node(role: str, directory: str, *extra: str
               ) -> Tuple[subprocess.Popen, str]:
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.replication", role,
         "--dir", directory, "--port", "0", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline().strip()
    parts = line.split()
    if len(parts) != 3 or parts[0] != "KGNET_NODE":
        proc.kill()
        raise RuntimeError(f"bad node banner {line!r}: "
                           f"{proc.stderr.read()[:2000]}")
    return proc, parts[2]


def wait_caught_up(url: str, seq: int, timeout: float = 300.0) -> float:
    """Poll the node's status until ``applied_seq`` reaches ``seq``."""
    client = RemoteClient(url)
    deadline = time.time() + timeout
    try:
        while time.time() < deadline:
            if int(client.replication_status()["applied_seq"]) >= seq:
                return time.time()
            time.sleep(0.02)
    finally:
        client.close()
    raise RuntimeError(f"{url} did not reach seq {seq} in {timeout}s")


def load_commits(primary_url: str, commits: int) -> Dict[str, object]:
    """One INSERT per commit (the WAL shape replication actually ships)."""
    client = RemoteClient(primary_url)
    started = time.perf_counter()
    for n in range(commits):
        client.protocol_update(
            f'INSERT DATA {{ <{EX}s{n}> <{EX}p{n % 8}> "value {n % 101}" }}')
    elapsed = time.perf_counter() - started
    seq = int(client.replication_status()["last_seq"])
    client.close()
    return {"leg": "write_throughput", "commits": commits,
            "seconds": round(elapsed, 4),
            "qps": round(commits / elapsed, 1),
            "last_seq": seq}


def bench_read_qps(primary_url: str, replica_urls: List[str],
                   requests: int, workers: int) -> Dict[str, object]:
    """Aggregate read QPS through the router at this replica count."""
    per_worker = max(1, requests // workers)
    buckets: List[List[float]] = [[] for _ in range(workers)]
    errors: List[BaseException] = []

    def worker(slot: int) -> None:
        # One router per thread: each holds its own keep-alive connections,
        # exactly how independent application sessions behave.
        router = ReplicaSetClient(primary_url, list(replica_urls))
        try:
            for _ in range(per_worker):
                t0 = time.perf_counter()
                router.select(HOT_QUERY)
                buckets[slot].append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)
        finally:
            router.close()

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(workers)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    latencies = sorted(lat for bucket in buckets for lat in bucket)
    total = len(latencies)
    return {"leg": f"read_x{len(replica_urls)}_replicas",
            "replicas": len(replica_urls), "requests": total,
            "seconds": round(elapsed, 4),
            "qps": round(total / elapsed, 1),
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3)}


def run(commits: int, requests: int, workers: int) -> Dict[str, object]:
    procs: List[subprocess.Popen] = []
    tmp = tempfile.mkdtemp(prefix="bench-replication-")
    try:
        primary, primary_url = spawn_node(
            "primary", os.path.join(tmp, "primary"), "--no-fsync",
            "--retain-segments", "64")
        procs.append(primary)

        write_leg = load_commits(primary_url, commits)
        last_seq = write_leg["last_seq"]

        # Followers join AFTER the history exists: the first one's
        # convergence time is the catch-up measurement.
        replica_urls: List[str] = []
        catch_up_seconds = None
        for i in range(4):
            t0 = time.time()
            proc, url = spawn_node(
                "replica", os.path.join(tmp, f"replica{i}"),
                "--primary", primary_url, "--poll-interval", "0.02")
            procs.append(proc)
            done = wait_caught_up(url, last_seq)
            if catch_up_seconds is None:
                catch_up_seconds = done - t0
            replica_urls.append(url)

        legs = [write_leg]
        for count in (0, 1, 2, 4):
            legs.append(bench_read_qps(primary_url, replica_urls[:count],
                                       requests, workers))

        by_replicas = {leg.get("replicas"): leg for leg in legs[1:]}
        baseline = by_replicas[0]["qps"]
        record = {
            "benchmark": "replication",
            "commits": commits,
            "requests": requests,
            "workers": workers,
            # Scale-out is process-per-node: aggregate read QPS can only
            # exceed single-node when there are cores to put nodes on.
            "cpu_count": os.cpu_count(),
            "legs": legs,
            "catch_up_seconds": round(catch_up_seconds, 4),
            "catch_up_seconds_per_10k_commits": round(
                catch_up_seconds * 10_000 / commits, 4),
            "speedup_1_replica": round(by_replicas[1]["qps"] / baseline, 2),
            "speedup_2_replicas": round(by_replicas[2]["qps"] / baseline, 2),
            "speedup_4_replicas": round(by_replicas[4]["qps"] / baseline, 2),
        }
        return record
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    record = dict(record)
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer commits and requests)")
    args = parser.parse_args()
    commits = 1_000 if args.smoke else 10_000
    requests = 240 if args.smoke else 2_000
    workers = 6 if args.smoke else 8

    record = run(commits, requests, workers)
    append_trajectory(record)

    rows = []
    for leg in record["legs"]:
        rows.append({"leg": leg["leg"], "requests": leg.get("requests",
                                                           leg.get("commits")),
                     "qps": leg["qps"],
                     "p50_ms": leg.get("p50_ms", ""),
                     "p99_ms": leg.get("p99_ms", "")})
    save_report("bench_replication",
                "Scale-out serving: read QPS by replica count + catch-up",
                rows, headers=["leg", "requests", "qps", "p50_ms", "p99_ms"],
                notes=[f"{record['commits']} commits shipped; catch-up "
                       f"{record['catch_up_seconds']}s "
                       f"({record['catch_up_seconds_per_10k_commits']}s "
                       "per 10k commits)",
                       f"read speedup vs single node: "
                       f"1 replica {record['speedup_1_replica']}x, "
                       f"2 replicas {record['speedup_2_replicas']}x, "
                       f"4 replicas {record['speedup_4_replicas']}x "
                       f"(on {record['cpu_count']} cores)"])
    print(f"2-replica aggregate read QPS = "
          f"{record['speedup_2_replicas']}x single node; "
          f"catch-up {record['catch_up_seconds_per_10k_commits']}s "
          "per 10k commits")
    print(f"trajectory appended to {TRAJECTORY_PATH}")


if __name__ == "__main__":
    main()


