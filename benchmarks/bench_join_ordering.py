"""Join-ordering benchmark: cost-based vs. syntactic order, adversarial KG.

The proving ground is the streaming Zipf-skewed synthetic KG
(:func:`repro.datasets.stream_synthetic_kg`): predicate ``p0`` covers the
majority of all link triples, while exactly 20 entities carry the
``RareType`` class.  Every benchmark query is *written* popular-pattern
first — the order a naive (syntactic) evaluator executes verbatim, scanning
hundreds of thousands of ``p0`` bindings before ever consulting the
selective anchor.  The cost-based optimizer must flip the order from the
statistics alone, starting at the 20 RareType members.

Legs per scale (100k / 1M / 10M triples):

* ``optimized`` — ``QueryEvaluator(graph)`` (cost-based ordering on),
* ``syntactic`` — the same query, ``optimize_joins=False``,

with identical row counts required (the differential suites prove the
general case; the benchmark re-checks its own queries).  The closure query
runs at the smallest scale only — an unanchored closure over the hub
predicate is quadratic-ish for the syntactic side and would drown the run.

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_join_ordering.py                 # 100k + 1M
    PYTHONPATH=../src python bench_join_ordering.py --smoke         # CI: 100k
    PYTHONPATH=../src python bench_join_ordering.py --scales 10000000
    PYTHONPATH=../src python bench_join_ordering.py --smoke --check-speedup 3

``--check-speedup X`` exits non-zero unless, at every scale, at least one
adversarially-ordered query runs at least ``X`` times faster optimized than
syntactic — the CI regression gate for the optimizer.

Each run appends one record to ``BENCH_join_ordering.json`` next to this
script and refreshes ``results/bench_join_ordering.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import save_report  # noqa: E402
from repro.datasets import StreamingKGConfig, stream_synthetic_kg  # noqa: E402
from repro.rdf import Graph  # noqa: E402
from repro.sparql import QueryEvaluator, SPARQLParser  # noqa: E402
from repro.storage.bulkload import stream_load_triples  # noqa: E402

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_join_ordering.json")

BASE = StreamingKGConfig().base_iri
RARE = f"{BASE}RareType"
P0 = f"{BASE}p0"
P1 = f"{BASE}p1"

#: (name, SPARQL written in the ADVERSARIAL order, closure?).
QUERIES = [
    ("popular_scan_before_rare_anchor",
     f"SELECT ?x ?y WHERE {{ ?x <{P0}> ?y . ?x a <{RARE}> . }}",
     False),
    ("popular_chain_before_rare_anchor",
     f"SELECT ?x ?y ?z WHERE {{ ?x <{P0}> ?y . ?y <{P1}> ?z . "
     f"?x a <{RARE}> . }}",
     False),
    ("unanchored_closure_before_rare_anchor",
     f"SELECT ?x ?z WHERE {{ ?x <{P1}>+ ?z . ?x a <{RARE}> . }}",
     True),
]


def build_graph(num_triples: int) -> Graph:
    graph = Graph()
    config = StreamingKGConfig(num_triples=num_triples)
    report = stream_load_triples(graph, stream_synthetic_kg(config))
    print(f"  loaded {report.triples_added} triples "
          f"({report.triples_per_second:,.0f}/s)", flush=True)
    return graph


def run_query(graph: Graph, text: str, optimize: bool,
              repetitions: int) -> Dict[str, float]:
    query = SPARQLParser(text).parse_query()
    best = float("inf")
    rows = 0
    for _ in range(repetitions):
        evaluator = QueryEvaluator(graph, optimize_joins=optimize)
        started = time.perf_counter()
        rows = sum(1 for _ in evaluator.evaluate(query).solutions)
        best = min(best, time.perf_counter() - started)
    return {"seconds": best, "rows": rows}


def run_scale(num_triples: int, repetitions: int) -> List[Dict[str, object]]:
    print(f"scale {num_triples:,}:", flush=True)
    graph = build_graph(num_triples)
    legs: List[Dict[str, object]] = []
    for name, text, closure in QUERIES:
        if closure and num_triples > 100_000:
            continue  # syntactic unanchored closure would drown the run
        optimized = run_query(graph, text, optimize=True,
                              repetitions=repetitions)
        syntactic = run_query(graph, text, optimize=False, repetitions=1)
        if optimized["rows"] != syntactic["rows"]:
            raise SystemExit(
                f"result mismatch on {name}: optimized {optimized['rows']} "
                f"rows vs syntactic {syntactic['rows']}")
        speedup = syntactic["seconds"] / max(optimized["seconds"], 1e-9)
        legs.append({
            "query": name,
            "triples": num_triples,
            "rows": optimized["rows"],
            "optimized_ms": round(optimized["seconds"] * 1000, 3),
            "syntactic_ms": round(syntactic["seconds"] * 1000, 3),
            "speedup_x": round(speedup, 2),
        })
        print(f"  {name}: {legs[-1]['optimized_ms']}ms optimized vs "
              f"{legs[-1]['syntactic_ms']}ms syntactic "
              f"({legs[-1]['speedup_x']}x, {optimized['rows']} rows)",
              flush=True)
    return legs


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    record = dict(record)
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 100k-triple scale only")
    parser.add_argument("--scales", type=int, nargs="+", default=None,
                        help="triple counts to run (default: 100000 1000000)")
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless some query is >= X times faster "
                             "optimized at every scale")
    args = parser.parse_args()
    if args.scales:
        scales = args.scales
    elif args.smoke:
        scales = [100_000]
    else:
        scales = [100_000, 1_000_000]

    legs: List[Dict[str, object]] = []
    for num_triples in scales:
        legs.extend(run_scale(num_triples, repetitions=1 if args.smoke else 3))

    record = {
        "benchmark": "join_ordering",
        "scales": scales,
        "smoke": bool(args.smoke),
        "legs": legs,
        "best_speedup_x": max(leg["speedup_x"] for leg in legs),
    }
    append_trajectory(record)

    save_report(
        "bench_join_ordering",
        "Cost-based join ordering vs. syntactic order (adversarial queries)",
        [{"query": leg["query"], "triples": leg["triples"],
          "rows": leg["rows"], "optimized_ms": leg["optimized_ms"],
          "syntactic_ms": leg["syntactic_ms"],
          "speedup_x": leg["speedup_x"]} for leg in legs],
        headers=["query", "triples", "rows", "optimized_ms", "syntactic_ms",
                 "speedup_x"],
        notes=["queries are written popular-pattern first (the adversarial "
               "order); the syntactic leg executes them verbatim",
               "closure query runs at the 100k scale only"])

    if args.check_speedup is not None:
        for num_triples in scales:
            at_scale = [leg for leg in legs if leg["triples"] == num_triples]
            best = max(leg["speedup_x"] for leg in at_scale)
            if best < args.check_speedup:
                raise SystemExit(
                    f"speedup gate failed at {num_triples} triples: best "
                    f"{best}x < required {args.check_speedup}x")
        print(f"speedup gate passed (>= {args.check_speedup}x at every scale)")


if __name__ == "__main__":
    main()
