"""Substrate benchmark E9 — the SPARQL engine the platform runs on.

KGNet's meta-sampler, KGMeta lookups and rewritten queries all execute as
SPARQL against the RDF engine, so the engine's basic-graph-pattern matching
and join-order optimization are on the critical path.  This benchmark
measures triple-pattern matching, a 3-way join with and without the
cardinality-based reordering, aggregation, and an update batch.
"""

from __future__ import annotations

import pytest

from harness import save_report
from repro.sparql import SPARQLEndpoint

_ROWS = []

PREFIX = "PREFIX dblp: <https://www.dblp.org/>\n"

JOIN_QUERY = PREFIX + """
SELECT ?paper ?author ?affiliation WHERE {
  ?paper a dblp:Publication .
  ?paper dblp:authoredBy ?author .
  ?author dblp:affiliation ?affiliation .
}"""

AGGREGATE_QUERY = PREFIX + """
SELECT ?venue (COUNT(?paper) AS ?n) WHERE {
  ?paper a dblp:Publication .
  ?paper dblp:publishedIn ?venue .
} GROUP BY ?venue ORDER BY DESC(?n)"""


@pytest.fixture(scope="module")
def loaded_endpoint(dblp_graph_bench):
    endpoint = SPARQLEndpoint()
    endpoint.load(dblp_graph_bench)
    return endpoint


@pytest.mark.benchmark(group="substrate-sparql")
def test_bgp_single_pattern(benchmark, loaded_endpoint):
    result = benchmark(loaded_endpoint.select,
                       PREFIX + "SELECT ?p WHERE { ?p a dblp:Publication . }")
    assert len(result) > 0
    _ROWS.append({"query": "single pattern (type scan)", "rows": len(result)})


@pytest.mark.benchmark(group="substrate-sparql")
def test_three_way_join_optimized(benchmark, loaded_endpoint):
    result = benchmark(loaded_endpoint.select, JOIN_QUERY)
    assert len(result) > 0
    _ROWS.append({"query": "3-way join (optimized)", "rows": len(result)})


@pytest.mark.benchmark(group="substrate-sparql")
def test_three_way_join_unoptimized(benchmark, dblp_graph_bench):
    endpoint = SPARQLEndpoint(optimize_joins=False)
    endpoint.load(dblp_graph_bench)
    result = benchmark(endpoint.select, JOIN_QUERY)
    assert len(result) > 0
    _ROWS.append({"query": "3-way join (no reordering)", "rows": len(result)})


@pytest.mark.benchmark(group="substrate-sparql")
def test_aggregation(benchmark, loaded_endpoint):
    result = benchmark(loaded_endpoint.select, AGGREGATE_QUERY)
    assert len(result) > 0
    _ROWS.append({"query": "group-by aggregation", "rows": len(result)})


@pytest.mark.benchmark(group="substrate-sparql")
def test_update_roundtrip(benchmark, dblp_graph_bench):
    endpoint = SPARQLEndpoint()
    endpoint.load(dblp_graph_bench)

    def insert_and_delete():
        endpoint.update(PREFIX + "INSERT DATA { dblp:bench/x dblp:p dblp:bench/y . }")
        endpoint.update(PREFIX + "DELETE DATA { dblp:bench/x dblp:p dblp:bench/y . }")

    benchmark(insert_and_delete)
    _ROWS.append({"query": "insert+delete roundtrip", "rows": 2})
    save_report(
        "substrate_sparql_engine",
        "SPARQL engine micro-benchmarks (substrate for meta-sampling and SPARQL-ML)",
        _ROWS,
        notes=["Join reordering uses triple-pattern cardinality estimates from the "
               "store indexes (same idea Virtuoso applies)."])
