"""HTTP serving benchmark: the network path vs in-process dispatch.

Boots a real :class:`~repro.server.http.KGNetHTTPServer` on loopback and
measures the same SPARQL SELECT workload three ways:

* ``inprocess`` — ``router.dispatch`` in a plain loop (the PR-1 baseline
  every envelope rides on; no sockets, no serialization),
* ``http_sequential`` — one :class:`~repro.server.RemoteClient` on one
  keep-alive connection (per-request wire overhead),
* ``http_concurrent`` — N clients on N keep-alive connections hammering the
  worker-pool-threaded server (aggregate QPS + p50/p99 as a client sees
  them),

plus ``http_stream_large`` — a big SELECT negotiated to JSON and streamed
chunked, reported as rows/s end to end.

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_http_serving.py            # full run
    PYTHONPATH=../src python bench_http_serving.py --smoke    # CI-sized

Each run appends one record to ``BENCH_http_serving.json`` next to this
script and refreshes ``results/bench_http_serving.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import percentile, save_report  # noqa: E402
from repro.kgnet import KGNet  # noqa: E402
from repro.kgnet.api import APIRequest  # noqa: E402
from repro.rdf import IRI, Literal, Triple  # noqa: E402
from repro.server import RemoteClient, serve  # noqa: E402

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_http_serving.json")

EX = "http://example.org/bench/http/"
HOT_QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p1> ?o }} LIMIT 20"
LARGE_QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


def build_platform(triples: int) -> KGNet:
    platform = KGNet()
    platform.load_graph([
        Triple(IRI(f"{EX}s{i % (triples // 4 or 1)}"),
               IRI(f"{EX}p{i % 8}"),
               Literal(f"value {i % 101}"))
        for i in range(triples)
    ])
    return platform


def bench_inprocess(platform: KGNet, requests: int) -> Dict[str, object]:
    router = platform.api
    started = time.perf_counter()
    for _ in range(requests):
        response = router.dispatch(APIRequest(op="sparql",
                                              params={"query": HOT_QUERY}))
        assert response.ok
    elapsed = time.perf_counter() - started
    return {"leg": "inprocess", "requests": requests,
            "seconds": round(elapsed, 4),
            "qps": round(requests / elapsed, 1)}


def bench_http_sequential(base_url: str, requests: int) -> Dict[str, object]:
    client = RemoteClient(base_url)
    latencies: List[float] = []
    started = time.perf_counter()
    for _ in range(requests):
        t0 = time.perf_counter()
        client.protocol_select(HOT_QUERY)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    client.close()
    latencies.sort()
    return {"leg": "http_sequential", "requests": requests,
            "seconds": round(elapsed, 4),
            "qps": round(requests / elapsed, 1),
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3)}


def bench_http_concurrent(base_url: str, requests: int,
                          clients: int) -> Dict[str, object]:
    per_client = max(1, requests // clients)
    all_latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []

    def worker(slot: int) -> None:
        client = RemoteClient(base_url)
        try:
            bucket = all_latencies[slot]
            for _ in range(per_client):
                t0 = time.perf_counter()
                client.protocol_select(HOT_QUERY)
                bucket.append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    latencies = sorted(lat for bucket in all_latencies for lat in bucket)
    total = len(latencies)
    return {"leg": f"http_concurrent_x{clients}", "requests": total,
            "seconds": round(elapsed, 4),
            "qps": round(total / elapsed, 1),
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3)}


def bench_stream_large(base_url: str, repeats: int) -> Dict[str, object]:
    client = RemoteClient(base_url)
    rows = 0
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        bindings = client.protocol_select(LARGE_QUERY)
        best = min(best, time.perf_counter() - t0)
        rows = len(bindings)
    client.close()
    return {"leg": "http_stream_large", "requests": repeats,
            "seconds": round(best, 4),
            "rows": rows,
            "rows_per_s": round(rows / best, 1) if best > 0 else 0.0}


def run(triples: int, requests: int, clients: int) -> Dict[str, object]:
    platform = build_platform(triples)
    server = serve(platform.api, max_workers=max(8, clients + 2))
    try:
        # Warm the plan cache so every leg measures serving, not parsing.
        platform.sparql(HOT_QUERY)
        legs = [
            bench_inprocess(platform, requests),
            bench_http_sequential(server.base_url, requests),
            bench_http_concurrent(server.base_url, requests, clients),
            bench_stream_large(server.base_url, repeats=3),
        ]
    finally:
        server.stop()
    by_leg = {leg["leg"]: leg for leg in legs}
    overhead = (by_leg["inprocess"]["qps"]
                / by_leg["http_sequential"]["qps"])
    record = {
        "benchmark": "http_serving",
        "triples": triples,
        "requests": requests,
        "clients": clients,
        "legs": legs,
        "http_overhead_x": round(overhead, 2),
        "concurrent_speedup_vs_sequential": round(
            by_leg[f"http_concurrent_x{clients}"]["qps"]
            / by_leg["http_sequential"]["qps"], 2),
    }
    return record


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    record = dict(record)
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer triples and requests)")
    args = parser.parse_args()
    triples = 2_000 if args.smoke else 20_000
    requests = 150 if args.smoke else 1_500
    clients = 4 if args.smoke else 8

    record = run(triples, requests, clients)
    append_trajectory(record)

    rows = []
    for leg in record["legs"]:
        row = {"leg": leg["leg"], "requests": leg["requests"],
               "qps": leg.get("qps", leg.get("rows_per_s")),
               "p50_ms": leg.get("p50_ms", ""), "p99_ms": leg.get("p99_ms", "")}
        rows.append(row)
    save_report("bench_http_serving",
                "SPARQL serving: HTTP path vs in-process dispatch",
                rows, headers=["leg", "requests", "qps", "p50_ms", "p99_ms"],
                notes=[f"{record['triples']} triples, "
                       f"{record['clients']} concurrent clients",
                       f"HTTP overhead {record['http_overhead_x']}x, "
                       "concurrent speedup "
                       f"{record['concurrent_speedup_vs_sequential']}x"])
    print(f"HTTP overhead vs in-process: {record['http_overhead_x']}x; "
          f"{record['clients']} concurrent clients = "
          f"{record['concurrent_speedup_vs_sequential']}x sequential QPS")
    print(f"trajectory appended to {TRAJECTORY_PATH}")


if __name__ == "__main__":
    main()
