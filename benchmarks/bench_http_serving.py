"""HTTP serving benchmark: the network path vs in-process dispatch.

Boots a real :class:`~repro.server.http.KGNetHTTPServer` on loopback and
measures the same SPARQL SELECT workload several ways:

* ``inprocess`` — ``router.dispatch`` in a plain loop (the PR-1 baseline
  every envelope rides on; no sockets, no serialization),
* ``http_uncached`` — one :class:`~repro.server.RemoteClient` sending
  ``Cache-Control: no-store`` so every request evaluates and serializes
  (the pre-result-cache wire path),
* ``http_hot`` — the same client with the result cache warm: the
  cached-hot leg, every hit skips evaluation *and* serialization,
* ``http_sequential`` / ``http_concurrent_xN`` — closed-loop client
  *processes* (one vs N) with a modeled network round-trip (see below),
  reported as aggregate QPS + per-request p50/p99,

plus ``http_stream_large`` — a big SELECT negotiated to JSON and streamed
chunked, reported as rows/s end to end.

Modeled RTT
-----------

Loopback has no propagation delay, and CI containers may pin everything to
a single core — on such a host the raw "N clients vs one" ratio for a
CPU-bound request loop degenerates to 1.0 *no matter what the server
does*, because clients and server burn the same core.  What concurrency
actually buys a serving stack is overlap of clients that are individually
round-trip-bound, so the sequential and concurrent legs model a
:data:`MODELED_RTT_SECONDS` network round-trip per request (a closed-loop
load generator with think time, as in the TPC benchmarks).  The speedup is
then a real property of the server: N in-flight clients only reach N× a
single client's RTT-bound rate if per-request server cost is small enough
not to saturate first.  The pre-cache serve path saturated immediately;
the record stores the RTT and the host CPU count so runs are comparable.

Usage (from the ``benchmarks/`` directory)::

    PYTHONPATH=../src python bench_http_serving.py            # full run
    PYTHONPATH=../src python bench_http_serving.py --smoke    # CI-sized

Each run appends one record to ``BENCH_http_serving.json`` next to this
script and refreshes ``results/bench_http_serving.txt``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import percentile, save_report  # noqa: E402
from repro.kgnet import KGNet  # noqa: E402
from repro.kgnet.api import APIRequest  # noqa: E402
from repro.rdf import IRI, Literal, Triple  # noqa: E402
from repro.server import RemoteClient, serve  # noqa: E402

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_http_serving.json")

EX = "http://example.org/bench/http/"
HOT_QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p1> ?o }} LIMIT 40"
LARGE_QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"

#: Per-request network round-trip modeled by the closed-loop legs (1 ms — a
#: same-datacenter hop).  See "Modeled RTT" in the module docstring.
MODELED_RTT_SECONDS = 0.001


def build_platform(triples: int) -> KGNet:
    platform = KGNet()
    platform.load_graph([
        Triple(IRI(f"{EX}s{i % (triples // 4 or 1)}"),
               IRI(f"{EX}p{i % 8}"),
               Literal(f"value {i % 101}"))
        for i in range(triples)
    ])
    return platform


def bench_inprocess(platform: KGNet, requests: int) -> Dict[str, object]:
    router = platform.api
    started = time.perf_counter()
    for _ in range(requests):
        response = router.dispatch(APIRequest(op="sparql",
                                              params={"query": HOT_QUERY}))
        assert response.ok
    elapsed = time.perf_counter() - started
    return {"leg": "inprocess", "requests": requests,
            "seconds": round(elapsed, 4),
            "qps": round(requests / elapsed, 1)}


def _sequential_select(base_url: str, requests: int, leg: str,
                       headers: Dict[str, str]) -> Dict[str, object]:
    """One keep-alive client, back to back, full parse — no modeled RTT."""
    client = RemoteClient(base_url)
    latencies: List[float] = []
    started = time.perf_counter()
    for _ in range(requests):
        t0 = time.perf_counter()
        client.protocol_select(HOT_QUERY, extra_headers=headers)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    client.close()
    latencies.sort()
    return {"leg": leg, "requests": requests,
            "seconds": round(elapsed, 4),
            "qps": round(requests / elapsed, 1),
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3)}


def bench_http_uncached(base_url: str, requests: int) -> Dict[str, object]:
    """The wire path with the result cache bypassed: every request parses
    (plan cache warm), evaluates, and serializes."""
    return _sequential_select(base_url, requests, "http_uncached",
                              {"Cache-Control": "no-store"})


def bench_http_hot(base_url: str, requests: int) -> Dict[str, object]:
    """The cached-hot wire path: after one miss, every request is served
    from pre-encoded bytes."""
    return _sequential_select(base_url, requests, "http_hot", {})


def _closed_loop_worker(barrier, queue, base_url: str, count: int,
                        rtt: float) -> None:
    """One client process: connect, sync on the barrier, hammer, report."""
    client = RemoteClient(base_url)
    try:
        # One unmeasured request establishes the keep-alive connection so
        # the measured window contains no TCP/connect handshakes.
        client.protocol_select(HOT_QUERY)
        latencies: List[float] = []
        barrier.wait()
        for _ in range(count):
            if rtt > 0.0:
                time.sleep(rtt)  # modeled network round-trip (think time)
            t0 = time.perf_counter()
            client.protocol_select(HOT_QUERY)
            latencies.append(time.perf_counter() - t0)
        queue.put((latencies, time.perf_counter(), None))
    except BaseException as exc:  # noqa: BLE001 - reported by the parent
        queue.put(([], time.perf_counter(), repr(exc)))
    finally:
        client.close()


def bench_closed_loop(base_url: str, requests: int, clients: int,
                      rtt: float, leg: str) -> Dict[str, object]:
    # Client processes, not threads: in-process client threads would share
    # the GIL with the server and measure client-side contention, not the
    # server's concurrent capacity (which is what a real fleet of clients
    # exercises).  ``fork`` keeps startup cheap; the barrier keeps process
    # spawn time out of the measured window.
    mp = multiprocessing.get_context("fork")
    # Distribute the remainder too: with requests=150 over 4 clients the
    # first two clients run 38 requests, the rest 37 — the leg issues all
    # 150 instead of silently dropping requests % clients of them.
    per_client = [max(1, requests // clients
                      + (1 if slot < requests % clients else 0))
                  for slot in range(clients)]
    barrier = mp.Barrier(clients + 1)
    queue = mp.Queue()
    workers = [mp.Process(target=_closed_loop_worker,
                          args=(barrier, queue, base_url, count, rtt))
               for count in per_client]
    for worker in workers:
        worker.start()
    barrier.wait()  # every worker is connected and ready
    started = time.perf_counter()
    finished = started
    latencies: List[float] = []
    errors: List[str] = []
    for _ in workers:
        bucket, done_at, error = queue.get()
        latencies.extend(bucket)
        finished = max(finished, done_at)
        if error is not None:
            errors.append(error)
    for worker in workers:
        worker.join()
    if errors:
        raise RuntimeError(f"closed-loop client failed: {errors[0]}")
    # perf_counter is CLOCK_MONOTONIC, consistent across fork on Linux:
    # the window closes when the slowest worker sent its last request.
    elapsed = finished - started
    latencies.sort()
    total = len(latencies)
    return {"leg": leg, "requests": total,
            "seconds": round(elapsed, 4),
            "qps": round(total / elapsed, 1),
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3)}


def bench_stream_large(base_url: str, repeats: int) -> Dict[str, object]:
    client = RemoteClient(base_url)
    rows = 0
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        bindings = client.protocol_select(LARGE_QUERY)
        best = min(best, time.perf_counter() - t0)
        rows = len(bindings)
    client.close()
    return {"leg": "http_stream_large", "requests": repeats,
            "seconds": round(best, 4),
            "rows": rows,
            "rows_per_s": round(rows / best, 1) if best > 0 else 0.0}


def run(triples: int, requests: int, clients: int,
        rtt: float) -> Dict[str, object]:
    platform = build_platform(triples)
    server = serve(platform.api, max_workers=max(8, clients + 2))
    try:
        # Warm the plan cache so every leg measures serving, not parsing.
        platform.sparql(HOT_QUERY)
        legs = [
            bench_inprocess(platform, requests),
            bench_http_uncached(server.base_url, requests),
            # no-store bypasses the result cache entirely, so the hot leg
            # below starts cold, misses once, then serves every following
            # request from cached pre-encoded bytes.
            bench_http_hot(server.base_url, requests),
            bench_closed_loop(server.base_url, requests, 1, rtt,
                              "http_sequential"),
            bench_closed_loop(server.base_url, requests, clients, rtt,
                              f"http_concurrent_x{clients}"),
            bench_stream_large(server.base_url, repeats=3),
        ]
        result_cache = platform.api.endpoint.result_cache.stats()
    finally:
        server.stop()
    by_leg = {leg["leg"]: leg for leg in legs}
    overhead = (by_leg["inprocess"]["qps"]
                / by_leg["http_hot"]["qps"])
    record = {
        "benchmark": "http_serving",
        "triples": triples,
        "requests": requests,
        "clients": clients,
        "modeled_rtt_ms": round(rtt * 1000, 3),
        "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity")
                else (os.cpu_count() or 1),
        "legs": legs,
        "http_overhead_x": round(overhead, 2),
        "result_cache_speedup": round(
            by_leg["http_hot"]["qps"]
            / by_leg["http_uncached"]["qps"], 2),
        "concurrent_speedup_vs_sequential": round(
            by_leg[f"http_concurrent_x{clients}"]["qps"]
            / by_leg["http_sequential"]["qps"], 2),
        "result_cache": result_cache,
    }
    return record


def append_trajectory(record: Dict[str, object]) -> None:
    trajectory: List[Dict[str, object]] = []
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    record = dict(record)
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    trajectory.append(record)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer triples and requests)")
    parser.add_argument("--rtt-ms", type=float,
                        default=MODELED_RTT_SECONDS * 1000, metavar="MS",
                        help="modeled network round-trip for the closed-loop "
                             "legs (default %(default)s ms; 0 disables)")
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless concurrent speedup vs "
                             "sequential reaches X (CI regression gate)")
    args = parser.parse_args()
    triples = 2_000 if args.smoke else 20_000
    requests = 150 if args.smoke else 1_500
    clients = 4 if args.smoke else 8

    record = run(triples, requests, clients, args.rtt_ms / 1000.0)
    append_trajectory(record)

    rows = []
    for leg in record["legs"]:
        row = {"leg": leg["leg"], "requests": leg["requests"],
               "qps": leg.get("qps", leg.get("rows_per_s")),
               "p50_ms": leg.get("p50_ms", ""), "p99_ms": leg.get("p99_ms", "")}
        rows.append(row)
    save_report("bench_http_serving",
                "SPARQL serving: HTTP path vs in-process dispatch",
                rows, headers=["leg", "requests", "qps", "p50_ms", "p99_ms"],
                notes=[f"{record['triples']} triples, "
                       f"{record['clients']} concurrent clients, "
                       f"{record['modeled_rtt_ms']} ms modeled RTT, "
                       f"{record['cpus']} CPU(s)",
                       f"HTTP overhead {record['http_overhead_x']}x, "
                       "result cache "
                       f"{record['result_cache_speedup']}x, "
                       "concurrent speedup "
                       f"{record['concurrent_speedup_vs_sequential']}x"])
    print(f"HTTP overhead vs in-process: {record['http_overhead_x']}x; "
          f"result cache {record['result_cache_speedup']}x uncached QPS; "
          f"{record['clients']} concurrent clients = "
          f"{record['concurrent_speedup_vs_sequential']}x sequential QPS")
    print(f"trajectory appended to {TRAJECTORY_PATH}")
    if args.check_speedup is not None:
        speedup = record["concurrent_speedup_vs_sequential"]
        if speedup < args.check_speedup:
            print(f"FAIL: concurrent speedup {speedup}x is below the "
                  f"required {args.check_speedup}x", file=sys.stderr)
            raise SystemExit(1)
        print(f"speedup gate passed: {speedup}x >= {args.check_speedup}x")


if __name__ == "__main__":
    main()
