"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517`` falls back to ``setup.py develop`` which
does not require building a wheel; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
