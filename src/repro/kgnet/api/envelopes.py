"""Versioned, transport-agnostic request/response envelopes.

The paper's KGNet is a *service* platform: the RDF engine's UDFs and the
GMLaaS endpoints exchange JSON over HTTP.  These envelopes are that wire
contract in-process: every operation — load, sparql, train, infer, delete,
list-models, stats — travels as an :class:`APIRequest` and comes back as an
:class:`APIResponse`, both of which round-trip through plain JSON dicts so
any transport (direct call, HTTP, message queue) can carry them.

Responses have exactly two variants:

* ``ok`` — ``result`` holds the JSON-serialisable payload, ``error`` is None,
* ``error`` — ``error`` holds ``{code, message, type[, details]}`` with a
  stable code from :mod:`repro.kgnet.api.errors`, ``result`` is None.

When the router runs in-process it additionally attaches the *rich* Python
result (or the original exception) as :attr:`APIResponse.attachment`; the
attachment never crosses a serialisation boundary and is simply absent after
a JSON round trip.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from repro.exceptions import BadRequestError
from repro.kgnet.api.errors import error_payload, exception_from_payload

__all__ = ["API_VERSION", "APIRequest", "APIResponse"]

#: The protocol version every envelope carries.  Bump the suffix on breaking
#: changes; envelopes carrying any other version string are rejected.
API_VERSION = "kgnet/v1"

_REQUEST_IDS = itertools.count(1)


def _check_mapping(value: object, what: str) -> Dict[str, object]:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise BadRequestError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def _check_version(version: object) -> str:
    if not isinstance(version, str) or not version:
        raise BadRequestError("envelope misses 'api_version'")
    if version != API_VERSION:
        raise BadRequestError(
            f"unsupported api_version {version!r} (this endpoint speaks {API_VERSION})")
    return version


@dataclass
class APIRequest:
    """One operation request: ``{op, params, request_id, api_version}``."""

    op: str
    params: Dict[str, object] = field(default_factory=dict)
    request_id: str = ""
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        if not self.request_id:
            self.request_id = f"req-{next(_REQUEST_IDS)}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "op": self.op,
            "request_id": self.request_id,
            "params": self.params,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "APIRequest":
        payload = _check_mapping(payload, "request envelope")
        op = payload.get("op")
        if not isinstance(op, str) or not op:
            raise BadRequestError("request envelope misses 'op'")
        return cls(
            op=op,
            params=_check_mapping(payload.get("params"), "'params'"),
            request_id=str(payload.get("request_id") or ""),
            api_version=_check_version(payload.get("api_version", API_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "APIRequest":
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"request envelope is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


class APIResponse:
    """The outcome of one operation, in its ``ok`` or ``error`` variant.

    ``result`` may be constructed lazily: handlers can hand the router a
    zero-argument callable instead of a dict, and the JSON projection is only
    computed when ``result`` is first read (a serialising transport always
    reads it; the in-process facade, which consumes :attr:`attachment`,
    never pays for it).
    """

    def __init__(self, ok: bool, op: str, request_id: str,
                 api_version: str = API_VERSION,
                 result: Union[None, Dict[str, object],
                               Callable[[], Dict[str, object]]] = None,
                 error: Optional[Dict[str, object]] = None,
                 meta: Optional[Dict[str, object]] = None,
                 attachment: object = None) -> None:
        self.ok = ok
        self.op = op
        self.request_id = request_id
        self.api_version = api_version
        self._result = result
        self.error = error
        #: Timing / routing metadata (``elapsed_seconds`` is always present).
        self.meta: Dict[str, object] = dict(meta or {})
        #: In-process only: the rich Python result (ok) or the original
        #: exception (error).  Never serialised.
        self.attachment = attachment

    @property
    def result(self) -> Optional[Dict[str, object]]:
        if callable(self._result):
            self._result = self._result()
        return self._result

    @classmethod
    def success(cls, request: APIRequest,
                result: Union[Dict[str, object], Callable[[], Dict[str, object]]],
                attachment: object = None,
                meta: Optional[Dict[str, object]] = None) -> "APIResponse":
        return cls(ok=True, op=request.op, request_id=request.request_id,
                   result=result, meta=dict(meta or {}), attachment=attachment)

    @classmethod
    def failure(cls, request: APIRequest, error: BaseException,
                meta: Optional[Dict[str, object]] = None) -> "APIResponse":
        return cls(ok=False, op=request.op, request_id=request.request_id,
                   error=error_payload(error), meta=dict(meta or {}),
                   attachment=error)

    def to_dict(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "ok": self.ok,
            "op": self.op,
            "request_id": self.request_id,
            "result": self.result,
            "error": self.error,
            "meta": self.meta,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "APIResponse":
        payload = _check_mapping(payload, "response envelope")
        if "ok" not in payload:
            raise BadRequestError("response envelope misses 'ok'")
        result = payload.get("result")
        error = payload.get("error")
        return cls(
            ok=bool(payload["ok"]),
            op=str(payload.get("op") or ""),
            request_id=str(payload.get("request_id") or ""),
            api_version=_check_version(payload.get("api_version", API_VERSION)),
            result=result if isinstance(result, dict) else None,
            error=error if isinstance(error, dict) else None,
            meta=_check_mapping(payload.get("meta"), "'meta'"),
        )

    @classmethod
    def from_json(cls, text: str) -> "APIResponse":
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"response envelope is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def raise_for_error(self) -> "APIResponse":
        """Raise the error the envelope carries; no-op on the ok variant.

        In-process the original exception object is re-raised; after a JSON
        round trip the most specific class is rebuilt from the stable code.
        """
        if self.ok:
            return self
        if isinstance(self.attachment, BaseException):
            raise self.attachment
        raise exception_from_payload(self.error)

    @property
    def elapsed_seconds(self) -> float:
        return float(self.meta.get("elapsed_seconds", 0.0))

    def __repr__(self) -> str:
        status = "ok" if self.ok else (self.error or {}).get("code", "error")
        return (f"<APIResponse op={self.op!r} request_id={self.request_id!r} "
                f"{status}>")
