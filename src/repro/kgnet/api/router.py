"""The API router: one dispatch surface for every platform operation.

The router receives :class:`~repro.kgnet.api.envelopes.APIRequest` envelopes
(or plain JSON dicts), routes them to the SPARQL endpoint, the SPARQL-ML
service and GMLaaS, and always answers with an
:class:`~repro.kgnet.api.envelopes.APIResponse`:

* every :mod:`repro.exceptions` type is mapped to a uniform error envelope
  with a stable code — the router never lets platform errors escape,
* every route records latency/throughput counters (``metrics()``),
* large results page through server-side cursors (``next_page``), and
  ``infer_batch`` amortises dispatch overhead over many inference inputs.

The legacy :class:`~repro.kgnet.platform.KGNet` facade dispatches through a
router in-process (rich results ride along as ``response.attachment``);
:class:`~repro.kgnet.api.client.APIClient` talks to the same router through
pure JSON, proving the contract is transport-agnostic.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.concurrency import InflightBatcher, WorkerPool
from repro.concurrency.scheduler import AdmissionController, QueryScheduler
from repro.exceptions import (
    BadRequestError,
    CursorError,
    ReadOnlyReplicaError,
    UnknownOperationError,
)
from repro.sparql.execution import ExecutionContext, StreamingResult
from repro.gml.tasks import TaskSpec
from repro.gml.train.budget import TaskBudget
from repro.kgnet.api.envelopes import API_VERSION, APIRequest, APIResponse
from repro.kgnet.gmlaas.service import GMLaaS
from repro.kgnet.kgmeta.governor import KGMetaGovernor
from repro.kgnet.meta_sampler import MetaSamplingConfig
from repro.kgnet.sparqlml.optimizer import ModelSelectionObjective
from repro.kgnet.sparqlml.parser import TrainGMLRequest
from repro.kgnet.sparqlml.service import SelectReport, SPARQLMLService
from repro.rdf.graph import Graph
from repro.rdf.io import parse_ntriples, serialize_ntriples
from repro.rdf.terms import IRI
from repro.sparql.endpoint import SPARQLEndpoint
from repro.sparql.results import ResultSet

__all__ = ["RouteMetrics", "APIRouter", "WRITE_OPS", "GUARDED_OPS"]

#: Operations a read-only replica refuses outright.  ``sparql``/``sparqlml``
#: are not listed: they are read ops unless the query text is an update,
#: which the handlers police per-request.
WRITE_OPS = frozenset({
    "load", "train", "delete_models",
    "admin/persist", "admin/restore", "admin/bulk_load",
})

#: Operations the admission controller guards: the query-execution routes
#: whose cost is client-controlled.  Cheap introspection ops (ping, stats,
#: metrics, replication/status) stay admissible even at capacity so
#: operators can observe an overloaded server.
GUARDED_OPS = frozenset({"sparql", "sparqlml", "sparqlml_select"})

#: Oldest cursors are dropped beyond this many live result pages.
MAX_LIVE_CURSORS = 64

#: Latency samples kept per route for the percentile estimates — a sliding
#: window over the most recent calls, sized so the p99 rests on real
#: observations (~2-3 tail samples) while one idle route costs ~2 KB.
LATENCY_RESERVOIR_SIZE = 256


def _percentile(ordered: List[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = int(quantile * len(ordered) + 0.999999)  # ceil without math import
    return ordered[min(len(ordered), max(rank, 1)) - 1]


@dataclass
class RouteMetrics:
    """Latency / throughput counters for one route.

    All increments are read-modify-write sequences, so every recording
    method takes the per-route lock — serving threads hammering one route
    must never lose an update (``tests/concurrency/test_contention.py``
    fails on any drift).

    Besides the running totals, each route keeps a small sliding reservoir
    of recent latencies (:data:`LATENCY_RESERVOIR_SIZE` samples) from which
    ``as_dict`` reports p50/p99 — the numbers to watch once requests arrive
    over HTTP, where the mean hides connection-level tail pain.
    """

    calls: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    #: Endpoint plan-cache outcomes observed by this route (only the routes
    #: that execute SPARQL maintain these; elsewhere they stay 0).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Hostile-load outcomes, split out of ``errors`` by stable error code:
    #: preempted (hard work budget), deadline timeouts, client
    #: cancellations, and requests shed by admission control.
    queries_preempted: int = 0
    queries_timed_out: int = 0
    queries_cancelled: int = 0
    requests_shed: int = 0
    #: Streamed responses cut after the 200 header went out (the request
    #: already counted as a successful call; the interruption fired during
    #: body transfer, so it shows up here instead of ``errors``).
    streams_cut: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)
    _samples: List[float] = field(default_factory=list, repr=False,
                                  compare=False)

    def record(self, elapsed: float, ok: bool,
               error_code: Optional[str] = None) -> None:
        with self._lock:
            self.calls += 1
            if not ok:
                self.errors += 1
                if error_code == "QUERY_PREEMPTED":
                    self.queries_preempted += 1
                elif error_code == "QUERY_TIMEOUT":
                    self.queries_timed_out += 1
                elif error_code == "QUERY_CANCELLED":
                    self.queries_cancelled += 1
                elif error_code == "SERVER_OVERLOADED":
                    self.requests_shed += 1
            self.total_seconds += elapsed
            self.max_seconds = max(self.max_seconds, elapsed)
            if len(self._samples) < LATENCY_RESERVOIR_SIZE:
                self._samples.append(elapsed)
            else:
                # Ring overwrite: deterministic sliding window of the most
                # recent LATENCY_RESERVOIR_SIZE calls.
                self._samples[(self.calls - 1) % LATENCY_RESERVOIR_SIZE] = elapsed

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_stream_cut(self, error_code: Optional[str] = None) -> None:
        """Account a response stream aborted mid-transfer.

        The dispatch already recorded the call as ok (the failure fired
        while the body streamed), so this only bumps the cut counter and
        the per-cause hostile-load split.
        """
        with self._lock:
            self.streams_cut += 1
            if error_code == "QUERY_PREEMPTED":
                self.queries_preempted += 1
            elif error_code == "QUERY_TIMEOUT":
                self.queries_timed_out += 1
            elif error_code == "QUERY_CANCELLED":
                self.queries_cancelled += 1

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            mean = self.total_seconds / self.calls if self.calls else 0.0
            ordered = sorted(self._samples)
            return {
                "calls": self.calls,
                "errors": self.errors,
                "total_seconds": round(self.total_seconds, 6),
                "mean_seconds": round(mean, 6),
                "max_seconds": round(self.max_seconds, 6),
                "p50_seconds": round(_percentile(ordered, 0.50), 6),
                "p99_seconds": round(_percentile(ordered, 0.99), 6),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "queries_preempted": self.queries_preempted,
                "queries_timed_out": self.queries_timed_out,
                "queries_cancelled": self.queries_cancelled,
                "requests_shed": self.requests_shed,
                "streams_cut": self.streams_cut,
            }


# ---------------------------------------------------------------------------
# Parameter normalisation: JSON payloads and rich in-process objects both work
# ---------------------------------------------------------------------------


def _require(params: Dict[str, object], name: str) -> object:
    if name not in params or params[name] is None:
        raise BadRequestError(f"missing required parameter {name!r}")
    return params[name]


def _as_task(value: object) -> TaskSpec:
    if isinstance(value, TaskSpec):
        return value
    if isinstance(value, dict):
        return TaskSpec.from_dict(value)
    raise BadRequestError("'task' must be a TaskSpec or its JSON object")


def _as_budget(value: object) -> Optional[TaskBudget]:
    if value is None or isinstance(value, TaskBudget):
        return value
    if isinstance(value, dict):
        return TaskBudget.from_json(value)
    raise BadRequestError("'budget' must be a TaskBudget or its JSON object")


def _as_meta_sampling(value: object) -> Optional[MetaSamplingConfig]:
    if value is None or isinstance(value, MetaSamplingConfig):
        return value
    if isinstance(value, str):
        return MetaSamplingConfig.from_label(value)
    if isinstance(value, dict):
        return MetaSamplingConfig(**value)
    raise BadRequestError("'meta_sampling' must be a label like 'd1h1' or a JSON object")


def _as_objective(value: object) -> Optional[ModelSelectionObjective]:
    if value is None or isinstance(value, ModelSelectionObjective):
        return value
    if isinstance(value, dict):
        return ModelSelectionObjective(**value)
    raise BadRequestError("'objective' must be a ModelSelectionObjective or its JSON object")


def _as_iri_text(value: object, name: str) -> str:
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, str) and value:
        return value
    raise BadRequestError(f"{name!r} must be an IRI string")


class APIRouter:
    """Dispatches versioned envelopes to the platform's services."""

    def __init__(self, endpoint: SPARQLEndpoint, gmlaas: GMLaaS,
                 governor: KGMetaGovernor, sparqlml: SPARQLMLService,
                 storage=None,
                 scheduler: Optional[QueryScheduler] = None,
                 admission: Optional[AdmissionController] = None,
                 default_query_timeout: Optional[float] = None,
                 max_query_timeout: Optional[float] = None) -> None:
        self.endpoint = endpoint
        self.gmlaas = gmlaas
        self.governor = governor
        self.sparqlml = sparqlml
        #: Optional :class:`repro.storage.engine.StorageEngine` backing the
        #: endpoint's dataset; enables the ``admin/*`` persistence routes.
        self.storage = storage
        #: Optional time-sliced fair scheduler: ``sparql`` *query* requests
        #: run preemptably on its lanes instead of inline, so one adversarial
        #: cross product cannot monopolise a serving worker.  None keeps the
        #: legacy inline path.
        self.scheduler = scheduler
        #: Optional admission controller shedding :data:`GUARDED_OPS` with
        #: :class:`~repro.exceptions.ServerOverloaded` at capacity.
        self.admission = admission
        #: Deadline applied to ``sparql`` requests that do not pass their
        #: own ``timeout`` parameter (None = unlimited).
        self.default_query_timeout = default_query_timeout
        #: Hard cap on client-supplied ``timeout`` values (None = uncapped).
        self.max_query_timeout = max_query_timeout
        #: Read-only replica mode: write operations are refused with
        #: :class:`~repro.exceptions.ReadOnlyReplicaError`.  Set by
        #: :class:`~repro.replication.replica.ReplicaEngine` after
        #: construction; False on a primary.
        self.read_only = False
        #: Optional replication provider (the ReplicaEngine on a follower):
        #: anything with a ``replication_status()`` dict method.  Drives the
        #: ``replication/status`` op when set; a primary reports from its
        #: storage engine instead.
        self.replication = None
        self._metrics: Dict[str, RouteMetrics] = {}
        self._metrics_lock = threading.Lock()
        self._cursors: "OrderedDict[str, List[object]]" = OrderedDict()
        self._cursors_lock = threading.Lock()
        self._cursor_ids = itertools.count(1)
        #: Coalesces concurrent single-input infer calls into one
        #: ``infer_batch`` HTTP call.  Participation is *thread-local*: only
        #: worker threads of a :meth:`serve_concurrent` drive that opted in
        #: route through it — a plain ``dispatch`` from any other thread
        #: never pays the coalescing window or its batch semantics, even
        #: while drives are active.
        self._infer_batcher = InflightBatcher(self._execute_infer_batch)
        self._coalesce_local = threading.local()
        #: op name -> handler(params) -> (json_result_or_thunk, attachment);
        #: a zero-arg callable result is projected lazily on first read.
        self._routes: Dict[str, Callable[[Dict[str, object]],
                                         Tuple[object, object]]] = {
            "ping": self._handle_ping,
            "load": self._handle_load,
            "sparql": self._handle_sparql,
            "sparqlml": self._handle_sparqlml,
            "sparqlml_select": self._handle_sparqlml_select,
            "train": self._handle_train,
            "infer_node_class": self._handle_infer_node_class,
            "infer_links": self._handle_infer_links,
            "infer_similar": self._handle_infer_similar,
            "infer_batch": self._handle_infer_batch,
            "next_page": self._handle_next_page,
            "list_models": self._handle_list_models,
            "describe_model": self._handle_describe_model,
            "delete_models": self._handle_delete_models,
            "stats": self._handle_stats,
            "metrics": self._handle_metrics,
            "admin/persist": self._handle_admin_persist,
            "admin/restore": self._handle_admin_restore,
            "admin/bulk_load": self._handle_admin_bulk_load,
            "replication/status": self._handle_replication_status,
        }
        #: Accepted param keys per op; anything else is rejected so typo'd
        #: options fail loudly instead of being silently ignored.
        self._allowed_params: Dict[str, frozenset] = {
            "ping": frozenset(),
            "load": frozenset({"triples", "ntriples", "graph_iri"}),
            "sparql": frozenset({"query", "page_size", "default_graph_uris",
                                 "named_graph_uris",
                                 "require", "timeout", "cancel", "stream"}),
            "sparqlml": frozenset({"query", "page_size", "method",
                                   "meta_sampling", "use_meta_sampling",
                                   "objective", "force_plan"}),
            "sparqlml_select": frozenset({"query", "objective", "force_plan",
                                          "page_size"}),
            "train": frozenset({"query", "task", "budget", "method",
                                "meta_sampling", "use_meta_sampling", "name"}),
            "infer_node_class": frozenset({"model_uri", "node"}),
            "infer_links": frozenset({"model_uri", "source", "k"}),
            "infer_similar": frozenset({"model_uri", "entity", "k"}),
            "infer_batch": frozenset({"model_uri", "inputs", "k", "mode",
                                      "page_size"}),
            "next_page": frozenset({"cursor", "page_size"}),
            "list_models": frozenset(),
            "describe_model": frozenset({"model_uri"}),
            "delete_models": frozenset({"query"}),
            "stats": frozenset(),
            "metrics": frozenset(),
            "admin/persist": frozenset(),
            "admin/restore": frozenset(),
            "admin/bulk_load": frozenset({"turtle", "graph_iri", "batch_size"}),
            "replication/status": frozenset(),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def operations(self) -> List[str]:
        return sorted(self._routes)

    def dispatch(self, request: Union[APIRequest, Dict[str, object]]) -> APIResponse:
        """Route one envelope; always returns an envelope, never raises."""
        started = time.perf_counter()
        if not isinstance(request, APIRequest):
            raw = request
            try:
                request = APIRequest.from_dict(raw)
            except BadRequestError as exc:
                op = raw.get("op") if isinstance(raw, dict) else None
                pseudo = APIRequest(op=str(op or "?"))
                return self._finish(pseudo, APIResponse.failure(pseudo, exc), started)
        handler = self._routes.get(request.op)
        if handler is None:
            error = UnknownOperationError(
                f"unknown operation {request.op!r}; supported: {', '.join(self.operations())}")
            return self._finish(request, APIResponse.failure(request, error), started)
        ticket = None
        try:
            if self.read_only and request.op in WRITE_OPS:
                raise ReadOnlyReplicaError(
                    f"operation {request.op!r} is not available on a "
                    "read-only replica; send writes to the primary")
            unknown = set(request.params) - self._allowed_params[request.op]
            if unknown:
                raise BadRequestError(
                    f"unknown parameter(s) for {request.op!r}: "
                    f"{', '.join(sorted(map(str, unknown)))}")
            # Admission control happens before the handler does any work: a
            # shed request was never executed, so clients may always retry
            # it.  ServerOverloaded rides the normal failure-envelope path,
            # which records it under the route's requests_shed counter.
            if self.admission is not None and request.op in GUARDED_OPS:
                ticket = self.admission.admit()
            result, attachment = handler(request.params)
            response = APIResponse.success(request, result, attachment=attachment)
        except Exception as exc:  # noqa: BLE001 — every error becomes an envelope
            response = APIResponse.failure(request, exc)
        finally:
            if ticket is not None:
                self.admission.release(ticket)
        return self._finish(request, response, started)

    def dispatch_dict(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Dict-in / dict-out dispatch: the in-process 'HTTP' transport."""
        return self.dispatch(payload).to_dict()

    def _finish(self, request: APIRequest, response: APIResponse,
                started: float) -> APIResponse:
        elapsed = time.perf_counter() - started
        response.meta.setdefault("elapsed_seconds", round(elapsed, 9))
        response.meta.setdefault("api_version", API_VERSION)
        # Client-supplied op strings must not grow the metrics table without
        # bound: anything unrouted is accounted under one sentinel key.
        key = request.op if request.op in self._routes else "<unknown>"
        error_code = None
        if not response.ok and isinstance(response.error, dict):
            error_code = response.error.get("code")
        self._route_metrics(key).record(elapsed, response.ok,
                                        error_code=error_code)
        return response

    def _route_metrics(self, key: str) -> RouteMetrics:
        with self._metrics_lock:
            metrics = self._metrics.get(key)
            if metrics is None:
                metrics = self._metrics[key] = RouteMetrics()
            return metrics

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Per-route latency/throughput counters since start-up."""
        with self._metrics_lock:
            items = sorted(self._metrics.items())
        return {op: m.as_dict() for op, m in items}

    def coalescing_stats(self) -> Dict[str, int]:
        """In-flight inference batching counters (round-trips saved)."""
        return dict(self._infer_batcher.stats())

    # ------------------------------------------------------------------
    # Concurrent serving
    # ------------------------------------------------------------------
    def serve_concurrent(self, requests: Iterable[Union[APIRequest, Dict[str, object]]],
                         max_workers: int = 8,
                         coalesce_inference: bool = True) -> List[APIResponse]:
        """Dispatch many envelopes through a bounded worker pool.

        Responses come back aligned with the request order.  While the drive
        is active, single-input ``infer_*`` envelopes for the same
        ``(model_uri, mode, k)`` coalesce through the in-flight batcher into
        one ``infer_batch`` GMLaaS call, so N concurrent clients asking the
        same model cost ~1 HTTP round-trip instead of N.  Every response is
        still an envelope — per-request failures ride back as error
        envelopes exactly as with :meth:`dispatch`.

        Safe to call from several threads at once (each call brings its own
        pool; the coalescing batcher is shared, so overlapping opted-in
        drives batch across each other, which is the point).  One semantic
        caveat of coalescing: a batched similarity lookup returns an empty
        result for an unknown entity instead of the error envelope the
        sequential path produces (one client's bad input must not fail its
        batch neighbours); pass ``coalesce_inference=False`` to keep exact
        sequential semantics.
        """
        request_list = list(requests)
        if not request_list:
            return []
        worker = self._dispatch_coalescing if coalesce_inference else self.dispatch
        with WorkerPool(max_workers=max_workers,
                        max_pending=max(len(request_list), max_workers)) as pool:
            return pool.map_ordered(worker, request_list)

    def _dispatch_coalescing(self, request) -> APIResponse:
        """Dispatch with in-flight inference coalescing enabled (this thread)."""
        self._coalesce_local.active = True
        try:
            return self.dispatch(request)
        finally:
            self._coalesce_local.active = False

    def _infer_one(self, model_uri: str, value: str, mode: str, k: int):
        """One single-input inference, coalesced while serving concurrently."""
        if getattr(self._coalesce_local, "active", False):
            return self._infer_batcher.submit((model_uri, mode, k), value)
        if mode == "class":
            return self.gmlaas.infer_node_class(model_uri, value)
        if mode == "links":
            return self.gmlaas.infer_links(model_uri, value, k=k)
        return self.gmlaas.infer_similar_entities(model_uri, value, k=k)

    def _execute_infer_batch(self, key: Tuple[str, str, int],
                             inputs: Sequence[str]) -> List[object]:
        model_uri, mode, k = key
        records = self.gmlaas.infer_batch(model_uri, list(inputs), k=k, mode=mode)
        return [record["output"] for record in records]

    # ------------------------------------------------------------------
    # Pagination cursors
    # ------------------------------------------------------------------
    def _coerce_timeout(self, value: object) -> Optional[float]:
        """Resolve a request's query deadline.

        A client-supplied ``timeout`` is validated and capped by
        ``max_query_timeout``; an absent one falls back to
        ``default_query_timeout``.  ``None`` means no deadline.
        """
        if value is None:
            timeout = self.default_query_timeout
        else:
            try:
                timeout = float(value)
            except (TypeError, ValueError):
                raise BadRequestError(
                    f"'timeout' must be a number of seconds, got {value!r}")
            # NaN slips past every ordered comparison (both checks below
            # compare False), and +inf defeats the cap when none is set —
            # either would hand a hostile client an undying query slot.
            if not math.isfinite(timeout):
                raise BadRequestError(
                    f"'timeout' must be finite, got {value!r}")
            if timeout <= 0:
                raise BadRequestError("'timeout' must be positive")
        if timeout is not None and self.max_query_timeout is not None:
            timeout = min(timeout, self.max_query_timeout)
        return timeout

    @staticmethod
    def _coerce_page_size(page_size: object) -> Optional[int]:
        """Validate an optional ``page_size`` parameter (None = no paging)."""
        if page_size is None:
            return None
        try:
            size = int(page_size)
        except (TypeError, ValueError):
            raise BadRequestError(f"'page_size' must be an integer, got {page_size!r}")
        if size <= 0:
            raise BadRequestError("'page_size' must be positive")
        return size

    def _paginate(self, items: List[object],
                  page_size: object) -> Tuple[List[object], Optional[str]]:
        size = self._coerce_page_size(page_size)
        if size is None:
            return items, None
        page, rest = items[:size], items[size:]
        if not rest:
            return page, None
        cursor = f"cur-{next(self._cursor_ids)}-p{size}"
        with self._cursors_lock:
            self._cursors[cursor] = rest
            while len(self._cursors) > MAX_LIVE_CURSORS:
                self._cursors.popitem(last=False)
        return page, cursor

    def _handle_next_page(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        cursor = str(_require(params, "cursor"))
        # Validate before consuming the cursor: a bad page_size must not
        # destroy the remaining pages.
        size = self._coerce_page_size(params.get("page_size"))
        with self._cursors_lock:
            if cursor not in self._cursors:
                raise CursorError(f"unknown or expired cursor {cursor!r}")
            if size is None:
                try:
                    size = int(cursor.rsplit("-p", 1)[1])
                except (IndexError, ValueError):
                    size = len(self._cursors[cursor])
            remaining = self._cursors.pop(cursor)
        page, next_cursor = self._paginate(remaining, size)
        result = {"items": page, "next_cursor": next_cursor,
                  "remaining": max(0, len(remaining) - len(page))}
        return result, page

    # ------------------------------------------------------------------
    # Result projection
    # ------------------------------------------------------------------
    def _project_query_result(self, value: object,
                              page_size: object) -> Dict[str, object]:
        if isinstance(value, StreamingResult):
            # An envelope client asked for the JSON projection of a lazy
            # SELECT: drain it here (still under its execution context's
            # checkpoints) and project the materialised rows.
            value = value.materialize()
        if isinstance(value, ResultSet):
            rows = value.to_python()
            page, cursor = self._paginate(rows, page_size)
            return {"kind": "SELECT",
                    "variables": [v.name for v in value.variables],
                    "total_rows": len(rows), "rows": page, "next_cursor": cursor}
        if isinstance(value, bool):
            return {"kind": "ASK", "answer": value}
        if isinstance(value, Graph):
            return {"kind": "CONSTRUCT", "num_triples": len(value),
                    "ntriples": serialize_ntriples(value)}
        if isinstance(value, int):
            return {"kind": "UPDATE", "affected_triples": value}
        raise BadRequestError(f"unprojectable query result {type(value).__name__}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_ping(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        return {"status": "ok", "api_version": API_VERSION,
                "operations": self.operations()}, None

    def _handle_load(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        graph_iri = params.get("graph_iri")
        triples = params.get("triples")
        if triples is None:
            text = _require(params, "ntriples")
            if not isinstance(text, str):
                raise BadRequestError("'ntriples' must be an N-Triples string")
            triples = parse_ntriples(text)
        loaded = self.endpoint.load(triples, graph_iri=graph_iri)
        return {"triples_loaded": loaded,
                "total_triples": len(self.endpoint.graph)}, loaded

    def _handle_sparql(self, params: Dict[str, object]) -> Tuple[object, object]:
        query = str(_require(params, "query"))
        page_size = self._coerce_page_size(params.get("page_size"))
        default_graphs = params.get("default_graph_uris")
        if default_graphs is not None:
            if (not isinstance(default_graphs, (list, tuple))
                    or not default_graphs):
                raise BadRequestError(
                    "'default_graph_uris' must be a non-empty list of IRI strings")
            default_graphs = [_as_iri_text(g, "default_graph_uris[]")
                              for g in default_graphs]
        named_graphs = params.get("named_graph_uris")
        if named_graphs is not None:
            if (not isinstance(named_graphs, (list, tuple))
                    or not named_graphs):
                raise BadRequestError(
                    "'named_graph_uris' must be a non-empty list of IRI strings")
            named_graphs = [_as_iri_text(g, "named_graph_uris[]")
                            for g in named_graphs]
        require = params.get("require")
        if require is not None and require not in ("query", "update"):
            raise BadRequestError("'require' must be 'query' or 'update'")
        if self.read_only:
            if require == "update":
                raise ReadOnlyReplicaError(
                    "SPARQL updates are not available on a read-only "
                    "replica; send writes to the primary")
            require = "query"  # an update text must fail, not slip through
        timeout = self._coerce_timeout(params.get("timeout"))
        # The cancel event is plumbed in-process by the service layer (from
        # the client socket watcher); it is never a client-writable value —
        # anything without the Event protocol is ignored.
        cancel = params.get("cancel")
        if cancel is not None and not hasattr(cancel, "is_set"):
            cancel = None
        stats = None
        # The protocol layer pins ``require``; envelope-dialect clients
        # usually don't.  Classify unpinned requests from the (cached) parse
        # so their queries get time-sliced too — only updates run inline.
        schedulable = require == "query" or (
            require is None and self.scheduler is not None
            and not self.endpoint.is_update(query))
        if self.scheduler is not None and schedulable:
            # Preemptable path: the query runs in slices on the scheduler's
            # lanes; a cross product yields to cheap queries between quanta.
            # Statistics arrive via callback because the finishing slice may
            # run on any lane thread.
            context = self.scheduler.context(timeout=timeout, cancel=cancel)
            stats_box: Dict[str, object] = {}
            value = self.scheduler.run(
                lambda: self.endpoint.execute_stream(
                    query, default_graph_iris=default_graphs,
                    named_graph_iris=named_graphs, context=context,
                    on_stats=lambda s: stats_box.__setitem__("last", s)),
                context)
            stats = stats_box.get("last")
        elif params.get("stream") and require == "query":
            # Lazy protocol path (no scheduler): hand back an unconsumed
            # StreamingResult so the context's deadline and cancellation
            # stay live while the transport serializes row by row — this is
            # what makes a mid-transfer `timeout=` abort reachable at all.
            # Statistics (and the plan-cache attribution) arrive via the
            # callback when the consumer drains the stream; ASK/CONSTRUCT
            # evaluate eagerly inside execute_stream and report immediately.
            context = None
            if timeout is not None or cancel is not None:
                context = ExecutionContext(timeout=timeout, cancel=cancel)
            metrics = self._route_metrics("sparql")
            value = self.endpoint.execute_stream(
                query, default_graph_iris=default_graphs,
                named_graph_iris=named_graphs, context=context,
                on_stats=lambda s: metrics.record_cache(s.plan_cache_hit))
            stats = None
        else:
            context = None
            if timeout is not None or cancel is not None:
                context = ExecutionContext(timeout=timeout, cancel=cancel)
            value = self.endpoint.execute(query,
                                          default_graph_iris=default_graphs,
                                          named_graph_iris=named_graphs,
                                          require=require, context=context)
            # thread_statistics() is this thread's own request record, so
            # the hit/miss split stays exact under concurrent serving.
            stats = self.endpoint.thread_statistics()
        # For updates, capture the WAL commit seq the write landed at (an
        # upper bound is fine): clients use it for read-your-writes routing
        # across replicas.
        commit_seq: Optional[int] = None
        if isinstance(value, int) and self.storage is not None:
            wal = getattr(self.storage, "_wal", None)
            if wal is not None:
                commit_seq = wal.last_seq
        if stats is not None:
            self._route_metrics("sparql").record_cache(stats.plan_cache_hit)
        # The JSON projection (row conversion, graph serialisation) is built
        # lazily: in-process callers consume the attachment and skip it.
        def project() -> Dict[str, object]:
            result = self._project_query_result(value, page_size)
            if commit_seq is not None:
                result["commit_seq"] = commit_seq
            return result
        return project, value

    def _sparqlml_kwargs(self, params: Dict[str, object]) -> Dict[str, object]:
        kwargs: Dict[str, object] = {}
        if "method" in params:
            kwargs["method"] = params["method"]
        if "meta_sampling" in params:
            kwargs["meta_sampling"] = _as_meta_sampling(params["meta_sampling"])
        if "use_meta_sampling" in params:
            kwargs["use_meta_sampling"] = bool(params["use_meta_sampling"])
        if "objective" in params:
            kwargs["objective"] = _as_objective(params["objective"])
        if "force_plan" in params:
            kwargs["force_plan"] = params["force_plan"]
        return kwargs

    def _project_report(self, report: object,
                        page_size: object) -> Dict[str, object]:
        if isinstance(report, SelectReport):
            payload = report.as_payload()
            rows = payload.pop("rows")
            page, cursor = self._paginate(rows, page_size)
            payload.update({"kind": "SELECT_REPORT", "rows": page,
                            "next_cursor": cursor})
            return payload
        if hasattr(report, "as_dict"):
            kind = type(report).__name__.replace("Report", "_report").upper()
            payload = dict(report.as_dict())
            payload["kind"] = kind
            return payload
        return self._project_query_result(report, page_size)

    def _handle_sparqlml(self, params: Dict[str, object]) -> Tuple[object, object]:
        query = str(_require(params, "query"))
        page_size = self._coerce_page_size(params.get("page_size"))
        kwargs = self._sparqlml_kwargs(params)
        kind = self.sparqlml.parser.classify(query)
        if self.read_only and kind in ("train", "delete"):
            raise ReadOnlyReplicaError(
                f"SPARQL-ML {kind} statements are not available on a "
                "read-only replica; send writes to the primary")
        if kind == "select":
            kwargs.pop("method", None)
            kwargs.pop("meta_sampling", None)
            kwargs.pop("use_meta_sampling", None)
        elif kind in ("train", "delete"):
            kwargs.pop("objective", None)
            kwargs.pop("force_plan", None)
        report = self.sparqlml.execute(query, **kwargs)
        return (lambda: self._project_report(report, page_size)), report

    def _handle_sparqlml_select(self, params: Dict[str, object]) -> Tuple[object, object]:
        query = str(_require(params, "query"))
        page_size = self._coerce_page_size(params.get("page_size"))
        report = self.sparqlml.execute_select(
            query,
            objective=_as_objective(params.get("objective")),
            force_plan=params.get("force_plan"))
        return (lambda: self._project_report(report, page_size)), report

    def _handle_train(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        meta_sampling = _as_meta_sampling(params.get("meta_sampling"))
        use_meta_sampling = bool(params.get("use_meta_sampling", True))
        method = params.get("method")
        if "query" in params and params["query"] is not None:
            report = self.sparqlml.execute_train(
                str(params["query"]), meta_sampling=meta_sampling,
                use_meta_sampling=use_meta_sampling, method=method)
        else:
            task = _as_task(_require(params, "task"))
            request = TrainGMLRequest(
                name=str(params.get("name") or task.name), task=task,
                budget=_as_budget(params.get("budget")) or TaskBudget(),
                method=method)
            report = self.sparqlml.train_request(
                request, meta_sampling=meta_sampling,
                use_meta_sampling=use_meta_sampling, method=method)
        payload = dict(report.as_dict())
        payload["kind"] = "TRAIN_REPORT"
        return payload, report

    def _handle_infer_node_class(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        model_uri = _as_iri_text(_require(params, "model_uri"), "model_uri")
        node = _as_iri_text(_require(params, "node"), "node")
        predicted = self._infer_one(model_uri, node, "class", 1)
        return {"model_uri": model_uri, "node": node, "output": predicted}, predicted

    def _handle_infer_links(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        model_uri = _as_iri_text(_require(params, "model_uri"), "model_uri")
        source = _as_iri_text(_require(params, "source"), "source")
        k = int(params.get("k", 10))
        links = self._infer_one(model_uri, source, "links", k)
        return {"model_uri": model_uri, "source": source, "k": k,
                "output": links}, links

    def _handle_infer_similar(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        model_uri = _as_iri_text(_require(params, "model_uri"), "model_uri")
        entity = _as_iri_text(_require(params, "entity"), "entity")
        k = int(params.get("k", 10))
        similar = self._infer_one(model_uri, entity, "similar", k)
        return {"model_uri": model_uri, "entity": entity, "k": k,
                "output": similar}, similar

    def _handle_infer_batch(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        model_uri = _as_iri_text(_require(params, "model_uri"), "model_uri")
        inputs = _require(params, "inputs")
        if not isinstance(inputs, (list, tuple)):
            raise BadRequestError("'inputs' must be a list of IRI strings")
        inputs = [_as_iri_text(item, "inputs[]") for item in inputs]
        k = int(params.get("k", 10))
        mode = params.get("mode")
        calls_before = self.gmlaas.http_calls
        predictions = self.gmlaas.infer_batch(model_uri, inputs, k=k,
                                              mode=mode if mode is None else str(mode))
        http_calls = self.gmlaas.http_calls - calls_before
        page, cursor = self._paginate(predictions, params.get("page_size"))
        result = {"model_uri": model_uri, "total": len(predictions),
                  "predictions": page, "next_cursor": cursor,
                  "http_calls": http_calls}
        return result, predictions

    def _handle_list_models(self, params: Dict[str, object]) -> Tuple[object, object]:
        models = self.governor.list_models()
        return (lambda: {"models": [m.as_dict() for m in models],
                         "count": len(models)}), models

    def _handle_describe_model(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        model_uri = _as_iri_text(_require(params, "model_uri"), "model_uri")
        description = self.governor.describe(IRI(model_uri)).as_dict()
        return {"model": description}, description

    def _handle_delete_models(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        query = str(_require(params, "query"))
        report = self.sparqlml.execute_delete(query)
        payload = dict(report.as_dict())
        payload["kind"] = "DELETE_REPORT"
        return payload, report

    def _handle_stats(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        from repro.rdf.stats import compute_statistics
        stats: Dict[str, object] = {
            "kg": compute_statistics(self.endpoint.graph).as_dict(),
            "kgmeta_models": len(self.governor),
            "stored_models": len(self.gmlaas.model_store),
            "http_calls": self.gmlaas.http_calls,
            # Hot-path observability: plan-cache hit/miss counters and total
            # triple-pattern index lookups, so APIClient users can watch the
            # query pipeline without reaching into endpoint internals.
            "query_cache": self.endpoint.cache_info(),
            # The serialized-response cache above it: hits skip evaluation
            # AND serialization, so watch this one to explain hot-path QPS.
            "result_cache": self.endpoint.result_cache.stats(),
            "api": self.metrics(),
            "inference_coalescing": self.coalescing_stats(),
        }
        if self.scheduler is not None:
            stats["scheduler"] = self.scheduler.stats()
        if self.admission is not None:
            stats["admission"] = self.admission.stats()
        stats["replication"] = self._replication_status_doc()
        return stats, stats

    def _replication_status_doc(self) -> Dict[str, object]:
        """The role/seq/lag document behind ``replication/status``.

        On a follower the attached :class:`ReplicaEngine` answers (applied
        seq, lag); on a primary the storage engine's WAL window does; a
        memory-only platform reports a standalone role with no history.
        """
        if self.replication is not None:
            return dict(self.replication.replication_status())
        if self.storage is not None and self.storage.is_open:
            oldest, last_seq = self.storage.wal_window()
            return {
                "role": "primary",
                "read_only": self.read_only,
                "last_seq": last_seq,
                "applied_seq": last_seq,
                "oldest_streamable_seq": oldest,
                "segments": self.storage.archive.stats(),
            }
        return {"role": "standalone", "read_only": self.read_only,
                "last_seq": 0, "applied_seq": 0}

    def _handle_replication_status(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        doc = self._replication_status_doc()
        return doc, doc

    def _handle_metrics(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        metrics = self.metrics()
        payload = {"routes": metrics,
                   "inference_coalescing": self.coalescing_stats()}
        if self.storage is not None:
            payload["storage"] = self.storage.stats()
        return payload, metrics

    # ------------------------------------------------------------------
    # Durable storage administration
    # ------------------------------------------------------------------
    def _require_storage(self):
        if self.storage is None:
            raise BadRequestError(
                "no storage engine configured: construct the platform/router "
                "with a repro.storage.StorageEngine to use admin/* routes")
        return self.storage

    def _handle_admin_persist(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        """Checkpoint the dataset and rotate the WAL (log compaction)."""
        storage = self._require_storage()
        info = storage.checkpoint()
        result = {"checkpoint": info.as_dict(), "storage": storage.stats()}
        return result, info

    def _handle_admin_restore(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        """Recover the dataset from disk and swap it into the endpoint."""
        storage = self._require_storage()
        started = time.perf_counter()
        dataset = storage.reopen()
        self.endpoint.replace_dataset(dataset)
        result = {
            "restored_triples": len(dataset),
            "named_graphs": sum(1 for _ in dataset.named_graphs()),
            "recovered_transactions": storage.recovered_transactions,
            "recovered_ops": storage.recovered_ops,
            "seconds": round(time.perf_counter() - started, 6),
            "storage": storage.stats(),
        }
        return result, dataset

    def _handle_admin_bulk_load(self, params: Dict[str, object]) -> Tuple[Dict[str, object], object]:
        """Stream Turtle/N-Triples into the store, then checkpoint."""
        storage = self._require_storage()
        text = _require(params, "turtle")
        if not isinstance(text, str):
            raise BadRequestError("'turtle' must be a Turtle/N-Triples string")
        kwargs: Dict[str, object] = {}
        graph_iri = None
        if params.get("graph_iri") is not None:
            graph_iri = _as_iri_text(params["graph_iri"], "graph_iri")
            kwargs["graph_iri"] = graph_iri
        if params.get("batch_size") is not None:
            try:
                batch_size = int(params["batch_size"])
            except (TypeError, ValueError):
                raise BadRequestError("'batch_size' must be an integer")
            if batch_size <= 0:
                raise BadRequestError("'batch_size' must be positive")
            kwargs["batch_size"] = batch_size
        report = storage.bulk_load(text, **kwargs)
        result = dict(report.as_dict())
        # graph_triples counts the *target* graph (named or default);
        # total_triples is the whole dataset, so the two reconcile no
        # matter where the load landed.
        dataset = self.endpoint.dataset
        target = dataset.graph(graph_iri) if graph_iri else dataset.default_graph
        result["graph_triples"] = len(target)
        result["total_triples"] = len(dataset)
        return result, report
