"""Stable error codes for the versioned service API.

Every exception class in :mod:`repro.exceptions` maps to one stable,
transport-safe error code.  The codes are part of the API contract: clients
match on ``error["code"]`` strings, never on Python class names, so the table
below must only ever grow — renaming or removing a code is a breaking change.

The mapping is bidirectional: :func:`error_payload` turns a raised exception
into the JSON ``error`` object of an :class:`~repro.kgnet.api.envelopes.APIResponse`,
and :func:`exception_from_payload` reconstructs the most specific exception
class on the client side so ``raise_for_error()`` surfaces the same type the
server raised.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro import exceptions as X

__all__ = [
    "ERROR_CODES",
    "INTERNAL_ERROR",
    "error_code",
    "error_payload",
    "exception_from_payload",
]

#: Exception class -> stable error code.  Append-only.
ERROR_CODES: Dict[Type[BaseException], str] = {
    X.KGNetError: "KGNET_ERROR",
    # RDF / SPARQL substrate
    X.RDFError: "RDF_ERROR",
    X.TermError: "TERM_ERROR",
    X.ParseError: "PARSE_ERROR",
    X.SPARQLError: "SPARQL_ERROR",
    X.QueryError: "QUERY_ERROR",
    X.UpdateError: "UPDATE_ERROR",
    X.UnsupportedFeatureError: "UNSUPPORTED_FEATURE",
    X.UDFError: "UDF_ERROR",
    X.QueryInterrupted: "QUERY_INTERRUPTED",
    X.QueryTimeout: "QUERY_TIMEOUT",
    X.QueryCancelled: "QUERY_CANCELLED",
    X.QueryPreempted: "QUERY_PREEMPTED",
    # GML framework
    X.GMLError: "GML_ERROR",
    X.AutogradError: "AUTOGRAD_ERROR",
    X.ShapeError: "SHAPE_ERROR",
    X.TrainingError: "TRAINING_ERROR",
    X.BudgetExceededError: "BUDGET_EXCEEDED",
    X.SamplingError: "SAMPLING_ERROR",
    X.DatasetError: "DATASET_ERROR",
    # KGNet platform
    X.PlatformError: "PLATFORM_ERROR",
    X.MetaSamplingError: "META_SAMPLING_ERROR",
    X.ModelNotFoundError: "MODEL_NOT_FOUND",
    X.ModelSelectionError: "MODEL_SELECTION_ERROR",
    X.InferenceError: "INFERENCE_ERROR",
    X.KGMetaError: "KGMETA_ERROR",
    X.SPARQLMLError: "SPARQLML_ERROR",
    # Durable storage
    X.StorageError: "STORAGE_ERROR",
    X.CorruptCheckpointError: "CORRUPT_CHECKPOINT",
    X.WalTruncatedError: "WAL_TRUNCATED",
    # Replication
    X.ReplicationError: "REPLICATION_ERROR",
    X.ReadOnlyReplicaError: "READ_ONLY_REPLICA",
    # Service API
    X.APIError: "API_ERROR",
    X.BadRequestError: "BAD_REQUEST",
    X.UnknownOperationError: "UNKNOWN_OPERATION",
    X.CursorError: "CURSOR_ERROR",
    X.ResultStreamCut: "RESULT_STREAM_CUT",
    X.ServerOverloaded: "SERVER_OVERLOADED",
}

#: Code reported for exceptions outside the KGNet hierarchy (bugs, OS errors).
INTERNAL_ERROR = "INTERNAL_ERROR"

_CLASS_BY_CODE: Dict[str, Type[BaseException]] = {
    code: cls for cls, code in ERROR_CODES.items()
}


def error_code(error: object) -> str:
    """The stable code for an exception instance or class.

    Walks the MRO so subclasses added without a registry entry inherit the
    nearest registered ancestor's code instead of leaking class names.
    """
    cls = error if isinstance(error, type) else type(error)
    for base in cls.__mro__:
        if base in ERROR_CODES:
            return ERROR_CODES[base]
    return INTERNAL_ERROR


def error_payload(error: BaseException) -> Dict[str, object]:
    """Serialise an exception into the envelope's JSON ``error`` object."""
    payload: Dict[str, object] = {
        "code": error_code(error),
        "message": str(error),
        "type": type(error).__name__,
    }
    details: Dict[str, object] = {}
    if isinstance(error, X.ParseError):
        details["message"] = error.message
        details["line"] = error.line
        details["column"] = error.column
    if isinstance(error, X.BudgetExceededError):
        details["elapsed_seconds"] = error.elapsed_seconds
        details["peak_memory_bytes"] = error.peak_memory_bytes
    if isinstance(error, X.QueryInterrupted):
        details["elapsed_seconds"] = error.elapsed_seconds
        details["work_units"] = error.work_units
        details["rows_emitted"] = error.rows_emitted
    if isinstance(error, X.ServerOverloaded):
        details["retry_after"] = error.retry_after
    if details:
        payload["details"] = details
    return payload


def exception_from_payload(payload: Optional[Dict[str, object]]) -> BaseException:
    """Rebuild the most specific exception an ``error`` payload describes."""
    if not payload:
        return X.KGNetError("unknown API error (empty error payload)")
    code = str(payload.get("code", INTERNAL_ERROR))
    message = str(payload.get("message", code))
    cls = _CLASS_BY_CODE.get(code)
    details = payload.get("details")
    details = details if isinstance(details, dict) else {}
    if cls is X.ParseError:
        return X.ParseError(str(details.get("message", message)),
                            line=int(details.get("line", 0)),
                            column=int(details.get("column", 0)))
    if cls is X.BudgetExceededError:
        return X.BudgetExceededError(
            message,
            elapsed_seconds=float(details.get("elapsed_seconds", 0.0)),
            peak_memory_bytes=int(details.get("peak_memory_bytes", 0)))
    if cls is not None and issubclass(cls, X.QueryInterrupted):
        return cls(message,
                   elapsed_seconds=float(details.get("elapsed_seconds", 0.0)),
                   work_units=int(details.get("work_units", 0)),
                   rows_emitted=int(details.get("rows_emitted", 0)))
    if cls is X.ServerOverloaded:
        return X.ServerOverloaded(
            message, retry_after=float(details.get("retry_after", 1.0)))
    if cls is not None:
        return cls(message)
    return X.KGNetError(f"[{code}] {message}")
