"""Versioned, transport-agnostic service API for the KGNet platform.

The paper architects KGNet as services talking JSON over HTTP (§IV); this
package is that surface: typed request/response envelopes
(:mod:`~repro.kgnet.api.envelopes`), a stable error-code contract
(:mod:`~repro.kgnet.api.errors`), an operation router with per-route metrics
and cursor pagination (:mod:`~repro.kgnet.api.router`), and a pure-JSON
client (:mod:`~repro.kgnet.api.client`).
"""

from repro.kgnet.api.client import APIClient
from repro.kgnet.api.envelopes import API_VERSION, APIRequest, APIResponse
from repro.kgnet.api.errors import (
    ERROR_CODES,
    INTERNAL_ERROR,
    error_code,
    error_payload,
    exception_from_payload,
)
from repro.kgnet.api.router import APIRouter, RouteMetrics

__all__ = [
    "API_VERSION",
    "APIClient",
    "APIRequest",
    "APIResponse",
    "APIRouter",
    "ERROR_CODES",
    "INTERNAL_ERROR",
    "RouteMetrics",
    "error_code",
    "error_payload",
    "exception_from_payload",
]
