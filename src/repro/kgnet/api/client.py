"""A transport-agnostic client for the KGNet service API.

:class:`APIClient` never touches platform internals: every call builds an
:class:`~repro.kgnet.api.envelopes.APIRequest`, serialises it to a JSON
string, hands it to a *transport* callable (``str -> str``), and parses the
JSON string that comes back into an
:class:`~repro.kgnet.api.envelopes.APIResponse`.  The default transport
drives an in-process :class:`~repro.kgnet.api.router.APIRouter` through the
same JSON boundary a real HTTP server would use, so anything that works here
works unchanged over a socket.

    client = APIClient.in_process()           # private platform
    client = APIClient.for_router(router)     # share a platform's router
    client = APIClient(transport=post_json)   # any str -> str channel
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.kgnet.api.envelopes import APIRequest, APIResponse
from repro.kgnet.api.router import APIRouter

__all__ = ["APIClient"]

Transport = Callable[[str], str]


def _json_transport(router: APIRouter) -> Transport:
    """The reference transport: JSON string in, JSON string out."""
    def send(raw: str) -> str:
        request = APIRequest.from_json(raw)
        return router.dispatch(request).to_json()
    return send


class APIClient:
    """Calls the service API through envelopes only."""

    def __init__(self, transport: Transport) -> None:
        self._transport = transport

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_router(cls, router: APIRouter) -> "APIClient":
        """A client speaking JSON to an existing router."""
        return cls(_json_transport(router))

    @classmethod
    def in_process(cls, **platform_kwargs) -> "APIClient":
        """A client owning a private in-process platform."""
        from repro.kgnet.platform import KGNet
        return cls.for_router(KGNet(**platform_kwargs).api)

    # ------------------------------------------------------------------
    # Core call
    # ------------------------------------------------------------------
    def send(self, request: APIRequest, check: bool = True) -> APIResponse:
        """Serialise, transport, deserialise; raise the mapped error if any."""
        response = APIResponse.from_json(self._transport(request.to_json()))
        if check:
            response.raise_for_error()
        return response

    def call(self, op: str, check: bool = True, **params) -> Dict[str, object]:
        """Invoke ``op`` and return the response's ``result`` payload."""
        response = self.send(APIRequest(op=op, params=params), check=check)
        return response.result if response.result is not None else {}

    # ------------------------------------------------------------------
    # Operations (thin, named wrappers over ``call``)
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.call("ping")

    def load_graph(self, triples, graph_iri: Optional[str] = None) -> Dict[str, object]:
        """Load a KG; accepts an N-Triples string or any triple iterable."""
        if isinstance(triples, str):
            return self.call("load", ntriples=triples, graph_iri=graph_iri)
        from repro.rdf.io import serialize_ntriples
        return self.call("load", ntriples=serialize_ntriples(triples),
                         graph_iri=graph_iri)

    def sparql(self, query: str, page_size: Optional[int] = None) -> Dict[str, object]:
        return self.call("sparql", query=query, page_size=page_size)

    def sparqlml(self, query: str, **options) -> Dict[str, object]:
        return self.call("sparqlml", query=query, **options)

    def query(self, query: str, objective: Optional[Dict[str, object]] = None,
              force_plan: Optional[str] = None,
              page_size: Optional[int] = None) -> Dict[str, object]:
        return self.call("sparqlml_select", query=query, objective=objective,
                         force_plan=force_plan, page_size=page_size)

    def train(self, query: Optional[str] = None,
              task: Optional[Dict[str, object]] = None,
              **options) -> Dict[str, object]:
        return self.call("train", query=query, task=task, **options)

    def infer_node_class(self, model_uri: str, node: str) -> Optional[str]:
        result = self.call("infer_node_class", model_uri=model_uri, node=node)
        output = result.get("output")
        return None if output is None else str(output)

    def infer_links(self, model_uri: str, source: str, k: int = 10) -> List[Dict[str, object]]:
        return list(self.call("infer_links", model_uri=model_uri,
                              source=source, k=k).get("output") or [])

    def infer_similar(self, model_uri: str, entity: str, k: int = 10) -> List[Dict[str, object]]:
        return list(self.call("infer_similar", model_uri=model_uri,
                              entity=entity, k=k).get("output") or [])

    def infer_batch(self, model_uri: str, inputs: List[str], k: int = 10,
                    mode: Optional[str] = None,
                    page_size: Optional[int] = None) -> Dict[str, object]:
        return self.call("infer_batch", model_uri=model_uri, inputs=list(inputs),
                         k=k, mode=mode, page_size=page_size)

    def next_page(self, cursor: str,
                  page_size: Optional[int] = None) -> Dict[str, object]:
        return self.call("next_page", cursor=cursor, page_size=page_size)

    def iter_pages(self, first_result: Dict[str, object],
                   key: str) -> Iterator[object]:
        """Yield every item of a paginated result, following cursors."""
        for item in first_result.get(key) or []:
            yield item
        cursor = first_result.get("next_cursor")
        while cursor:
            page = self.next_page(str(cursor))
            for item in page.get("items") or []:
                yield item
            cursor = page.get("next_cursor")

    def list_models(self) -> List[Dict[str, object]]:
        return list(self.call("list_models").get("models") or [])

    def describe_model(self, model_uri: str) -> Dict[str, object]:
        return dict(self.call("describe_model", model_uri=model_uri).get("model") or {})

    def delete_models(self, query: str) -> Dict[str, object]:
        return self.call("delete_models", query=query)

    def stats(self) -> Dict[str, object]:
        return self.call("stats")

    def metrics(self) -> Dict[str, object]:
        return dict(self.call("metrics").get("routes") or {})
