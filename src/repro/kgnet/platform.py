"""The KGNet platform facade (paper Fig 3).

:class:`KGNet` wires together every component of the reproduction:

* an in-process SPARQL endpoint hosting the data KG and the KGMeta graph,
* GML-as-a-Service (training manager, model/embedding stores, inference),
* the KGMeta governor,
* the SPARQL-ML service (parser, optimizer, rewriter, UDFs).

Typical usage::

    from repro.kgnet import KGNet
    from repro.datasets import generate_dblp_kg, dblp_paper_venue_task

    platform = KGNet()
    platform.load_graph(generate_dblp_kg())
    report = platform.train_task(dblp_paper_venue_task())
    answers = platform.query(SPARQL_ML_QUERY_TEXT)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.gml.tasks import TaskSpec, TaskType
from repro.gml.train.budget import TaskBudget
from repro.kgnet.gmlaas.service import GMLaaS
from repro.kgnet.gmlaas.training_manager import TrainingManagerConfig
from repro.kgnet.kgmeta.governor import KGMetaGovernor, ModelMetadata
from repro.kgnet.meta_sampler import MetaSampler, MetaSamplingConfig
from repro.kgnet.sparqlml.parser import TrainGMLRequest
from repro.kgnet.sparqlml.optimizer import ModelSelectionObjective
from repro.kgnet.sparqlml.service import (
    DeleteReport,
    SelectReport,
    SPARQLMLService,
    TrainReport,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Triple
from repro.sparql.endpoint import SPARQLEndpoint
from repro.sparql.results import ResultSet

__all__ = ["KGNet"]


class KGNet:
    """On-demand GML as a service on top of an RDF engine."""

    def __init__(self, endpoint: Optional[SPARQLEndpoint] = None,
                 training_config: Optional[TrainingManagerConfig] = None,
                 model_directory: Optional[str] = None) -> None:
        self.endpoint = endpoint or SPARQLEndpoint()
        self.gmlaas = GMLaaS(config=training_config, model_directory=model_directory)
        self.governor = KGMetaGovernor(self.endpoint)
        self.sparqlml = SPARQLMLService(self.endpoint, self.gmlaas, self.governor)
        self.meta_sampler = MetaSampler()

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def load_graph(self, triples: Union[Graph, Iterable[Triple]],
                   graph_iri: Optional[Union[str, IRI]] = None) -> int:
        """Load a knowledge graph into the endpoint (default graph by default)."""
        return self.endpoint.load(triples, graph_iri=graph_iri)

    @property
    def graph(self) -> Graph:
        return self.endpoint.graph

    # ------------------------------------------------------------------
    # SPARQL / SPARQL-ML execution
    # ------------------------------------------------------------------
    def sparql(self, query_text: str):
        """Run a plain SPARQL query / update against the endpoint."""
        import re
        body = re.sub(r"(?i)prefix\s+\S+\s*<[^>]*>", " ", query_text)
        body = re.sub(r"(?i)base\s*<[^>]*>", " ", body).lstrip().lower()
        if body.startswith(("insert", "delete", "clear", "drop", "with")):
            return self.endpoint.update(query_text)
        return self.endpoint.query(query_text)

    def execute(self, query_text: str, **kwargs):
        """Run a SPARQL-ML request (SELECT / INSERT-TrainGML / DELETE)."""
        return self.sparqlml.execute(query_text, **kwargs)

    def query(self, query_text: str,
              objective: Optional[ModelSelectionObjective] = None,
              force_plan: Optional[str] = None) -> SelectReport:
        """Run a SPARQL-ML SELECT query and return results + execution report."""
        return self.sparqlml.execute_select(query_text, objective=objective,
                                            force_plan=force_plan)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_task(self, task: TaskSpec, budget: Optional[TaskBudget] = None,
                   method: Optional[str] = None,
                   meta_sampling: Optional[Union[str, MetaSamplingConfig]] = None,
                   use_meta_sampling: bool = True,
                   name: Optional[str] = None) -> TrainReport:
        """Train a GML model for ``task`` (programmatic TrainGML)."""
        if isinstance(meta_sampling, str):
            meta_sampling = MetaSamplingConfig.from_label(meta_sampling)
        request = TrainGMLRequest(name=name or task.name, task=task,
                                  budget=budget or TaskBudget(), method=method)
        return self.sparqlml.train_request(request, meta_sampling=meta_sampling,
                                           use_meta_sampling=use_meta_sampling,
                                           method=method)

    def train_sparqlml(self, insert_query: str, **kwargs) -> TrainReport:
        """Train from a SPARQL-ML INSERT query (paper Fig 8)."""
        return self.sparqlml.execute_train(insert_query, **kwargs)

    # ------------------------------------------------------------------
    # Model management / inspection
    # ------------------------------------------------------------------
    def list_models(self) -> List[ModelMetadata]:
        return self.governor.list_models()

    def describe_model(self, model_uri: Union[str, IRI]) -> Dict[str, object]:
        if isinstance(model_uri, str):
            model_uri = IRI(model_uri)
        return self.governor.describe(model_uri).as_dict()

    def delete_models(self, delete_query: str) -> DeleteReport:
        """Delete models via a SPARQL-ML DELETE query (paper Fig 9)."""
        return self.sparqlml.execute_delete(delete_query)

    # ------------------------------------------------------------------
    # Direct inference helpers (bypassing SPARQL-ML)
    # ------------------------------------------------------------------
    def predict_node_class(self, model_uri: Union[str, IRI],
                           node_iri: Union[str, IRI]) -> Optional[str]:
        return self.gmlaas.infer_node_class(model_uri, node_iri)

    def predict_links(self, model_uri: Union[str, IRI], source_iri: Union[str, IRI],
                      k: int = 10) -> List[Dict[str, object]]:
        return self.gmlaas.infer_links(model_uri, source_iri, k=k)

    def similar_entities(self, model_uri: Union[str, IRI], entity_iri: Union[str, IRI],
                         k: int = 10) -> List[Dict[str, object]]:
        return self.gmlaas.infer_similar_entities(model_uri, entity_iri, k=k)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def http_calls(self) -> int:
        """Inference HTTP calls served by GMLaaS since start-up."""
        return self.gmlaas.http_calls

    def statistics(self) -> Dict[str, object]:
        from repro.rdf.stats import compute_statistics
        return {
            "kg": compute_statistics(self.endpoint.graph).as_dict(),
            "kgmeta_models": len(self.governor),
            "stored_models": len(self.gmlaas.model_store),
            "http_calls": self.http_calls,
        }

    def __repr__(self) -> str:
        return (f"<KGNet kg_triples={len(self.endpoint.graph)} "
                f"models={len(self.gmlaas.model_store)}>")
