"""The KGNet platform facade (paper Fig 3).

:class:`KGNet` wires together every component of the reproduction:

* an in-process SPARQL endpoint hosting the data KG and the KGMeta graph,
* GML-as-a-Service (training manager, model/embedding stores, inference),
* the KGMeta governor,
* the SPARQL-ML service (parser, optimizer, rewriter, UDFs),
* the versioned service API (:class:`~repro.kgnet.api.router.APIRouter` and
  :class:`~repro.kgnet.api.client.APIClient`).

Since the API redesign the facade is a thin backwards-compatible wrapper:
every method builds an :class:`~repro.kgnet.api.envelopes.APIRequest`,
dispatches it through :attr:`KGNet.api`, and unwraps the rich in-process
result (re-raising the original exception on error envelopes).  The same
router answers :attr:`KGNet.client` — an :class:`APIClient` speaking pure
JSON — so programmatic callers and remote transports share one contract.

Typical usage::

    from repro.kgnet import KGNet
    from repro.datasets import generate_dblp_kg, dblp_paper_venue_task

    platform = KGNet()
    platform.load_graph(generate_dblp_kg())
    report = platform.train_task(dblp_paper_venue_task())
    answers = platform.query(SPARQL_ML_QUERY_TEXT)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.exceptions import PlatformError
from repro.gml.tasks import TaskSpec
from repro.gml.train.budget import TaskBudget
from repro.kgnet.api.client import APIClient
from repro.kgnet.api.envelopes import APIRequest, APIResponse
from repro.kgnet.api.router import APIRouter
from repro.kgnet.gmlaas.service import GMLaaS
from repro.kgnet.gmlaas.training_manager import TrainingManagerConfig
from repro.kgnet.kgmeta.governor import KGMetaGovernor, ModelMetadata
from repro.kgnet.meta_sampler import MetaSampler, MetaSamplingConfig
from repro.kgnet.sparqlml.optimizer import ModelSelectionObjective
from repro.kgnet.sparqlml.service import (
    DeleteReport,
    SelectReport,
    SPARQLMLService,
    TrainReport,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Triple
from repro.sparql.endpoint import SPARQLEndpoint

__all__ = ["KGNet"]


class KGNet:
    """On-demand GML as a service on top of an RDF engine."""

    def __init__(self, endpoint: Optional[SPARQLEndpoint] = None,
                 training_config: Optional[TrainingManagerConfig] = None,
                 model_directory: Optional[str] = None,
                 storage=None,
                 scheduler=None,
                 admission=None,
                 default_query_timeout: Optional[float] = None,
                 max_query_timeout: Optional[float] = None) -> None:
        #: Hostile-load protection, all opt-in (see repro.concurrency):
        #: a :class:`~repro.concurrency.QueryScheduler` time-slices SPARQL
        #: queries fairly, an :class:`~repro.concurrency.AdmissionController`
        #: sheds excess load before it executes, and the timeouts bound /
        #: cap per-query deadlines.  The caller owns the scheduler's
        #: lifecycle (``scheduler.close()``).
        #: Optional :class:`repro.storage.engine.StorageEngine`.  When given
        #: (and no explicit endpoint), the endpoint is built over the
        #: engine's recovered dataset, every write commits through its WAL,
        #: and the ``admin/persist`` / ``admin/restore`` / ``admin/bulk_load``
        #: routes come alive.
        self.storage = storage
        if storage is not None:
            dataset = storage.open()
            if endpoint is None:
                endpoint = SPARQLEndpoint(dataset=dataset)
            elif endpoint.dataset is not dataset:
                # An endpoint over some *other* dataset next to a storage
                # engine is a silent no-durability trap: nothing the caller
                # writes would ever reach the WAL, while admin/restore would
                # clobber their data with the unrelated on-disk state.
                raise PlatformError(
                    "endpoint and storage are not wired together: either "
                    "pass only storage=, or build the endpoint over "
                    "storage.open()'s dataset")
        self.endpoint = endpoint or SPARQLEndpoint()
        self.gmlaas = GMLaaS(config=training_config, model_directory=model_directory)
        self.governor = KGMetaGovernor(self.endpoint)
        self.sparqlml = SPARQLMLService(self.endpoint, self.gmlaas, self.governor)
        self.meta_sampler = MetaSampler()
        #: The versioned service API every facade method dispatches through.
        self.api = APIRouter(self.endpoint, self.gmlaas, self.governor,
                             self.sparqlml, storage=storage,
                             scheduler=scheduler, admission=admission,
                             default_query_timeout=default_query_timeout,
                             max_query_timeout=max_query_timeout)
        #: A JSON-only client bound to the same router (transport-agnostic).
        self.client = APIClient.for_router(self.api)

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _dispatch(self, op: str, **params) -> APIResponse:
        """Route one operation through the API, unwrapping error envelopes."""
        response = self.api.dispatch(APIRequest(op=op, params=params))
        response.raise_for_error()
        return response

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def load_graph(self, triples: Union[Graph, Iterable[Triple]],
                   graph_iri: Optional[Union[str, IRI]] = None) -> int:
        """Load a knowledge graph into the endpoint (default graph by default)."""
        return self._dispatch("load", triples=triples,
                              graph_iri=graph_iri).attachment

    @property
    def graph(self) -> Graph:
        return self.endpoint.graph

    # ------------------------------------------------------------------
    # SPARQL / SPARQL-ML execution
    # ------------------------------------------------------------------
    def sparql(self, query_text: str):
        """Run a plain SPARQL query / update; the parser routes the kind."""
        return self._dispatch("sparql", query=query_text).attachment

    def execute(self, query_text: str, **kwargs):
        """Run a SPARQL-ML request (SELECT / INSERT-TrainGML / DELETE)."""
        return self._dispatch("sparqlml", query=query_text, **kwargs).attachment

    def query(self, query_text: str,
              objective: Optional[ModelSelectionObjective] = None,
              force_plan: Optional[str] = None) -> SelectReport:
        """Run a SPARQL-ML SELECT query and return results + execution report."""
        return self._dispatch("sparqlml_select", query=query_text,
                              objective=objective,
                              force_plan=force_plan).attachment

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_task(self, task: TaskSpec, budget: Optional[TaskBudget] = None,
                   method: Optional[str] = None,
                   meta_sampling: Optional[Union[str, MetaSamplingConfig]] = None,
                   use_meta_sampling: bool = True,
                   name: Optional[str] = None) -> TrainReport:
        """Train a GML model for ``task`` (programmatic TrainGML)."""
        return self._dispatch("train", task=task, budget=budget, method=method,
                              meta_sampling=meta_sampling,
                              use_meta_sampling=use_meta_sampling,
                              name=name).attachment

    def train_sparqlml(self, insert_query: str, **kwargs) -> TrainReport:
        """Train from a SPARQL-ML INSERT query (paper Fig 8)."""
        return self._dispatch("train", query=insert_query, **kwargs).attachment

    # ------------------------------------------------------------------
    # Model management / inspection
    # ------------------------------------------------------------------
    def list_models(self) -> List[ModelMetadata]:
        return self._dispatch("list_models").attachment

    def describe_model(self, model_uri: Union[str, IRI]) -> Dict[str, object]:
        return self._dispatch("describe_model", model_uri=model_uri).attachment

    def delete_models(self, delete_query: str) -> DeleteReport:
        """Delete models via a SPARQL-ML DELETE query (paper Fig 9)."""
        return self._dispatch("delete_models", query=delete_query).attachment

    # ------------------------------------------------------------------
    # Direct inference helpers (bypassing SPARQL-ML)
    # ------------------------------------------------------------------
    def predict_node_class(self, model_uri: Union[str, IRI],
                           node_iri: Union[str, IRI]) -> Optional[str]:
        return self._dispatch("infer_node_class", model_uri=model_uri,
                              node=node_iri).attachment

    def predict_links(self, model_uri: Union[str, IRI], source_iri: Union[str, IRI],
                      k: int = 10) -> List[Dict[str, object]]:
        return self._dispatch("infer_links", model_uri=model_uri,
                              source=source_iri, k=k).attachment

    def similar_entities(self, model_uri: Union[str, IRI], entity_iri: Union[str, IRI],
                         k: int = 10) -> List[Dict[str, object]]:
        return self._dispatch("infer_similar", model_uri=model_uri,
                              entity=entity_iri, k=k).attachment

    def infer_batch(self, model_uri: Union[str, IRI], inputs: List[str],
                    k: int = 10, mode: Optional[str] = None) -> List[Dict[str, object]]:
        """Batched inference: one amortised call for many inputs."""
        return self._dispatch("infer_batch", model_uri=model_uri,
                              inputs=inputs, k=k, mode=mode).attachment

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def http_calls(self) -> int:
        """Inference HTTP calls served by GMLaaS since start-up."""
        return self.gmlaas.http_calls

    def statistics(self) -> Dict[str, object]:
        return self._dispatch("stats").attachment

    def api_metrics(self) -> Dict[str, Dict[str, object]]:
        """Per-route latency/throughput counters of the service API."""
        return self.api.metrics()

    def __repr__(self) -> str:
        return (f"<KGNet kg_triples={len(self.endpoint.graph)} "
                f"models={len(self.gmlaas.model_store)}>")
