"""The SPARQL-ML Query Re-writer (paper Figs 11 and 12).

Given a parsed SPARQL-ML SELECT query, one :class:`UserDefinedPredicate`, the
model chosen by the optimizer and the plan choice, the re-writer produces an
ordinary SPARQL query in which the user-defined predicate has been replaced
by UDF calls:

* **per-instance plan** (Fig 11) — the predicate's object variable becomes a
  projection expression ``sql:UDFS.getNodeClass(<model>, ?subject)``; the RDF
  engine ends up issuing one UDF (HTTP) call per result row,
* **dictionary plan** (Fig 12) — an inner sub-select issues a single UDF call
  that materialises the full prediction dictionary, and the outer query looks
  rows up with ``sql:UDFS.getKeyValue(?dict, ?subject)``.

The rewriter works on the AST and serialises the result back to SPARQL text
(:mod:`repro.sparql.serializer`), so the output is executable by the plain
SPARQL engine with the UDFs registered.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import SPARQLMLError
from repro.gml.tasks import TaskType
from repro.kgnet.sparqlml.optimizer import PlanChoice
from repro.kgnet.sparqlml.parser import UserDefinedPredicate
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.ast import (
    BGP,
    ConstantExpr,
    FunctionCall,
    GroupPattern,
    SelectItem,
    SelectQuery,
    SubSelectPattern,
    TriplePattern,
    VariableExpr,
)
from repro.sparql.serializer import serialize_select

__all__ = ["UDF_GET_NODE_CLASS", "UDF_GET_KEY_VALUE", "UDF_GET_LINK_PRED",
           "UDF_GET_TOPK_LINKS", "UDF_GET_SIMILAR", "RewrittenQuery",
           "SPARQLMLRewriter"]

# Names of the UDFs as they appear in rewritten queries (Virtuoso-style).
UDF_GET_NODE_CLASS = "sql:UDFS.getNodeClass"
UDF_GET_KEY_VALUE = "sql:UDFS.getKeyValue"
UDF_GET_LINK_PRED = "sql:UDFS.getLinkPred"
UDF_GET_TOPK_LINKS = "sql:UDFS.getTopKLinks"
UDF_GET_SIMILAR = "sql:UDFS.getSimilarEntities"


@dataclass
class RewrittenQuery:
    """A rewritten SPARQL query plus how it was produced."""

    text: str
    query: SelectQuery
    plan: str
    model_uri: IRI
    predicate_variable: str

    def as_dict(self) -> dict:
        return {
            "plan": self.plan,
            "model_uri": self.model_uri.value,
            "predicate_variable": self.predicate_variable,
            "query": self.text,
        }


class SPARQLMLRewriter:
    """Rewrites SPARQL-ML SELECT queries into plain SPARQL + UDF calls."""

    def rewrite(self, query: SelectQuery, predicate: UserDefinedPredicate,
                model_uri: IRI, plan: PlanChoice,
                target_node_type: Optional[IRI] = None) -> RewrittenQuery:
        """Produce the rewritten query for one user-defined predicate."""
        if predicate.subject_variable is None:
            raise SPARQLMLError(
                f"user-defined predicate {predicate.variable.n3()} never appears "
                f"in a data triple pattern")
        rewritten = copy.deepcopy(query)
        rewritten.where = self._strip_predicate_triples(rewritten.where, predicate)

        if predicate.task_type == TaskType.NODE_CLASSIFICATION:
            if plan.plan == "dictionary":
                self._apply_dictionary_plan(rewritten, predicate, model_uri,
                                            target_node_type)
            else:
                self._apply_per_instance_plan(rewritten, predicate, model_uri)
        elif predicate.task_type == TaskType.LINK_PREDICTION:
            self._apply_link_prediction_plan(rewritten, predicate, model_uri)
        else:
            self._apply_similarity_plan(rewritten, predicate, model_uri)

        text = serialize_select(rewritten)
        return RewrittenQuery(text=text, query=rewritten, plan=plan.plan,
                              model_uri=model_uri,
                              predicate_variable=predicate.variable.n3())

    # ------------------------------------------------------------------
    # Pattern surgery
    # ------------------------------------------------------------------
    def _strip_predicate_triples(self, where: GroupPattern,
                                 predicate: UserDefinedPredicate) -> GroupPattern:
        """Remove the UDP's constraint triples and its data triple pattern."""
        variable = predicate.variable
        new_elements = []
        for element in where.elements:
            if isinstance(element, BGP):
                kept = [t for t in element.triples
                        if not self._mentions_predicate_variable(t, variable)]
                if kept:
                    new_elements.append(BGP(kept))
            else:
                new_elements.append(element)
        return GroupPattern(new_elements)

    @staticmethod
    def _mentions_predicate_variable(pattern: TriplePattern,
                                     variable: Variable) -> bool:
        return pattern.subject == variable or pattern.predicate == variable \
            or pattern.object == variable

    def _replace_projection(self, query: SelectQuery, output_variable: Variable,
                            expression: FunctionCall) -> None:
        """Bind the UDP's object variable via a projection expression."""
        replaced = False
        new_items: List[SelectItem] = []
        for item in query.select_items:
            if isinstance(item.expression, VariableExpr) and \
                    item.expression.variable == output_variable and item.alias is None:
                new_items.append(SelectItem(expression=expression,
                                            alias=output_variable))
                replaced = True
            else:
                new_items.append(item)
        if not replaced:
            new_items.append(SelectItem(expression=expression, alias=output_variable))
        query.select_items = new_items
        query.select_all = False

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def _apply_per_instance_plan(self, query: SelectQuery,
                                 predicate: UserDefinedPredicate,
                                 model_uri: IRI) -> None:
        output = predicate.object_variable or Variable("prediction")
        call = FunctionCall(UDF_GET_NODE_CLASS, (
            ConstantExpr(model_uri),
            VariableExpr(predicate.subject_variable),
        ))
        self._replace_projection(query, output, call)

    def _apply_dictionary_plan(self, query: SelectQuery,
                               predicate: UserDefinedPredicate,
                               model_uri: IRI,
                               target_node_type: Optional[IRI]) -> None:
        output = predicate.object_variable or Variable("prediction")
        dictionary_variable = Variable(f"{output.name}_dic")
        # Inner sub-select: one UDF call materialising the whole dictionary.
        target_term = target_node_type or predicate.constraints.get(
            next((p for p in predicate.constraints), None))
        inner_call = FunctionCall(UDF_GET_NODE_CLASS, (
            ConstantExpr(model_uri),
            ConstantExpr(target_term if isinstance(target_term, IRI) else model_uri),
        ))
        inner = SelectQuery(
            select_items=[SelectItem(expression=inner_call, alias=dictionary_variable)],
            where=GroupPattern([]),
            prefixes={},
        )
        query.where.elements.append(SubSelectPattern(inner))
        # Outer lookup per row.
        lookup = FunctionCall(UDF_GET_KEY_VALUE, (
            VariableExpr(dictionary_variable),
            VariableExpr(predicate.subject_variable),
        ))
        self._replace_projection(query, output, lookup)

    def _apply_link_prediction_plan(self, query: SelectQuery,
                                    predicate: UserDefinedPredicate,
                                    model_uri: IRI) -> None:
        output = predicate.object_variable or Variable("prediction")
        if predicate.top_k and predicate.top_k > 1:
            call = FunctionCall(UDF_GET_TOPK_LINKS, (
                ConstantExpr(model_uri),
                VariableExpr(predicate.subject_variable),
                ConstantExpr(Literal(int(predicate.top_k))),
            ))
        else:
            call = FunctionCall(UDF_GET_LINK_PRED, (
                ConstantExpr(model_uri),
                VariableExpr(predicate.subject_variable),
            ))
        self._replace_projection(query, output, call)

    def _apply_similarity_plan(self, query: SelectQuery,
                               predicate: UserDefinedPredicate,
                               model_uri: IRI) -> None:
        output = predicate.object_variable or Variable("similar")
        call = FunctionCall(UDF_GET_SIMILAR, (
            ConstantExpr(model_uri),
            VariableExpr(predicate.subject_variable),
            ConstantExpr(Literal(int(predicate.top_k or 10))),
        ))
        self._replace_projection(query, output, call)
