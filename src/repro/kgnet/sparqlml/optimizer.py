"""SPARQL-ML query optimization (paper §IV-B.3).

Two decisions are optimized for every user-defined predicate:

1. **Model selection** — among the KGMeta models matching the predicate's
   constraints, pick the one that maximises accuracy subject to an inference-
   time constraint (or minimises inference time subject to an accuracy
   floor).  With a handful of candidates the 0/1 integer program is solved
   exactly by enumeration.

2. **Execution-plan selection** — evaluate the user-defined predicate either
   with one UDF call *per target instance* (paper Fig 11) or with a single
   call that materialises a dictionary of all predictions and per-row lookups
   (paper Fig 12).  The optimizer minimises the modelled cost
   ``#HTTP_calls * call_overhead + dictionary_entries * entry_cost`` using the
   query's target-variable cardinality and the model's prediction cardinality
   obtained from KGMeta / the data KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ModelNotFoundError, ModelSelectionError
from repro.kgnet.kgmeta.governor import ModelMetadata

__all__ = ["ModelSelectionObjective", "PlanChoice", "SPARQLMLOptimizer"]


@dataclass
class ModelSelectionObjective:
    """What to optimise when several models satisfy a predicate."""

    #: "accuracy" (default) or "inference_time".
    minimise: str = "inference_time"
    maximise: str = "accuracy"
    max_inference_seconds: Optional[float] = None
    min_accuracy: Optional[float] = None
    #: Trade-off weight when both terms are active: score = accuracy -
    #: time_weight * inference_seconds.
    time_weight: float = 0.0


@dataclass
class PlanChoice:
    """The chosen physical plan for one user-defined predicate."""

    plan: str                      # "per_instance" or "dictionary"
    estimated_http_calls: int
    estimated_dictionary_entries: int
    target_cardinality: int
    model_cardinality: int
    estimated_cost: float
    alternatives: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan,
            "estimated_http_calls": self.estimated_http_calls,
            "estimated_dictionary_entries": self.estimated_dictionary_entries,
            "target_cardinality": self.target_cardinality,
            "model_cardinality": self.model_cardinality,
            "estimated_cost": round(self.estimated_cost, 6),
            "alternatives": {k: round(v, 6) for k, v in self.alternatives.items()},
        }


class SPARQLMLOptimizer:
    """Model selection and plan selection for SPARQL-ML SELECT queries."""

    def __init__(self, http_call_cost: float = 1.0,
                 dictionary_entry_cost: float = 0.01,
                 dictionary_call_cost: float = 5.0) -> None:
        #: Cost model constants: one HTTP round trip, the marginal cost of one
        #: dictionary entry (serialisation + lookup), and the fixed cost of the
        #: single dictionary-building call (it returns a larger payload).
        self.http_call_cost = http_call_cost
        self.dictionary_entry_cost = dictionary_entry_cost
        self.dictionary_call_cost = dictionary_call_cost

    # ------------------------------------------------------------------
    # Model selection
    # ------------------------------------------------------------------
    def select_model(self, candidates: List[ModelMetadata],
                     objective: Optional[ModelSelectionObjective] = None
                     ) -> ModelMetadata:
        """Pick the near-optimal model among KGMeta candidates."""
        if not candidates:
            raise ModelNotFoundError(
                "no trained model in KGMeta satisfies the user-defined predicate")
        objective = objective or ModelSelectionObjective()
        feasible = []
        for candidate in candidates:
            if objective.max_inference_seconds is not None and \
                    candidate.inference_seconds > objective.max_inference_seconds:
                continue
            if objective.min_accuracy is not None and \
                    candidate.accuracy < objective.min_accuracy:
                continue
            feasible.append(candidate)
        pool = feasible or candidates
        if not feasible and (objective.max_inference_seconds is not None
                             or objective.min_accuracy is not None):
            # The constraints exclude everything: fall back to the full pool
            # (the paper's "near-optimal" behaviour) rather than failing.
            pool = candidates

        def score(candidate: ModelMetadata) -> float:
            return candidate.accuracy - objective.time_weight * candidate.inference_seconds

        return max(pool, key=lambda c: (score(c), -c.inference_seconds))

    def rank_models(self, candidates: List[ModelMetadata],
                    objective: Optional[ModelSelectionObjective] = None
                    ) -> List[ModelMetadata]:
        """All candidates ordered best-first under the objective."""
        if not candidates:
            return []
        objective = objective or ModelSelectionObjective()
        return sorted(candidates,
                      key=lambda c: (-(c.accuracy - objective.time_weight *
                                       c.inference_seconds), c.inference_seconds))

    # ------------------------------------------------------------------
    # Plan selection
    # ------------------------------------------------------------------
    def choose_plan(self, target_cardinality: int,
                    model_cardinality: int,
                    force_plan: Optional[str] = None) -> PlanChoice:
        """Pick per-instance UDF calls vs. the single-dictionary plan.

        ``target_cardinality`` is the number of distinct bindings of the
        variable the UDF will be applied to (e.g. ``|?paper|``);
        ``model_cardinality`` is the number of predictions the model can
        produce (KGMeta's ``kgnet:modelCardinality``), which bounds the
        dictionary size.
        """
        target_cardinality = max(0, int(target_cardinality))
        model_cardinality = max(0, int(model_cardinality))
        per_instance_cost = target_cardinality * self.http_call_cost
        dictionary_cost = (self.dictionary_call_cost
                           + model_cardinality * self.dictionary_entry_cost)
        alternatives = {"per_instance": per_instance_cost,
                        "dictionary": dictionary_cost}
        if force_plan is not None:
            if force_plan not in alternatives:
                raise ModelSelectionError(f"unknown plan {force_plan!r}")
            plan = force_plan
        else:
            plan = "per_instance" if per_instance_cost <= dictionary_cost else "dictionary"
        return PlanChoice(
            plan=plan,
            estimated_http_calls=target_cardinality if plan == "per_instance" else 1,
            estimated_dictionary_entries=0 if plan == "per_instance" else model_cardinality,
            target_cardinality=target_cardinality,
            model_cardinality=model_cardinality,
            estimated_cost=alternatives[plan],
            alternatives=alternatives,
        )
