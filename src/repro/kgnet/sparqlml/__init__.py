"""SPARQL-ML as a Service: parser, optimizer, rewriter, UDFs and service."""

from repro.kgnet.sparqlml.parser import (
    DeleteModelRequest,
    SPARQLMLParser,
    TrainGMLRequest,
    UserDefinedPredicate,
)
from repro.kgnet.sparqlml.optimizer import (
    ModelSelectionObjective,
    PlanChoice,
    SPARQLMLOptimizer,
)
from repro.kgnet.sparqlml.rewriter import RewrittenQuery, SPARQLMLRewriter
from repro.kgnet.sparqlml.udf import register_udfs
from repro.kgnet.sparqlml.service import (
    DeleteReport,
    SelectReport,
    SPARQLMLService,
    TrainReport,
)
from repro.kgnet.sparqlml.workload import (
    SPARQLMLWorkloadGenerator,
    WorkloadQuery,
    WorkloadReport,
    run_workload,
)

__all__ = [
    "DeleteModelRequest",
    "SPARQLMLParser",
    "TrainGMLRequest",
    "UserDefinedPredicate",
    "ModelSelectionObjective",
    "PlanChoice",
    "SPARQLMLOptimizer",
    "RewrittenQuery",
    "SPARQLMLRewriter",
    "register_udfs",
    "DeleteReport",
    "SelectReport",
    "SPARQLMLService",
    "TrainReport",
    "SPARQLMLWorkloadGenerator",
    "WorkloadQuery",
    "WorkloadReport",
    "run_workload",
]
