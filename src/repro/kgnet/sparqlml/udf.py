"""User-defined functions bridging the RDF engine and GMLaaS.

The paper maps each user-defined predicate to a UDF inside the RDF engine;
at query time the UDF issues an HTTP call to the GML Inference Manager
(Figs 11-12).  :func:`register_udfs` installs the same functions on a
:class:`~repro.sparql.endpoint.SPARQLEndpoint`, backed by an in-process
:class:`~repro.kgnet.gmlaas.service.GMLaaS` instance.  The inference
manager's call counter therefore reflects exactly the number of "HTTP calls"
each execution plan makes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import UDFError
from repro.kgnet.gmlaas.service import GMLaaS
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.endpoint import SPARQLEndpoint
from repro.sparql.functions import OpaqueValue

__all__ = ["register_udfs"]


def _as_string(term) -> str:
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, Term):
        return term.n3()
    return str(term)


def _as_int(term, default: int = 10) -> int:
    try:
        if isinstance(term, Literal):
            return int(float(term.lexical))
        return int(term)
    except (TypeError, ValueError):
        return default


def register_udfs(endpoint: SPARQLEndpoint, gmlaas: GMLaaS) -> None:
    """Register the SPARQL-ML UDF suite on ``endpoint`` backed by ``gmlaas``."""

    def get_node_class(model, node) -> Optional[object]:
        """``sql:UDFS.getNodeClass(model, node_or_type)``.

        When the second argument is an individual node IRI the function
        returns that node's predicted class (one HTTP call per invocation —
        the Fig 11 plan).  When it is the model's *target node type* (or any
        non-instance IRI), the function returns the full prediction
        dictionary in a single call (the inner sub-select of Fig 12).
        """
        model_uri = _as_string(model)
        node_key = _as_string(node)
        stored = gmlaas.model_store.get(model_uri)
        prediction_map = stored.artifact("prediction_map", {})
        if node_key in prediction_map:
            return gmlaas.infer_node_class(model_uri, node_key)
        # Not an individual target node: treat as a dictionary request.
        return gmlaas.infer_node_class_dictionary(model_uri)

    def get_node_classes(model, nodes) -> Optional[object]:
        """``sql:UDFS.getNodeClasses(model, 'iri1,iri2,...')`` — batched route.

        Classifies a comma-separated list of nodes through the batched
        inference endpoint: one HTTP call for the whole list, returning a
        node -> class dictionary that ``getKeyValue`` can look up per row.
        """
        model_uri = _as_string(model)
        wanted = [part.strip() for part in _as_string(nodes).split(",") if part.strip()]
        records = gmlaas.infer_batch(model_uri, wanted, mode="class")
        return {record["input"]: record["output"] for record in records}

    def get_key_value(dictionary, key) -> Optional[str]:
        """``sql:UDFS.getKeyValue(dict, key)`` — local lookup, no HTTP call."""
        if isinstance(dictionary, OpaqueValue):
            dictionary = dictionary.value
        if not isinstance(dictionary, dict):
            raise UDFError("getKeyValue expects the dictionary produced by getNodeClass")
        return dictionary.get(_as_string(key))

    def get_link_pred(model, source, k=None) -> Optional[str]:
        """``sql:UDFS.getLinkPred(model, source[, k])`` — best predicted link."""
        results = gmlaas.infer_links(_as_string(model), _as_string(source),
                                     k=_as_int(k, default=1))
        if not results:
            return None
        return results[0]["entity"]

    def get_topk_links(model, source, k=None) -> Optional[object]:
        """``sql:UDFS.getTopKLinks(model, source, k)`` — top-k predicted links."""
        results = gmlaas.infer_links(_as_string(model), _as_string(source),
                                     k=_as_int(k, default=10))
        if not results:
            return None
        return ", ".join(result["entity"] for result in results)

    def get_similar_entities(model, entity, k=None) -> Optional[object]:
        """``sql:UDFS.getSimilarEntities(model, entity, k)`` — similar entities."""
        results = gmlaas.infer_similar_entities(_as_string(model), _as_string(entity),
                                                k=_as_int(k, default=10))
        if not results:
            return None
        return ", ".join(result["entity"] for result in results)

    endpoint.register_udf("sql:UDFS.getNodeClass", get_node_class,
                          aliases=["UDFS.getNodeClass", "getNodeClass"])
    endpoint.register_udf("sql:UDFS.getNodeClasses", get_node_classes,
                          aliases=["UDFS.getNodeClasses", "getNodeClasses"])
    endpoint.register_udf("sql:UDFS.getKeyValue", get_key_value,
                          aliases=["UDFS.getKeyValue", "getKeyValue"])
    endpoint.register_udf("sql:UDFS.getLinkPred", get_link_pred,
                          aliases=["UDFS.getLinkPred", "getLinkPred"])
    endpoint.register_udf("sql:UDFS.getTopKLinks", get_topk_links,
                          aliases=["UDFS.getTopKLinks", "getTopKLinks"])
    endpoint.register_udf("sql:UDFS.getSimilarEntities", get_similar_entities,
                          aliases=["UDFS.getSimilarEntities", "getSimilarEntities"])
