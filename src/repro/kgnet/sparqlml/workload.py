"""SPARQL-ML benchmark workload generator.

Paper §III-C calls out the need for benchmarks that evaluate SPARQL-ML query
optimization: query sets that *"vary in the number of user-defined predicates
and [are] associated with variables of different cardinalities"*.  This module
generates such workloads against whatever models are registered in KGMeta:

* :class:`WorkloadQuery` — one generated query plus the ground facts about it
  (which predicates it uses, the target-variable cardinality, an optional
  selectivity filter),
* :class:`SPARQLMLWorkloadGenerator` — builds a workload of N queries over a
  platform, mixing node-classification and link-prediction predicates, single-
  and multi-predicate queries, and different selectivities,
* :func:`run_workload` — executes a workload and reports per-query plan
  choice, HTTP calls and execution time (the numbers an optimizer benchmark
  would compare).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import SPARQLMLError
from repro.gml.tasks import TaskType
from repro.kgnet.kgmeta.governor import ModelMetadata
from repro.rdf.terms import IRI, RDF_TYPE

__all__ = ["WorkloadQuery", "WorkloadReport", "SPARQLMLWorkloadGenerator",
           "run_workload"]


@dataclass
class WorkloadQuery:
    """One generated SPARQL-ML query and its ground-truth characteristics."""

    name: str
    text: str
    num_predicates: int
    task_types: List[str]
    target_cardinality: int
    selectivity: float = 1.0

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_predicates": self.num_predicates,
            "task_types": ",".join(self.task_types),
            "target_cardinality": self.target_cardinality,
            "selectivity": self.selectivity,
        }


@dataclass
class WorkloadReport:
    """Execution summary of one workload query."""

    query: WorkloadQuery
    plan: str
    http_calls: int
    rows: int
    elapsed_seconds: float

    def as_row(self) -> Dict[str, object]:
        row = self.query.describe()
        row.update({
            "plan": self.plan,
            "http_calls": self.http_calls,
            "rows": self.rows,
            "exec_time_s": round(self.elapsed_seconds, 4),
        })
        return row


class SPARQLMLWorkloadGenerator:
    """Generates SPARQL-ML SELECT workloads from the models in KGMeta."""

    def __init__(self, platform, seed: int = 0) -> None:
        self.platform = platform
        self.rng = np.random.default_rng(seed)
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Model discovery
    # ------------------------------------------------------------------
    def _models_by_task(self) -> Dict[str, List[ModelMetadata]]:
        grouped: Dict[str, List[ModelMetadata]] = {}
        for metadata in self.platform.list_models():
            grouped.setdefault(metadata.task_type, []).append(metadata)
        return grouped

    def _cardinality(self, node_type: Optional[IRI]) -> int:
        if node_type is None:
            return 0
        return self.platform.graph.count(None, RDF_TYPE, node_type)

    # ------------------------------------------------------------------
    # Query templates
    # ------------------------------------------------------------------
    @staticmethod
    def _prefixes() -> str:
        return ("prefix dblp: <https://www.dblp.org/>\n"
                "prefix yago: <http://yago-knowledge.org/resource/>\n"
                "prefix kgnet: <https://www.kgnet.com/>\n")

    def _nc_block(self, model: ModelMetadata, index: int,
                  subject_var: str) -> (str, str):
        predicate_var = f"?Classifier{index}"
        object_var = f"?prediction{index}"
        block = (
            f"{subject_var} a {model.target_node_type.n3()}.\n"
            f"{subject_var} {predicate_var} {object_var}.\n"
            f"{predicate_var} a kgnet:NodeClassifier.\n"
            f"{predicate_var} kgnet:TargetNode {model.target_node_type.n3()}.\n"
            f"{predicate_var} kgnet:NodeLabel {model.label_predicate.n3()}.\n")
        return block, object_var

    def _lp_block(self, model: ModelMetadata, index: int,
                  subject_var: str) -> (str, str):
        predicate_var = f"?Predictor{index}"
        object_var = f"?link{index}"
        block = (
            f"{subject_var} a {model.source_node_type.n3()}.\n"
            f"{subject_var} {predicate_var} {object_var}.\n"
            f"{predicate_var} a kgnet:LinkPredictor.\n"
            f"{predicate_var} kgnet:SourceNode {model.source_node_type.n3()}.\n"
            f"{predicate_var} kgnet:DestinationNode {model.destination_node_type.n3()}.\n"
            f"{predicate_var} kgnet:TopK-Links 1.\n")
        return block, object_var

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def single_predicate_query(self, model: ModelMetadata,
                               selectivity: float = 1.0) -> WorkloadQuery:
        """A Fig 2 / Fig 10 style query over one user-defined predicate.

        ``selectivity`` < 1 adds a FILTER that keeps roughly that fraction of
        the target instances, varying the cardinality the optimizer sees.
        """
        index = next(self._counter)
        subject_var = "?target"
        if model.task_type == TaskType.NODE_CLASSIFICATION:
            block, object_var = self._nc_block(model, index, subject_var)
            seed_type = model.target_node_type
        elif model.task_type == TaskType.LINK_PREDICTION:
            block, object_var = self._lp_block(model, index, subject_var)
            seed_type = model.source_node_type
        else:
            raise SPARQLMLError(
                f"cannot generate a workload query for task {model.task_type!r}")
        filter_clause = ""
        if selectivity < 1.0:
            # Filter on the numeric suffix of the IRI: keeps ~selectivity of them.
            modulo = max(1, int(round(1.0 / max(selectivity, 1e-6))))
            filter_clause = (f'FILTER(REGEX(STR({subject_var}), '
                             f'"[0-9]*{modulo - 1}$"))\n')
        text = (self._prefixes() +
                f"select {subject_var} {object_var}\nwhere {{\n"
                + block + filter_clause + "}")
        cardinality = self._cardinality(seed_type)
        return WorkloadQuery(
            name=f"q{index}_{model.task_type}",
            text=text,
            num_predicates=1,
            task_types=[model.task_type],
            target_cardinality=int(cardinality * min(1.0, selectivity)),
            selectivity=selectivity)

    def multi_predicate_query(self, models: Sequence[ModelMetadata]) -> WorkloadQuery:
        """One query using several user-defined predicates (distinct variables)."""
        if not models:
            raise SPARQLMLError("multi-predicate query needs at least one model")
        index = next(self._counter)
        blocks: List[str] = []
        outputs: List[str] = []
        subjects: List[str] = []
        task_types: List[str] = []
        cardinality = 0
        for position, model in enumerate(models):
            subject_var = f"?target{position}"
            if model.task_type == TaskType.NODE_CLASSIFICATION:
                block, object_var = self._nc_block(model, index * 10 + position,
                                                   subject_var)
                cardinality = max(cardinality, self._cardinality(model.target_node_type))
            elif model.task_type == TaskType.LINK_PREDICTION:
                block, object_var = self._lp_block(model, index * 10 + position,
                                                   subject_var)
                cardinality = max(cardinality, self._cardinality(model.source_node_type))
            else:
                continue
            blocks.append(block)
            outputs.append(object_var)
            subjects.append(subject_var)
            task_types.append(model.task_type)
        text = (self._prefixes() +
                "select " + " ".join(subjects + outputs) + "\nwhere {\n"
                + "".join(blocks) + "}")
        return WorkloadQuery(
            name=f"q{index}_multi{len(blocks)}",
            text=text,
            num_predicates=len(blocks),
            task_types=task_types,
            target_cardinality=cardinality)

    def generate(self, num_queries: int = 8,
                 selectivities: Sequence[float] = (1.0, 0.5, 0.1)) -> List[WorkloadQuery]:
        """Build a mixed workload of single- and multi-predicate queries."""
        grouped = self._models_by_task()
        usable = [m for models in grouped.values() for m in models
                  if m.task_type in (TaskType.NODE_CLASSIFICATION,
                                     TaskType.LINK_PREDICTION)]
        if not usable:
            raise SPARQLMLError(
                "no node-classification or link-prediction models registered; "
                "train models before generating a workload")
        queries: List[WorkloadQuery] = []
        while len(queries) < num_queries:
            remaining = num_queries - len(queries)
            # Every third query (when possible) combines two predicates.
            if remaining >= 1 and len(usable) >= 2 and len(queries) % 3 == 2:
                pair = list(self.rng.choice(len(usable), size=2, replace=False))
                queries.append(self.multi_predicate_query([usable[pair[0]],
                                                           usable[pair[1]]]))
                continue
            model = usable[int(self.rng.integers(len(usable)))]
            selectivity = float(selectivities[len(queries) % len(selectivities)])
            queries.append(self.single_predicate_query(model, selectivity=selectivity))
        return queries


def run_workload(platform, queries: Sequence[WorkloadQuery],
                 force_plan: Optional[str] = None) -> List[WorkloadReport]:
    """Execute every workload query and collect plan / HTTP-call statistics."""
    reports: List[WorkloadReport] = []
    for query in queries:
        result = platform.query(query.text, force_plan=force_plan)
        plan = result.plans[-1].plan if result.plans else "none"
        reports.append(WorkloadReport(
            query=query,
            plan=plan,
            http_calls=result.http_calls,
            rows=len(result.results),
            elapsed_seconds=result.elapsed_seconds))
    return reports
