"""SPARQL-ML parsing: user-defined predicates, TrainGML inserts, deletes.

SPARQL-ML keeps plain SPARQL's pattern-matching surface (paper §I): a
*user-defined predicate* is a variable used in the predicate position whose
model class and task description are constrained by additional triple
patterns on ``kgnet:`` properties (Fig 2 lines 8-10, Fig 10 lines 6-9).
``INSERT`` requests wrap a ``kgnet.TrainGML({...})`` call whose JSON object
describes the task and budget (Fig 8); ``DELETE`` requests select the models
to drop by the same kgnet: triple patterns (Fig 9).

This module analyses a parsed query and produces:

* :class:`UserDefinedPredicate` — one per predicate variable,
* :class:`TrainGMLRequest` — for SPARQL-ML INSERT,
* :class:`DeleteModelRequest` — for SPARQL-ML DELETE.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SPARQLMLError
from repro.gml.tasks import TaskSpec, TaskType
from repro.gml.train.budget import TaskBudget
from repro.kgnet.kgmeta import ontology as O
from repro.rdf.namespace import KGNET, NamespaceManager
from repro.rdf.terms import IRI, Literal, Term, Variable, RDF_TYPE
from repro.sparql.ast import BGP, GroupPattern, SelectQuery, TriplePattern
from repro.sparql.parser import SPARQLParser

__all__ = [
    "UserDefinedPredicate",
    "TrainGMLRequest",
    "DeleteModelRequest",
    "SPARQLMLParser",
]


@dataclass
class UserDefinedPredicate:
    """A predicate variable bound to a GML model class in a SPARQL-ML query."""

    variable: Variable
    model_class: IRI
    task_type: str
    #: kgnet: property -> required value (TargetNode, NodeLabel, SourceNode ...).
    constraints: Dict[IRI, Term] = field(default_factory=dict)
    #: The data triple pattern the predicate appears in: (subject, object).
    subject_variable: Optional[Variable] = None
    object_variable: Optional[Variable] = None
    top_k: Optional[int] = None

    def describe(self) -> Dict[str, object]:
        return {
            "variable": self.variable.n3(),
            "model_class": self.model_class.value,
            "task_type": self.task_type,
            "constraints": {p.value: (v.n3() if isinstance(v, Term) else str(v))
                            for p, v in self.constraints.items()},
            "subject_variable": self.subject_variable.n3() if self.subject_variable else None,
            "object_variable": self.object_variable.n3() if self.object_variable else None,
            "top_k": self.top_k,
        }


@dataclass
class TrainGMLRequest:
    """Everything a SPARQL-ML INSERT asks the platform to do."""

    name: str
    task: TaskSpec
    budget: TaskBudget
    method: Optional[str] = None
    hyperparameters: Dict[str, object] = field(default_factory=dict)
    target_graph: Optional[IRI] = None
    raw: Dict[str, object] = field(default_factory=dict)


@dataclass
class DeleteModelRequest:
    """A SPARQL-ML DELETE: drop every model matching the constraints."""

    model_class: IRI
    task_type: str
    constraints: Dict[IRI, Term] = field(default_factory=dict)


class SPARQLMLParser:
    """Front end for SPARQL-ML requests."""

    _TRAIN_RE = re.compile(r"TrainGML\s*\(", re.IGNORECASE)

    def __init__(self, namespaces: Optional[NamespaceManager] = None) -> None:
        self.namespaces = namespaces or NamespaceManager()

    # ------------------------------------------------------------------
    # Request classification
    # ------------------------------------------------------------------
    def classify(self, text: str) -> str:
        """Return one of ``"train"``, ``"delete"``, ``"select"``, ``"sparql"``."""
        stripped = self._strip_comments(text)
        if self._TRAIN_RE.search(stripped):
            return "train"
        lowered = stripped.lower()
        body = re.sub(r"prefix\s+\S+\s+<[^>]*>", "", lowered)
        if re.search(r"\bdelete\b", body) and "kgnet:" in lowered:
            return "delete"
        if re.search(r"\bselect\b", body) and self._mentions_model_class(stripped):
            return "select"
        return "sparql"

    @staticmethod
    def _strip_comments(text: str) -> str:
        return "\n".join(line for line in text.splitlines()
                         if not line.strip().startswith("#"))

    @staticmethod
    def _mentions_model_class(text: str) -> bool:
        return bool(re.search(
            r"kgnet:(NodeClassifier|LinkPredictor|EntitySimilarityModel|NodeClassifer|Classifier)",
            text))

    # ------------------------------------------------------------------
    # SELECT queries with user-defined predicates
    # ------------------------------------------------------------------
    def parse_select(self, text: str) -> Tuple[SelectQuery, List[UserDefinedPredicate]]:
        """Parse a SPARQL-ML SELECT and extract its user-defined predicates."""
        parser = SPARQLParser(text, namespaces=self.namespaces)
        query = parser.parse_query()
        if not isinstance(query, SelectQuery):
            raise SPARQLMLError("SPARQL-ML SELECT expected a SELECT query")
        predicates = self.extract_predicates(query.where)
        return query, predicates

    def extract_predicates(self, where: GroupPattern) -> List[UserDefinedPredicate]:
        triples = where.triple_patterns()
        predicates: Dict[Variable, UserDefinedPredicate] = {}
        # Pass 1: find variables typed as a kgnet model class.
        for pattern in triples:
            if (isinstance(pattern.subject, Variable)
                    and pattern.predicate == RDF_TYPE
                    and isinstance(pattern.object, IRI)):
                task_type = O.task_type_for_classifier(pattern.object)
                if task_type is not None:
                    predicates[pattern.subject] = UserDefinedPredicate(
                        variable=pattern.subject,
                        model_class=pattern.object,
                        task_type=task_type)
        if not predicates:
            return []
        # Pass 2: collect constraints and the data triple the variable appears in.
        for pattern in triples:
            # Constraint triples: ?M kgnet:TargetNode dblp:Publication.
            if isinstance(pattern.subject, Variable) and pattern.subject in predicates:
                udp = predicates[pattern.subject]
                if pattern.predicate == RDF_TYPE:
                    continue
                if isinstance(pattern.predicate, IRI) and pattern.predicate in KGNET:
                    if pattern.predicate == O.TOPK_LINKS and \
                            isinstance(pattern.object, Literal):
                        udp.top_k = int(float(pattern.object.lexical))
                    elif isinstance(pattern.object, (IRI, Literal)):
                        udp.constraints[pattern.predicate] = pattern.object
                continue
            # Data triples: ?paper ?M ?venue.
            if isinstance(pattern.predicate, Variable) and pattern.predicate in predicates:
                udp = predicates[pattern.predicate]
                if isinstance(pattern.subject, Variable):
                    udp.subject_variable = pattern.subject
                if isinstance(pattern.object, Variable):
                    udp.object_variable = pattern.object
        return list(predicates.values())

    # ------------------------------------------------------------------
    # INSERT / TrainGML
    # ------------------------------------------------------------------
    def parse_train(self, text: str) -> TrainGMLRequest:
        """Parse a SPARQL-ML INSERT (Fig 8) into a :class:`TrainGMLRequest`."""
        stripped = self._strip_comments(text)
        match = self._TRAIN_RE.search(stripped)
        if match is None:
            raise SPARQLMLError("INSERT query does not call kgnet.TrainGML")
        payload_text = self._extract_balanced(stripped, match.end() - 1)
        payload = self._parse_loose_json(payload_text)
        target_graph = self._extract_insert_graph(stripped)
        return self.request_from_payload(payload, target_graph=target_graph)

    def request_from_payload(self, payload: Dict[str, object],
                             target_graph: Optional[IRI] = None) -> TrainGMLRequest:
        """Build a :class:`TrainGMLRequest` from an (already parsed) JSON object."""
        flat = {self._normalise_key(k): v for k, v in payload.items()}
        name = str(flat.get("name", "unnamed_task"))
        task_payload = flat.get("gmltask") or flat.get("task") or {}
        if not isinstance(task_payload, dict):
            raise SPARQLMLError("TrainGML payload is missing the GML-Task object")
        task = self._task_from_payload(name, task_payload)
        budget_payload = flat.get("taskbudget") or flat.get("budget") or {}
        budget = TaskBudget.from_json(budget_payload) if isinstance(budget_payload, dict) \
            else TaskBudget()
        task_flat = {self._normalise_key(k): v for k, v in task_payload.items()}
        method = flat.get("gmlmethod") or task_flat.get("gmlmethod")
        hyper = flat.get("hyperparameters") or {}
        return TrainGMLRequest(name=name, task=task, budget=budget,
                               method=str(method).lower() if method else None,
                               hyperparameters=dict(hyper) if isinstance(hyper, dict) else {},
                               target_graph=target_graph, raw=payload)

    def _task_from_payload(self, name: str, payload: Dict[str, object]) -> TaskSpec:
        flat = {self._normalise_key(k): v for k, v in payload.items()}
        task_type_raw = str(flat.get("tasktype", "")).strip()
        task_type = self._task_type_from_string(task_type_raw)
        def iri(key: str) -> Optional[IRI]:
            value = flat.get(key)
            if value is None:
                return None
            return self._resolve_iri(str(value))
        if task_type == TaskType.NODE_CLASSIFICATION:
            return TaskSpec(task_type=task_type, name=name,
                            target_node_type=iri("targetnode"),
                            label_predicate=iri("nodelable") or iri("nodelabel"))
        if task_type == TaskType.LINK_PREDICTION:
            return TaskSpec(task_type=task_type, name=name,
                            source_node_type=iri("sourcenode"),
                            destination_node_type=iri("destinationnode"),
                            target_predicate=iri("targetedge") or iri("targetpredicate")
                            or iri("nodelable") or iri("nodelabel"))
        return TaskSpec(task_type=task_type, name=name,
                        entity_node_type=iri("targetnode") or iri("entitynode"))

    def _task_type_from_string(self, value: str) -> str:
        lowered = value.lower()
        if "classif" in lowered:
            return TaskType.NODE_CLASSIFICATION
        if "link" in lowered:
            return TaskType.LINK_PREDICTION
        if "similar" in lowered or "matching" in lowered:
            return TaskType.ENTITY_SIMILARITY
        raise SPARQLMLError(f"cannot determine task type from {value!r}")

    def _resolve_iri(self, value: str) -> IRI:
        value = value.strip().strip("<>")
        if value.startswith(("http://", "https://", "urn:")):
            return IRI(value)
        if ":" in value:
            try:
                return self.namespaces.expand(value)
            except Exception:
                pass
        return IRI(KGNET.base + value)

    @staticmethod
    def _normalise_key(key: str) -> str:
        return re.sub(r"[^a-z0-9]", "", str(key).lower())

    @staticmethod
    def _extract_balanced(text: str, open_paren_index: int) -> str:
        """Return the contents of the balanced parenthesis starting at index."""
        depth = 0
        for index in range(open_paren_index, len(text)):
            char = text[index]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    return text[open_paren_index + 1:index]
        raise SPARQLMLError("unbalanced parentheses in TrainGML call")

    @classmethod
    def _parse_loose_json(cls, text: str) -> Dict[str, object]:
        """Parse the TrainGML argument, tolerating the paper's loose JSON.

        The paper's Fig 8 uses unquoted keys, single quotes and prefixed names
        as bare values; this normaliser quotes them before handing the text to
        the standard JSON parser.
        """
        text = text.strip()
        if not text:
            raise SPARQLMLError("TrainGML call has an empty argument")
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            pass
        normalised = text
        # 'single quoted' -> "double quoted"
        normalised = re.sub(r"'([^']*)'", r'"\1"', normalised)
        # Quote unquoted keys:   Name: -> "Name":
        normalised = re.sub(r"([{,]\s*)([A-Za-z_][A-Za-z0-9_\- ]*?)\s*:",
                            lambda m: f'{m.group(1)}"{m.group(2).strip()}":', normalised)
        # Quote bare values that are not numbers / objects / already quoted,
        # e.g.  kgnet:NodeClassifier, 50GB, 1h, ModelScore.
        def quote_value(match: "re.Match") -> str:
            token = match.group(1)
            try:
                float(token)
                return match.group(0)  # plain number: leave as-is
            except ValueError:
                return f': "{token}"'
        normalised = re.sub(
            r':\s*(?!["{\[])([A-Za-z0-9][A-Za-z0-9:_\-./]*)',
            quote_value, normalised)
        try:
            return json.loads(normalised)
        except json.JSONDecodeError as exc:
            raise SPARQLMLError(f"cannot parse TrainGML JSON payload: {exc}") from exc

    @staticmethod
    def _extract_insert_graph(text: str) -> Optional[IRI]:
        match = re.search(r"insert\s+into\s*<([^>]*)>", text, re.IGNORECASE)
        if match:
            return IRI(match.group(1))
        return None

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def parse_delete(self, text: str) -> DeleteModelRequest:
        """Parse a SPARQL-ML DELETE (Fig 9) into a :class:`DeleteModelRequest`."""
        parser = SPARQLParser(text, namespaces=self.namespaces)
        updates = parser.parse_update()
        for update in updates:
            where = getattr(update, "where", None)
            if where is None:
                continue
            predicates = self.extract_predicates(where)
            if predicates:
                udp = predicates[0]
                return DeleteModelRequest(model_class=udp.model_class,
                                          task_type=udp.task_type,
                                          constraints=udp.constraints)
        raise SPARQLMLError(
            "DELETE query does not constrain a kgnet model class; nothing to delete")
