"""SPARQL-ML as a Service: the Query Manager (paper Fig 3, left-hand box).

The service receives SPARQL-ML requests and routes them:

* **INSERT** (``kgnet.TrainGML``) — meta-sample a task-specific subgraph,
  run the GMLaaS training pipeline, register the model in KGMeta,
* **DELETE** — remove matching models from GMLaaS and their KGMeta metadata,
* **SELECT** — find candidate models in KGMeta for every user-defined
  predicate, pick the near-optimal model and execution plan, rewrite the
  query to plain SPARQL + UDF calls, and execute it on the endpoint,
* anything else — passed through to the endpoint as plain SPARQL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ModelNotFoundError, SPARQLMLError
from repro.gml.tasks import TaskSpec, TaskType
from repro.gml.train.budget import TaskBudget
from repro.kgnet.gmlaas.service import GMLaaS, TrainResponse
from repro.kgnet.kgmeta import ontology as O
from repro.kgnet.kgmeta.governor import KGMetaGovernor, ModelMetadata
from repro.kgnet.meta_sampler import MetaSampler, MetaSamplingConfig, MetaSamplingReport
from repro.kgnet.sparqlml.optimizer import (
    ModelSelectionObjective,
    PlanChoice,
    SPARQLMLOptimizer,
)
from repro.kgnet.sparqlml.parser import (
    DeleteModelRequest,
    SPARQLMLParser,
    TrainGMLRequest,
    UserDefinedPredicate,
)
from repro.kgnet.sparqlml.rewriter import RewrittenQuery, SPARQLMLRewriter
from repro.kgnet.sparqlml.udf import register_udfs
from repro.rdf.terms import IRI, RDF_TYPE
from repro.sparql.ast import SelectQuery
from repro.sparql.endpoint import SPARQLEndpoint
from repro.sparql.results import ResultSet

__all__ = ["TrainReport", "SelectReport", "DeleteReport", "SPARQLMLService"]


@dataclass
class TrainReport:
    """Outcome of a SPARQL-ML INSERT (TrainGML) request."""

    model_uri: str
    task_name: str
    task_type: str
    method: str
    metrics: Dict[str, float]
    meta_sampling: Dict[str, object]
    training: Dict[str, object]
    within_budget: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "model_uri": self.model_uri,
            "task_name": self.task_name,
            "task_type": self.task_type,
            "method": self.method,
            "metrics": self.metrics,
            "meta_sampling": self.meta_sampling,
            "training": self.training,
            "within_budget": self.within_budget,
        }


@dataclass
class SelectReport:
    """How a SPARQL-ML SELECT was executed."""

    results: ResultSet
    rewritten: List[RewrittenQuery] = field(default_factory=list)
    models: List[ModelMetadata] = field(default_factory=list)
    plans: List[PlanChoice] = field(default_factory=list)
    http_calls: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_results": len(self.results),
            "models": [m.uri.value for m in self.models],
            "plans": [p.as_dict() for p in self.plans],
            "http_calls": self.http_calls,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "rewritten": [r.as_dict() for r in self.rewritten],
        }

    def as_payload(self) -> Dict[str, object]:
        """The JSON projection served by the API: report plus result rows."""
        payload = self.as_dict()
        payload["variables"] = [v.name for v in self.results.variables]
        payload["rows"] = self.results.to_python()
        return payload


@dataclass
class DeleteReport:
    """Outcome of a SPARQL-ML DELETE request."""

    deleted_models: List[str]
    deleted_triples: int

    def as_dict(self) -> Dict[str, object]:
        return {"deleted_models": self.deleted_models,
                "deleted_triples": self.deleted_triples}


class SPARQLMLService:
    """Query Manager + KGMeta Governor + Meta-sampler glued together."""

    def __init__(self, endpoint: SPARQLEndpoint, gmlaas: GMLaaS,
                 governor: Optional[KGMetaGovernor] = None,
                 optimizer: Optional[SPARQLMLOptimizer] = None) -> None:
        self.endpoint = endpoint
        self.gmlaas = gmlaas
        self.governor = governor or KGMetaGovernor(endpoint)
        self.parser = SPARQLMLParser(namespaces=endpoint.namespaces)
        self.optimizer = optimizer or SPARQLMLOptimizer()
        self.rewriter = SPARQLMLRewriter()
        self.meta_sampler = MetaSampler()
        register_udfs(endpoint, gmlaas)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, query_text: str, **kwargs):
        """Classify and execute a SPARQL-ML request."""
        kind = self.parser.classify(query_text)
        if kind == "train":
            return self.execute_train(query_text, **kwargs)
        if kind == "delete":
            return self.execute_delete(query_text)
        if kind == "select":
            return self.execute_select(query_text, **kwargs)
        return self.endpoint.query(query_text)

    # ------------------------------------------------------------------
    # INSERT — training
    # ------------------------------------------------------------------
    def execute_train(self, query_text: str,
                      meta_sampling: Optional[MetaSamplingConfig] = None,
                      use_meta_sampling: bool = True,
                      method: Optional[str] = None) -> TrainReport:
        request = self.parser.parse_train(query_text)
        return self.train_request(request, meta_sampling=meta_sampling,
                                  use_meta_sampling=use_meta_sampling,
                                  method=method)

    def train_request(self, request: TrainGMLRequest,
                      meta_sampling: Optional[MetaSamplingConfig] = None,
                      use_meta_sampling: bool = True,
                      method: Optional[str] = None) -> TrainReport:
        """Run the full training flow for an already-parsed TrainGML request."""
        task = request.task
        graph = self.endpoint.graph
        sampling_report: Dict[str, object] = {"enabled": False}
        training_graph = graph
        if use_meta_sampling:
            config = meta_sampling or MetaSamplingConfig.default_for_task(task.task_type)
            training_graph, report = self.meta_sampler.extract(graph, task, config)
            sampling_report = report.as_dict()
            sampling_report["enabled"] = True

        chosen_method = method or request.method
        model_uri = self.governor.mint_model_uri(task, chosen_method or "auto")
        response: TrainResponse = self.gmlaas.train(
            training_graph, task, model_uri,
            budget=request.budget, method=chosen_method)

        metadata = ModelMetadata(
            uri=model_uri,
            task_type=task.task_type,
            model_class=O.classifier_class_for_task(task.task_type),
            method=response.method,
            accuracy=response.metrics.get("accuracy",
                                          response.metrics.get("hits@10", 0.0)),
            inference_seconds=response.inference_seconds,
            training_seconds=response.elapsed_seconds,
            training_memory_bytes=response.peak_memory_bytes,
            cardinality=int(response.transform.get("num_target_nodes", 0)),
            sampler=response.method,
            meta_sampling=str(sampling_report.get("config", "none")),
            target_node_type=task.target_node_type,
            label_predicate=task.label_predicate,
            source_node_type=task.source_node_type,
            destination_node_type=task.destination_node_type,
            target_predicate=task.target_predicate,
            entity_node_type=task.entity_node_type,
        )
        self.governor.register_model(task, metadata)
        return TrainReport(
            model_uri=model_uri.value,
            task_name=task.name,
            task_type=task.task_type,
            method=response.method,
            metrics=response.metrics,
            meta_sampling=sampling_report,
            training=response.as_dict(),
            within_budget=response.within_budget,
        )

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def execute_delete(self, query_text: str) -> DeleteReport:
        request = self.parser.parse_delete(query_text)
        return self.delete_request(request)

    def delete_request(self, request: DeleteModelRequest) -> DeleteReport:
        matching = self.governor.find_models(request.model_class, request.constraints)
        deleted: List[str] = []
        removed_triples = 0
        for metadata in matching:
            removed_triples += self.governor.delete_model(metadata.uri)
            self.gmlaas.delete_model(metadata.uri)
            deleted.append(metadata.uri.value)
        return DeleteReport(deleted_models=deleted, deleted_triples=removed_triples)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def execute_select(self, query_text: str,
                       objective: Optional[ModelSelectionObjective] = None,
                       force_plan: Optional[str] = None) -> SelectReport:
        query, predicates = self.parser.parse_select(query_text)
        if not predicates:
            # No user-defined predicate: plain SPARQL.
            result = self.endpoint.query(query_text)
            return SelectReport(results=result)

        rewritten_queries: List[RewrittenQuery] = []
        chosen_models: List[ModelMetadata] = []
        plans: List[PlanChoice] = []
        current_query = query
        for predicate in predicates:
            model = self._choose_model(predicate, objective)
            plan = self._choose_plan(current_query, predicate, model, force_plan)
            rewritten = self.rewriter.rewrite(
                current_query, predicate, model.uri, plan,
                target_node_type=model.target_node_type)
            current_query = rewritten.query
            rewritten_queries.append(rewritten)
            chosen_models.append(model)
            plans.append(plan)

        calls_before = self.gmlaas.http_calls
        started = time.perf_counter()
        results = self.endpoint.query(rewritten_queries[-1].text)
        elapsed = time.perf_counter() - started
        http_calls = self.gmlaas.http_calls - calls_before
        if not isinstance(results, ResultSet):
            raise SPARQLMLError("rewritten SPARQL-ML query did not return a result set")
        return SelectReport(results=results, rewritten=rewritten_queries,
                            models=chosen_models, plans=plans,
                            http_calls=http_calls, elapsed_seconds=elapsed)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _choose_model(self, predicate: UserDefinedPredicate,
                      objective: Optional[ModelSelectionObjective]) -> ModelMetadata:
        candidates = self.governor.find_models(predicate.model_class,
                                               predicate.constraints)
        # Only keep models whose artefacts are actually available in GMLaaS.
        candidates = [c for c in candidates if self.gmlaas.has_model(c.uri)]
        if not candidates:
            raise ModelNotFoundError(
                f"no trained model available for predicate {predicate.variable.n3()} "
                f"of class {predicate.model_class.n3()}")
        return self.optimizer.select_model(candidates, objective)

    def _choose_plan(self, query: SelectQuery, predicate: UserDefinedPredicate,
                     model: ModelMetadata, force_plan: Optional[str]) -> PlanChoice:
        target_cardinality = self._estimate_target_cardinality(query, predicate, model)
        model_cardinality = model.cardinality or target_cardinality
        return self.optimizer.choose_plan(target_cardinality, model_cardinality,
                                          force_plan=force_plan)

    def _estimate_target_cardinality(self, query: SelectQuery,
                                     predicate: UserDefinedPredicate,
                                     model: ModelMetadata) -> int:
        """Cardinality of the variable the UDF will be applied to.

        Uses the data KG statistics: the number of instances of the model's
        target node type when known, otherwise the most selective triple
        pattern count involving the subject variable.
        """
        if model.target_node_type is not None:
            count = self.endpoint.graph.count(None, RDF_TYPE, model.target_node_type)
            if count:
                return count
        if model.source_node_type is not None:
            count = self.endpoint.graph.count(None, RDF_TYPE, model.source_node_type)
            if count:
                return count
        subject = predicate.subject_variable
        best = 0
        for pattern in query.where.triple_patterns():
            if subject is not None and pattern.subject == subject and \
                    not isinstance(pattern.object, type(subject)):
                try:
                    count = self.endpoint.graph.count(
                        None,
                        pattern.predicate if not isinstance(pattern.predicate, type(subject)) else None,
                        pattern.object if not isinstance(pattern.object, type(subject)) else None)
                    best = max(best, count)
                except Exception:
                    continue
        return best or len(self.endpoint.graph)
