"""The GML Training Manager: the automated pipeline of paper Fig 6.

Given a (task-specific) RDF subgraph, a task description and a budget, the
manager runs the end-to-end pipeline:

1. **Dataset transformation** — RDF triples to sparse matrices
   (:class:`~repro.gml.transform.RDFGraphTransformer`), with statistics,
   literal/label-edge removal and the train/valid/test split.
2. **Optimal method selection** — cost-estimate every applicable method and
   choose one under the task budget
   (:class:`~repro.kgnet.gmlaas.method_selector.MethodSelector`).
3. **Training** — build the model and the matching trainer (full-batch,
   GraphSAINT/ShaDow mini-batch, KGE or MorsE) and train it, tracking time
   and memory.
4. **Artefact preparation** — produce everything the inference manager needs
   (prediction dictionaries, entity embeddings, similarity collections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.gml.data import GraphData, TriplesData
from repro.gml.kge import ComplEx, DistMult, MorsE, RotatE, TransE
from repro.gml.nn import GAT, GCN, RGCN
from repro.gml.sampling import (
    GraphSAINTNodeSampler,
    ShadowKHopSampler,
)
from repro.gml.tasks import TaskSpec, TaskType
from repro.gml.train import (
    FullBatchNodeClassificationTrainer,
    KGETrainer,
    MorsETrainer,
    SamplingNodeClassificationTrainer,
    TaskBudget,
    TrainingResult,
)
from repro.gml.transform import RDFGraphTransformer, TransformReport
from repro.kgnet.gmlaas.method_selector import MethodSelection, MethodSelector
from repro.rdf.graph import Graph

__all__ = ["TrainingManagerConfig", "TrainingOutcome", "GMLTrainingManager"]


@dataclass
class TrainingManagerConfig:
    """Hyper-parameters of the automated pipeline."""

    feature_dim: int = 32
    hidden_dim: int = 32
    embedding_dim: int = 32
    num_layers: int = 2
    epochs_full_batch: int = 30
    epochs_sampling: int = 15
    epochs_kge: int = 30
    learning_rate: float = 0.02
    batch_size: int = 256
    kge_batch_size: int = 512
    num_negatives: int = 8
    split_strategy: str = "random"
    seed: int = 0
    enforce_budget: bool = False


@dataclass
class TrainingOutcome:
    """Everything the platform learns from one training run."""

    task: TaskSpec
    result: TrainingResult
    selection: MethodSelection
    transform_report: TransformReport
    artifacts: Dict[str, object] = field(default_factory=dict)
    data: object = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "task": self.task.as_dict(),
            "selection": self.selection.as_dict(),
            "transform": self.transform_report.as_dict(),
            "result": self.result.as_dict(),
        }


class GMLTrainingManager:
    """Automates GML training for one task on one (sub)graph."""

    def __init__(self, config: Optional[TrainingManagerConfig] = None,
                 selector: Optional[MethodSelector] = None) -> None:
        self.config = config or TrainingManagerConfig()
        self.selector = selector or MethodSelector()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def train(self, graph: Graph, task: TaskSpec,
              budget: Optional[TaskBudget] = None,
              method: Optional[str] = None,
              candidate_methods: Optional[Sequence[str]] = None) -> TrainingOutcome:
        """Run the full pipeline; returns the training outcome."""
        budget = budget or TaskBudget()
        transformer = RDFGraphTransformer(
            feature_dim=self.config.feature_dim,
            split_strategy=self.config.split_strategy,
            seed=self.config.seed)

        if task.task_type == TaskType.NODE_CLASSIFICATION:
            data, report = transformer.to_node_classification_data(
                graph, task.target_node_type, task.label_predicate)
        elif task.task_type == TaskType.LINK_PREDICTION:
            data, report = transformer.to_link_prediction_data(
                graph, task.target_predicate)
        elif task.task_type == TaskType.ENTITY_SIMILARITY:
            # Entity similarity trains a KGE model over the whole subgraph;
            # there is no held-out edge set, so reuse the LP transformation
            # with the most frequent predicate as a pseudo target.
            data, report = self._entity_similarity_data(transformer, graph)
        else:  # pragma: no cover - TaskSpec already validates
            raise TrainingError(f"unsupported task type {task.task_type!r}")

        if method is not None:
            candidate_methods = [method]
        selection = self.selector.select(
            task.task_type if task.task_type != TaskType.ENTITY_SIMILARITY
            else TaskType.ENTITY_SIMILARITY,
            data, budget=budget, candidate_methods=candidate_methods)

        result = self._run_trainer(selection.method, task, data, budget)
        artifacts = self._build_artifacts(selection.method, task, data, result)
        return TrainingOutcome(task=task, result=result, selection=selection,
                               transform_report=report, artifacts=artifacts,
                               data=data)

    # ------------------------------------------------------------------
    # Trainer construction
    # ------------------------------------------------------------------
    def _run_trainer(self, method: str, task: TaskSpec, data,
                     budget: TaskBudget) -> TrainingResult:
        config = self.config
        if task.task_type == TaskType.NODE_CLASSIFICATION:
            if not isinstance(data, GraphData):
                raise TrainingError("node classification requires GraphData")
            return self._train_node_classifier(method, data, budget)
        if not isinstance(data, TriplesData):
            raise TrainingError("link prediction requires TriplesData")
        return self._train_link_predictor(method, data, budget)

    def _train_node_classifier(self, method: str, data: GraphData,
                               budget: TaskBudget) -> TrainingResult:
        config = self.config
        seed = config.seed
        if method == "gcn":
            model = GCN(data.feature_dim, config.hidden_dim, data.num_classes,
                        num_layers=config.num_layers, seed=seed)
        elif method == "gat":
            model = GAT(data.feature_dim, config.hidden_dim, data.num_classes,
                        num_layers=config.num_layers, seed=seed)
        else:
            model = RGCN(data.feature_dim, config.hidden_dim, data.num_classes,
                         data.num_relations, num_layers=config.num_layers,
                         num_bases=8, seed=seed)

        if method in ("rgcn", "gcn", "gat"):
            trainer = FullBatchNodeClassificationTrainer(
                model, data, epochs=config.epochs_full_batch,
                learning_rate=config.learning_rate, budget=budget,
                enforce_budget=config.enforce_budget, method_name=method)
            return trainer.train()
        if method == "graph_saint":
            sampler = GraphSAINTNodeSampler(
                data, batch_size=min(config.batch_size, max(8, data.num_nodes // 2)),
                num_batches=6, seed=seed)
        elif method == "shadow_saint":
            sampler = ShadowKHopSampler(
                data, batch_size=min(64, max(4, data.labeled_nodes().size // 4)),
                num_batches=4, depth=2, neighbors_per_hop=10, seed=seed)
        else:
            raise TrainingError(f"method {method!r} does not support node classification")
        trainer = SamplingNodeClassificationTrainer(
            model, data, sampler, epochs=config.epochs_sampling,
            learning_rate=config.learning_rate, budget=budget,
            enforce_budget=config.enforce_budget, method_name=method)
        return trainer.train()

    def _train_link_predictor(self, method: str, data: TriplesData,
                              budget: TaskBudget) -> TrainingResult:
        config = self.config
        if method == "morse":
            model = MorsE(data.num_relations, dim=config.embedding_dim,
                          seed=config.seed)
            trainer = MorsETrainer(
                model, data, epochs=max(5, config.epochs_kge // 2),
                triples_per_subkg=min(2000, max(100, data.num_triples // 2)),
                subkgs_per_epoch=3, num_negatives=config.num_negatives,
                budget=budget, enforce_budget=config.enforce_budget,
                method_name=method, seed=config.seed)
            return trainer.train()
        kge_classes = {"transe": TransE, "distmult": DistMult,
                       "complex": ComplEx, "rotate": RotatE}
        if method not in kge_classes:
            raise TrainingError(f"method {method!r} does not support link prediction")
        model = kge_classes[method](data.num_entities, data.num_relations,
                                    dim=config.embedding_dim, seed=config.seed)
        trainer = KGETrainer(
            model, data, epochs=config.epochs_kge,
            batch_size=config.kge_batch_size, num_negatives=config.num_negatives,
            budget=budget, enforce_budget=config.enforce_budget,
            method_name=method, seed=config.seed)
        return trainer.train()

    # ------------------------------------------------------------------
    # Inference artefacts
    # ------------------------------------------------------------------
    def _build_artifacts(self, method: str, task: TaskSpec, data,
                         result: TrainingResult) -> Dict[str, object]:
        if task.task_type == TaskType.NODE_CLASSIFICATION:
            return self._node_classification_artifacts(task, data, result)
        if task.task_type == TaskType.LINK_PREDICTION:
            return self._link_prediction_artifacts(method, data, result)
        return self._entity_similarity_artifacts(method, data, result)

    def _node_classification_artifacts(self, task: TaskSpec, data: GraphData,
                                       result: TrainingResult) -> Dict[str, object]:
        model = result.model
        target_type = task.target_node_type.value if task.target_node_type else None
        if data.node_types is not None and target_type in data.node_type_names:
            type_id = data.node_type_names.index(target_type)
            target_nodes = np.flatnonzero(data.node_types == type_id)
        else:
            target_nodes = data.labeled_nodes()
        predictions = model.predict(data, target_nodes)
        prediction_map = {
            data.node_names[int(node)]: data.class_names[int(label)]
            for node, label in zip(target_nodes, predictions)
            if data.node_names and int(label) < len(data.class_names)
        }
        return {
            "prediction_map": prediction_map,
            "class_names": list(data.class_names),
            "num_predictions": len(prediction_map),
        }

    def _link_prediction_artifacts(self, method: str, data: TriplesData,
                                   result: TrainingResult) -> Dict[str, object]:
        model = result.model
        target_relation = data.target_relation if data.target_relation is not None else 0
        train_triples = data.split("train")
        if isinstance(model, MorsE):
            entity_embeddings = model.materialise_entities(train_triples,
                                                           data.num_entities)
        else:
            entity_embeddings = model.entity_embedding_matrix()
        # Candidate tails: entities observed as objects of the target relation.
        target_mask = data.triples[:, 1] == target_relation
        candidate_tails = np.unique(data.triples[target_mask, 2])
        known: Dict[int, List[int]] = {}
        for head, relation, tail in data.triples[target_mask]:
            known.setdefault(int(head), []).append(int(tail))
        return {
            "entity_names": list(data.entity_names),
            "entity_index": {name: i for i, name in enumerate(data.entity_names)},
            "entity_embeddings": entity_embeddings,
            "target_relation": int(target_relation),
            "candidate_tails": candidate_tails,
            "known_tails": known,
            "relation_names": list(data.relation_names),
        }

    def _entity_similarity_artifacts(self, method: str, data: TriplesData,
                                     result: TrainingResult) -> Dict[str, object]:
        model = result.model
        if isinstance(model, MorsE):
            embeddings = model.materialise_entities(data.split("train"),
                                                    data.num_entities)
        else:
            embeddings = model.entity_embedding_matrix()
        return {
            "entity_names": list(data.entity_names),
            "entity_embeddings": embeddings,
        }

    # ------------------------------------------------------------------
    def _entity_similarity_data(self, transformer: RDFGraphTransformer,
                                graph: Graph) -> Tuple[TriplesData, TransformReport]:
        """Pick the most frequent predicate as the pseudo link-prediction target."""
        from collections import Counter
        from repro.rdf.terms import Literal
        counts = Counter()
        for _, p, o in graph:
            if not isinstance(o, Literal):
                counts[p] += 1
        if not counts:
            raise TrainingError("graph has no structural triples for similarity training")
        target_predicate = counts.most_common(1)[0][0]
        return transformer.to_link_prediction_data(graph, target_predicate)
