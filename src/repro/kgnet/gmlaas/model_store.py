"""Model store: keeps trained models (and their artefacts) addressable by URI.

GMLaaS is "storing the trained models and embeddings related to KGs" (paper
§I).  The store keeps each model in memory and can optionally persist it to
disk as a pickle (the ``model.pkl`` of paper Fig 6) so a later process can
reload it for inference.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ModelNotFoundError
from repro.rdf.terms import IRI

__all__ = ["StoredModel", "ModelStore"]


@dataclass
class StoredModel:
    """A trained model plus everything inference needs."""

    uri: IRI
    task_type: str
    method: str
    model: object
    #: Task-specific inference artefacts, e.g. for node classification the
    #: mapping node IRI -> predicted class IRI; for link prediction the
    #: entity index mapping and embeddings; for similarity the collection name.
    artifacts: Dict[str, object] = field(default_factory=dict)

    def artifact(self, name: str, default=None):
        return self.artifacts.get(name, default)


class ModelStore:
    """URI-keyed registry of :class:`StoredModel` objects."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._models: Dict[str, StoredModel] = {}
        self.directory = directory
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def add(self, stored: StoredModel, persist: bool = False) -> IRI:
        self._models[stored.uri.value] = stored
        if persist and self.directory:
            self.save_to_disk(stored.uri)
        return stored.uri

    def get(self, uri) -> StoredModel:
        key = uri.value if isinstance(uri, IRI) else str(uri)
        stored = self._models.get(key)
        if stored is None:
            stored = self._load_from_disk(key)
        if stored is None:
            raise ModelNotFoundError(f"no stored model with URI {key!r}")
        return stored

    def __contains__(self, uri) -> bool:
        key = uri.value if isinstance(uri, IRI) else str(uri)
        return key in self._models or self._disk_path(key) is not None and \
            os.path.exists(self._disk_path(key))

    def remove(self, uri) -> bool:
        key = uri.value if isinstance(uri, IRI) else str(uri)
        existed = self._models.pop(key, None) is not None
        path = self._disk_path(key)
        if path and os.path.exists(path):
            os.remove(path)
            existed = True
        return existed

    def list_uris(self) -> List[str]:
        return sorted(self._models)

    def __len__(self) -> int:
        return len(self._models)

    # ------------------------------------------------------------------
    # Disk persistence (the "model.pkl" of paper Fig 6)
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[str]:
        if not self.directory:
            return None
        safe = key.replace("/", "_").replace(":", "_")
        return os.path.join(self.directory, f"{safe}.pkl")

    def save_to_disk(self, uri) -> Optional[str]:
        key = uri.value if isinstance(uri, IRI) else str(uri)
        stored = self._models.get(key)
        path = self._disk_path(key)
        if stored is None or path is None:
            return None
        with open(path, "wb") as handle:
            pickle.dump(stored, handle)
        return path

    def _load_from_disk(self, key: str) -> Optional[StoredModel]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            stored = pickle.load(handle)
        self._models[key] = stored
        return stored
