"""GML-as-a-Service: training manager, model/embedding stores, inference."""

from repro.kgnet.gmlaas.embedding_store import (
    EmbeddingStore,
    FlatIndex,
    IVFIndex,
    SearchResult,
)
from repro.kgnet.gmlaas.inference_manager import GMLInferenceManager
from repro.kgnet.gmlaas.method_selector import MethodSelection, MethodSelector
from repro.kgnet.gmlaas.model_store import ModelStore, StoredModel
from repro.kgnet.gmlaas.service import GMLaaS, TrainResponse
from repro.kgnet.gmlaas.training_manager import (
    GMLTrainingManager,
    TrainingManagerConfig,
    TrainingOutcome,
)

__all__ = [
    "EmbeddingStore",
    "FlatIndex",
    "IVFIndex",
    "SearchResult",
    "GMLInferenceManager",
    "MethodSelection",
    "MethodSelector",
    "ModelStore",
    "StoredModel",
    "GMLaaS",
    "TrainResponse",
    "GMLTrainingManager",
    "TrainingManagerConfig",
    "TrainingOutcome",
]
