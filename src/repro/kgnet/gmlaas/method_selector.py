"""Optimal GML method selection under a task budget (paper §IV-A, Fig 6).

Given the transformed task dataset and a :class:`TaskBudget`, the selector
estimates memory and time for every applicable method (via
:class:`~repro.gml.train.estimator.MethodCostEstimator`) and picks the
near-optimal one.  The paper frames this as a small integer-programming
problem; with a handful of candidate methods it is solved exactly by
enumerating the 0/1 choices — the objective and constraints are the same:

* ``Priority = ModelScore``: maximise the expected accuracy prior subject to
  the memory and time budgets,
* ``Priority = Time``: minimise estimated training time subject to the
  memory budget (and any time budget),
* ``Priority = Memory``: minimise estimated memory subject to the time budget.

If no method fits the budget the selector falls back to the cheapest method
so a model can still be produced, and flags the violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ModelSelectionError
from repro.gml.data import GraphData, TriplesData
from repro.gml.tasks import TaskType
from repro.gml.train.budget import TaskBudget
from repro.gml.train.estimator import (
    METHOD_PROFILES,
    CostEstimate,
    MethodCostEstimator,
)

__all__ = ["MethodSelection", "MethodSelector"]


@dataclass
class MethodSelection:
    """The chosen method plus the full candidate ranking (for reporting)."""

    method: str
    estimate: CostEstimate
    within_budget: bool
    objective: str
    candidates: List[CostEstimate] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "within_budget": self.within_budget,
            "objective": self.objective,
            "estimated_memory_bytes": round(self.estimate.memory_bytes),
            "estimated_time_seconds": round(self.estimate.time_seconds, 4),
            "num_candidates": len(self.candidates),
        }


class MethodSelector:
    """Chooses the near-optimal GML method for a task under a budget."""

    def __init__(self, estimator: Optional[MethodCostEstimator] = None) -> None:
        self.estimator = estimator or MethodCostEstimator()

    def applicable_methods(self, task_type: str) -> List[str]:
        return [name for name, profile in METHOD_PROFILES.items()
                if task_type in profile.supported_tasks]

    def select(self, task_type: str, data: Union[GraphData, TriplesData],
               budget: Optional[TaskBudget] = None,
               candidate_methods: Optional[Sequence[str]] = None,
               epochs: Optional[int] = None) -> MethodSelection:
        """Pick a method for ``task_type`` trained on ``data`` under ``budget``."""
        budget = budget or TaskBudget()
        methods = list(candidate_methods) if candidate_methods else \
            self.applicable_methods(task_type)
        if not methods:
            raise ModelSelectionError(f"no GML method supports task {task_type!r}")
        unknown = [m for m in methods if m not in METHOD_PROFILES]
        if unknown:
            raise ModelSelectionError(f"unknown GML methods: {unknown}")

        estimates = [self.estimator.estimate(method, data, epochs=epochs)
                     for method in methods]
        feasible = [estimate for estimate in estimates
                    if budget.allows_memory(estimate.memory_bytes)
                    and budget.allows_time(estimate.time_seconds)]

        objective = budget.priority
        if feasible:
            chosen = self._optimise(feasible, objective)
            within_budget = True
        else:
            # Fall back to the least memory-hungry candidate; the training
            # manager will still enforce the budget at run time.
            chosen = min(estimates, key=lambda e: (e.memory_bytes, e.time_seconds))
            within_budget = False
        return MethodSelection(method=chosen.method, estimate=chosen,
                               within_budget=within_budget, objective=objective,
                               candidates=sorted(estimates,
                                                 key=lambda e: -e.accuracy_prior))

    @staticmethod
    def _optimise(candidates: List[CostEstimate], objective: str) -> CostEstimate:
        """Exact solution of the one-of-N selection problem."""
        if objective == "Time":
            return min(candidates, key=lambda e: (e.time_seconds, -e.accuracy_prior))
        if objective == "Memory":
            return min(candidates, key=lambda e: (e.memory_bytes, -e.accuracy_prior))
        # ModelScore: maximise prior accuracy, break ties by time then memory.
        return max(candidates,
                   key=lambda e: (e.accuracy_prior, -e.time_seconds, -e.memory_bytes))
