"""GML-as-a-Service facade (paper Fig 3, right-hand box).

The :class:`GMLaaS` object bundles the training manager, the model store, the
embedding store and the inference manager behind a small request/response
API.  The SPARQL-ML layer (and the registered UDFs) talk only to this facade,
mirroring how the paper's RDF engine reaches GMLaaS over HTTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import InferenceError, ModelNotFoundError
from repro.gml.tasks import TaskSpec, TaskType
from repro.gml.train.budget import TaskBudget
from repro.kgnet.gmlaas.embedding_store import EmbeddingStore
from repro.kgnet.gmlaas.inference_manager import GMLInferenceManager
from repro.kgnet.gmlaas.model_store import ModelStore, StoredModel
from repro.kgnet.gmlaas.training_manager import (
    GMLTrainingManager,
    TrainingManagerConfig,
    TrainingOutcome,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI

__all__ = ["TrainResponse", "GMLaaS"]


@dataclass
class TrainResponse:
    """JSON-style response of a ``/train`` request."""

    model_uri: str
    method: str
    task_type: str
    metrics: Dict[str, float]
    elapsed_seconds: float
    peak_memory_bytes: int
    estimated_memory_bytes: int
    inference_seconds: float
    within_budget: bool
    transform: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "model_uri": self.model_uri,
            "method": self.method,
            "task_type": self.task_type,
            "metrics": {k: round(float(v), 6) for k, v in self.metrics.items()},
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "peak_memory_bytes": self.peak_memory_bytes,
            "estimated_memory_bytes": self.estimated_memory_bytes,
            "inference_seconds": round(self.inference_seconds, 6),
            "within_budget": self.within_budget,
            "transform": self.transform,
        }


class GMLaaS:
    """The GML-as-a-service component."""

    def __init__(self, config: Optional[TrainingManagerConfig] = None,
                 model_directory: Optional[str] = None) -> None:
        self.training_manager = GMLTrainingManager(config)
        self.model_store = ModelStore(directory=model_directory)
        self.embedding_store = EmbeddingStore()
        self.inference_manager = GMLInferenceManager(self.model_store,
                                                     self.embedding_store)
        #: Outcomes by model URI, kept for introspection and benchmarks.
        self.outcomes: Dict[str, TrainingOutcome] = {}

    # ------------------------------------------------------------------
    # Training API
    # ------------------------------------------------------------------
    def train(self, graph: Graph, task: TaskSpec, model_uri: IRI,
              budget: Optional[TaskBudget] = None,
              method: Optional[str] = None,
              candidate_methods: Optional[Sequence[str]] = None) -> TrainResponse:
        """Train a model for ``task`` on ``graph`` and store it under ``model_uri``."""
        outcome = self.training_manager.train(
            graph, task, budget=budget, method=method,
            candidate_methods=candidate_methods)
        stored = StoredModel(
            uri=model_uri,
            task_type=task.task_type,
            method=outcome.result.method,
            model=outcome.result.model,
            artifacts=outcome.artifacts,
        )
        self.model_store.add(stored)
        self.outcomes[model_uri.value] = outcome
        usage = outcome.result.usage
        return TrainResponse(
            model_uri=model_uri.value,
            method=outcome.result.method,
            task_type=task.task_type,
            metrics=outcome.result.metrics,
            elapsed_seconds=usage.elapsed_seconds,
            peak_memory_bytes=usage.peak_memory_bytes,
            estimated_memory_bytes=usage.estimated_memory_bytes,
            inference_seconds=outcome.result.inference_seconds,
            within_budget=outcome.selection.within_budget,
            transform=outcome.transform_report.as_dict(),
        )

    # ------------------------------------------------------------------
    # Inference API (each method = one HTTP endpoint)
    # ------------------------------------------------------------------
    def infer_node_class(self, model_uri, node_iri) -> Optional[str]:
        return self.inference_manager.get_node_class(model_uri, node_iri)

    def infer_node_class_dictionary(self, model_uri,
                                    node_iris: Optional[List[str]] = None) -> Dict[str, str]:
        return self.inference_manager.get_node_class_dictionary(model_uri, node_iris)

    def infer_links(self, model_uri, source_iri, k: int = 10) -> List[Dict[str, object]]:
        return self.inference_manager.get_predicted_links(model_uri, source_iri, k=k)

    def infer_similar_entities(self, model_uri, entity_iri,
                               k: int = 10) -> List[Dict[str, object]]:
        return self.inference_manager.get_similar_entities(model_uri, entity_iri, k=k)

    def infer_batch(self, model_uri, inputs: Sequence[str], k: int = 10,
                    mode: Optional[str] = None) -> List[Dict[str, object]]:
        """Run inference for many inputs in a single batched "HTTP call".

        ``mode`` selects the route explicitly (``"class"``, ``"links"`` or
        ``"similar"``); when omitted it follows the stored model's task type.
        Returns one ``{"input": ..., "output": ...}`` record per input, in
        input order — ``output`` is the predicted class (or None) for node
        classification and a ranked candidate list otherwise.
        """
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        stored = self.model_store.get(key)
        if mode is None:
            mode = {TaskType.NODE_CLASSIFICATION: "class",
                    TaskType.LINK_PREDICTION: "links",
                    TaskType.ENTITY_SIMILARITY: "similar"}.get(stored.task_type)
        inputs = [value.value if isinstance(value, IRI) else str(value)
                  for value in inputs]
        if mode == "class":
            predictions = self.inference_manager.get_node_class_dictionary(key, inputs)
            return [{"input": node, "output": predictions.get(node)}
                    for node in inputs]
        if mode == "links":
            by_source = self.inference_manager.get_predicted_links_batch(
                key, inputs, k=k)
            return [{"input": source, "output": by_source.get(source, [])}
                    for source in inputs]
        if mode == "similar":
            by_entity = self.inference_manager.get_similar_entities_batch(
                key, inputs, k=k)
            return [{"input": entity, "output": by_entity.get(entity, [])}
                    for entity in inputs]
        raise InferenceError(
            f"cannot infer batch mode for model {key!r} "
            f"(task_type={stored.task_type!r}, mode={mode!r})")

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    def delete_model(self, model_uri) -> bool:
        """Drop the stored model, its outcome and any indexed embeddings."""
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self.outcomes.pop(key, None)
        if self.embedding_store.has_collection(key):
            self.embedding_store.drop_collection(key)
        return self.model_store.remove(model_uri)

    def has_model(self, model_uri) -> bool:
        try:
            self.model_store.get(model_uri)
            return True
        except ModelNotFoundError:
            return False

    def list_models(self) -> List[str]:
        return self.model_store.list_uris()

    @property
    def http_calls(self) -> int:
        """Total inference HTTP calls served (paper Figs 11-12 cost driver)."""
        return self.inference_manager.http_calls
