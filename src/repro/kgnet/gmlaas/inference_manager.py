"""The GML Inference Manager.

The paper's GMLaaS receives HTTP calls from the RDF engine's UDFs, runs the
requested model and serialises the result back as JSON (§IV-A).  The
:class:`GMLInferenceManager` is that component: every public method counts as
one "HTTP call" (so the query-plan experiments can report call counts), takes
plain strings/URIs in, and returns JSON-serialisable Python structures.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import InferenceError, ModelNotFoundError
from repro.gml.tasks import TaskType
from repro.kgnet.gmlaas.embedding_store import EmbeddingStore
from repro.kgnet.gmlaas.model_store import ModelStore, StoredModel
from repro.rdf.terms import IRI

__all__ = ["GMLInferenceManager"]


class GMLInferenceManager:
    """Serves predictions from stored models (the REST inference endpoint).

    Safe to call from many serving threads: the HTTP-call counters are
    lock-protected (bare ``+=`` would lose updates under contention), and
    the per-model artefact reads are pure lookups into append-only stores.
    """

    def __init__(self, model_store: ModelStore,
                 embedding_store: Optional[EmbeddingStore] = None) -> None:
        self.model_store = model_store
        self.embedding_store = embedding_store or EmbeddingStore()
        #: Number of inference requests served (each equals one HTTP call in
        #: the paper's architecture).
        self.http_calls = 0
        self.calls_by_model: Dict[str, int] = {}
        self._counters_lock = threading.Lock()
        #: Simulated per-call latency of the HTTP hop between the RDF engine
        #: and GMLaaS (seconds).  Zero by default; the concurrent-load
        #: benchmark sets it to model the paper's deployment, where every
        #: inference call is a real network round-trip — it is exactly what
        #: the batched routes and in-flight coalescing amortise away.
        self.call_latency_seconds = 0.0

    # ------------------------------------------------------------------
    def _record_call(self, model_uri: str) -> None:
        with self._counters_lock:
            self.http_calls += 1
            self.calls_by_model[model_uri] = self.calls_by_model.get(model_uri, 0) + 1
        if self.call_latency_seconds > 0.0:
            time.sleep(self.call_latency_seconds)

    def reset_counters(self) -> None:
        with self._counters_lock:
            self.http_calls = 0
            self.calls_by_model.clear()

    def _stored(self, model_uri) -> StoredModel:
        try:
            return self.model_store.get(model_uri)
        except ModelNotFoundError:
            raise
    # ------------------------------------------------------------------
    # Node classification
    # ------------------------------------------------------------------
    def get_node_class(self, model_uri, node_iri) -> Optional[str]:
        """Predicted class of one node (one HTTP call)."""
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self._record_call(key)
        stored = self._stored(model_uri)
        if stored.task_type != TaskType.NODE_CLASSIFICATION:
            raise InferenceError(f"model {key!r} is not a node classifier")
        prediction_map: Dict[str, str] = stored.artifact("prediction_map", {})
        node_key = node_iri.value if isinstance(node_iri, IRI) else str(node_iri)
        return prediction_map.get(node_key)

    def get_node_class_dictionary(self, model_uri,
                                  node_iris: Optional[List[str]] = None) -> Dict[str, str]:
        """Predictions for all (or the requested) target nodes in one HTTP call.

        This is the inner sub-select of the paper's Fig 12 plan: one call
        returns the whole dictionary and the outer query looks values up.
        """
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self._record_call(key)
        stored = self._stored(model_uri)
        if stored.task_type != TaskType.NODE_CLASSIFICATION:
            raise InferenceError(f"model {key!r} is not a node classifier")
        prediction_map: Dict[str, str] = dict(stored.artifact("prediction_map", {}))
        if node_iris is not None:
            wanted = {str(iri) for iri in node_iris}
            prediction_map = {node: cls for node, cls in prediction_map.items()
                              if node in wanted}
        return prediction_map

    # ------------------------------------------------------------------
    # Link prediction
    # ------------------------------------------------------------------
    def get_predicted_links(self, model_uri, source_iri, k: int = 10) -> List[Dict[str, object]]:
        """Top-k predicted destination entities for one source node."""
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self._record_call(key)
        stored = self._stored(model_uri)
        return self._links_for(stored, key, source_iri, k)

    def get_predicted_links_batch(self, model_uri, source_iris,
                                  k: int = 10) -> Dict[str, List[Dict[str, object]]]:
        """Top-k predicted links for many source nodes in *one* HTTP call.

        The batched route amortises the per-call dispatch overhead: the model
        artefacts are fetched once and the whole batch is scored against them.
        """
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self._record_call(key)
        stored = self._stored(model_uri)
        return {str(source): self._links_for(stored, key, source, k)
                for source in source_iris}

    def _links_for(self, stored: StoredModel, key: str, source_iri,
                   k: int) -> List[Dict[str, object]]:
        if stored.task_type != TaskType.LINK_PREDICTION:
            raise InferenceError(f"model {key!r} is not a link predictor")
        entity_index: Dict[str, int] = stored.artifact("entity_index", {})
        embeddings: np.ndarray = stored.artifact("entity_embeddings")
        candidates: np.ndarray = stored.artifact("candidate_tails")
        entity_names: List[str] = stored.artifact("entity_names", [])
        target_relation: int = stored.artifact("target_relation", 0)
        source_key = source_iri.value if isinstance(source_iri, IRI) else str(source_iri)
        source_id = entity_index.get(source_key)
        if source_id is None or embeddings is None or candidates is None:
            return []
        scores = self._score_tails(stored, embeddings, source_id, target_relation,
                                   candidates)
        order = np.argsort(-scores)[:k]
        return [{"entity": entity_names[int(candidates[i])],
                 "score": float(scores[int(i)]),
                 "rank": rank}
                for rank, i in enumerate(order)]

    @staticmethod
    def _score_tails(stored: StoredModel, embeddings: np.ndarray, source_id: int,
                     relation: int, candidates: np.ndarray) -> np.ndarray:
        model = stored.model
        relation_matrix = getattr(model, "relation_embeddings", None)
        if relation_matrix is None:
            raise InferenceError("stored link-prediction model has no relation embeddings")
        relation_vector = relation_matrix.weight.data[relation]
        head = embeddings[source_id]
        tails = embeddings[candidates]
        decoder = getattr(model, "decoder", "distmult")
        if decoder == "transe" or model.__class__.__name__.lower() == "transe":
            margin = getattr(model, "margin", 6.0)
            return margin - np.abs(head[None, :] + relation_vector[None, :] - tails).sum(axis=1)
        return (head * relation_vector) @ tails.T

    # ------------------------------------------------------------------
    # Entity similarity
    # ------------------------------------------------------------------
    def index_embeddings(self, model_uri, collection: Optional[str] = None) -> str:
        """Register a model's entity embeddings in the embedding store."""
        stored = self._stored(model_uri)
        embeddings = stored.artifact("entity_embeddings")
        names = stored.artifact("entity_names", [])
        if embeddings is None or not len(names):
            raise InferenceError("model has no entity embeddings to index")
        collection = collection or (model_uri.value if isinstance(model_uri, IRI)
                                    else str(model_uri))
        self.embedding_store.create_collection(collection, names, embeddings)
        return collection

    def get_similar_entities(self, model_uri, entity_iri, k: int = 10) -> List[Dict[str, object]]:
        """Top-k most similar entities by embedding cosine similarity."""
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self._record_call(key)
        return self._similar_for(model_uri, key, entity_iri, k)

    def get_similar_entities_batch(self, model_uri, entity_iris,
                                   k: int = 10) -> Dict[str, List[Dict[str, object]]]:
        """Similarity search for many entities in *one* HTTP call.

        Per-entity failures (an entity missing from the collection) yield an
        empty result list instead of aborting the batch: under in-flight
        coalescing one client's unknown entity must not fail its batch
        neighbours.  Model-level failures (no embeddings to index) still
        raise for the whole batch, matching the single-entity route.
        """
        key = model_uri.value if isinstance(model_uri, IRI) else str(model_uri)
        self._record_call(key)
        if not self.embedding_store.has_collection(key):
            self.index_embeddings(model_uri, key)
        results: Dict[str, List[Dict[str, object]]] = {}
        for entity in entity_iris:
            try:
                results[str(entity)] = self._similar_for(model_uri, key, entity, k)
            except InferenceError:
                results[str(entity)] = []
        return results

    def _similar_for(self, model_uri, collection: str, entity_iri,
                     k: int) -> List[Dict[str, object]]:
        if not self.embedding_store.has_collection(collection):
            self.index_embeddings(model_uri, collection)
        entity_key = entity_iri.value if isinstance(entity_iri, IRI) else str(entity_iri)
        try:
            results = self.embedding_store.similar_to(collection, entity_key, k=k)
        except Exception as exc:
            raise InferenceError(f"similarity search failed: {exc}") from exc
        return [{"entity": r.key, "score": r.score, "rank": r.rank} for r in results]
