"""Embedding store for entity-similarity search (the FAISS stand-in).

The paper's GMLaaS keeps trained embeddings in a FAISS index "for fast
similarity search by storing, indexing, and searching embeddings" (§IV-A).
This module provides the same API with two interchangeable index types:

* :class:`FlatIndex` — exact brute-force search (FAISS ``IndexFlat``),
* :class:`IVFIndex` — an inverted-file index built on a k-means coarse
  quantiser (FAISS ``IndexIVFFlat``): search probes only the closest
  ``nprobe`` clusters, trading a little recall for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import PlatformError

__all__ = ["SearchResult", "FlatIndex", "IVFIndex", "EmbeddingStore"]


@dataclass
class SearchResult:
    """One nearest-neighbour hit."""

    key: str
    score: float
    rank: int


def _normalise(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class FlatIndex:
    """Exact (brute force) cosine / L2 nearest-neighbour index."""

    def __init__(self, dim: int, metric: str = "cosine") -> None:
        if metric not in ("cosine", "l2"):
            raise PlatformError(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self._vectors = np.zeros((0, dim), dtype=np.float64)

    def __len__(self) -> int:
        return int(self._vectors.shape[0])

    def add(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64).reshape(-1, self.dim)
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)

    def search(self, queries: np.ndarray, k: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        """Return (scores, indices) of the top-k neighbours per query row."""
        queries = np.asarray(queries, dtype=np.float64).reshape(-1, self.dim)
        if len(self) == 0:
            raise PlatformError("search on an empty index")
        if self.metric == "cosine":
            scores = _normalise(queries) @ _normalise(self._vectors).T
        else:
            # Negative squared L2 so that higher is always better.
            diff = queries[:, None, :] - self._vectors[None, :, :]
            scores = -np.square(diff).sum(axis=-1)
        k = min(k, len(self))
        indices = np.argsort(-scores, axis=1)[:, :k]
        top_scores = np.take_along_axis(scores, indices, axis=1)
        return top_scores, indices


class IVFIndex:
    """Inverted-file index: k-means clusters + per-cluster exact search."""

    def __init__(self, dim: int, num_clusters: int = 16, nprobe: int = 2,
                 metric: str = "cosine", seed: int = 0,
                 kmeans_iterations: int = 10) -> None:
        if num_clusters < 1:
            raise PlatformError("num_clusters must be >= 1")
        self.dim = dim
        self.metric = metric
        self.num_clusters = num_clusters
        self.nprobe = max(1, min(nprobe, num_clusters))
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self._vectors = np.zeros((0, dim), dtype=np.float64)
        self._centroids: Optional[np.ndarray] = None
        self._assignments: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self._vectors.shape[0])

    def add(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64).reshape(-1, self.dim)
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)
        self._centroids = None  # re-train lazily on next search

    def _train(self) -> None:
        rng = np.random.default_rng(self.seed)
        data = _normalise(self._vectors) if self.metric == "cosine" else self._vectors
        k = min(self.num_clusters, data.shape[0])
        centroids = data[rng.choice(data.shape[0], size=k, replace=False)]
        for _ in range(self.kmeans_iterations):
            distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1)
            assignments = distances.argmin(axis=1)
            for cluster in range(k):
                members = data[assignments == cluster]
                if members.shape[0]:
                    centroids[cluster] = members.mean(axis=0)
        self._centroids = centroids
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1)
        self._assignments = distances.argmin(axis=1)

    def search(self, queries: np.ndarray, k: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        queries = np.asarray(queries, dtype=np.float64).reshape(-1, self.dim)
        if len(self) == 0:
            raise PlatformError("search on an empty index")
        if self._centroids is None:
            self._train()
        data = _normalise(self._vectors) if self.metric == "cosine" else self._vectors
        query_data = _normalise(queries) if self.metric == "cosine" else queries
        k = min(k, len(self))
        all_scores = np.full((queries.shape[0], k), -np.inf)
        all_indices = np.zeros((queries.shape[0], k), dtype=np.int64)
        for row, query in enumerate(query_data):
            centroid_distance = ((query[None, :] - self._centroids) ** 2).sum(axis=-1)
            probe = np.argsort(centroid_distance)[: self.nprobe]
            candidate_mask = np.isin(self._assignments, probe)
            candidates = np.flatnonzero(candidate_mask)
            if candidates.size == 0:
                candidates = np.arange(len(self))
            if self.metric == "cosine":
                scores = data[candidates] @ query
            else:
                scores = -((data[candidates] - query[None, :]) ** 2).sum(axis=-1)
            take = min(k, candidates.size)
            order = np.argsort(-scores)[:take]
            all_scores[row, :take] = scores[order]
            all_indices[row, :take] = candidates[order]
            if take < k:
                all_indices[row, take:] = candidates[order[-1]] if take else 0
        return all_scores, all_indices


class EmbeddingStore:
    """Named collections of keyed embeddings with top-k search."""

    def __init__(self, metric: str = "cosine", index_type: str = "flat",
                 num_clusters: int = 16, nprobe: int = 2) -> None:
        self.metric = metric
        self.index_type = index_type
        self.num_clusters = num_clusters
        self.nprobe = nprobe
        self._collections: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def _new_index(self, dim: int):
        if self.index_type == "flat":
            return FlatIndex(dim, metric=self.metric)
        if self.index_type == "ivf":
            return IVFIndex(dim, num_clusters=self.num_clusters, nprobe=self.nprobe,
                            metric=self.metric)
        raise PlatformError(f"unknown index type {self.index_type!r}")

    def create_collection(self, name: str, keys: Sequence[str],
                          vectors: np.ndarray) -> None:
        """(Re)create a collection mapping ``keys[i]`` to ``vectors[i]``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] != len(keys):
            raise PlatformError("keys and vectors disagree on the number of rows")
        index = self._new_index(vectors.shape[1])
        index.add(vectors)
        self._collections[name] = {
            "keys": list(keys),
            "key_to_row": {key: row for row, key in enumerate(keys)},
            "vectors": vectors,
            "index": index,
        }

    def drop_collection(self, name: str) -> bool:
        return self._collections.pop(name, None) is not None

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def collection_size(self, name: str) -> int:
        return len(self._collections[name]["keys"]) if name in self._collections else 0

    def collections(self) -> List[str]:
        return sorted(self._collections)

    # ------------------------------------------------------------------
    def search(self, name: str, query: np.ndarray, k: int = 10) -> List[SearchResult]:
        """Top-k neighbours of an explicit query vector."""
        collection = self._collections.get(name)
        if collection is None:
            raise PlatformError(f"unknown embedding collection {name!r}")
        scores, indices = collection["index"].search(np.asarray(query), k=k)
        keys = collection["keys"]
        return [SearchResult(key=keys[int(index)], score=float(score), rank=rank)
                for rank, (score, index) in enumerate(zip(scores[0], indices[0]))]

    def similar_to(self, name: str, key: str, k: int = 10) -> List[SearchResult]:
        """Top-k neighbours of a stored key (the key itself is excluded)."""
        collection = self._collections.get(name)
        if collection is None:
            raise PlatformError(f"unknown embedding collection {name!r}")
        row = collection["key_to_row"].get(key)
        if row is None:
            raise PlatformError(f"key {key!r} not present in collection {name!r}")
        results = self.search(name, collection["vectors"][row], k=k + 1)
        filtered = [r for r in results if r.key != key][:k]
        for rank, result in enumerate(filtered):
            result.rank = rank
        return filtered
