"""The ``kgnet:`` vocabulary used by KGMeta and SPARQL-ML.

These are the classes and properties that appear in the paper's queries and
in the KGMeta graph of Fig 7: model classes per task
(``kgnet:NodeClassifier``, ``kgnet:LinkPredictor``, ``kgnet:EntitySimilarity``),
task description properties (``kgnet:TargetNode``, ``kgnet:NodeLabel``,
``kgnet:SourceNode``, ``kgnet:DestinationNode``), and the per-model metadata
KGNet collects (accuracy, inference time, cardinality, sampler, budget).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.gml.tasks import TaskType
from repro.rdf.namespace import KGNET
from repro.rdf.terms import IRI

__all__ = [
    "NODE_CLASSIFIER",
    "LINK_PREDICTOR",
    "ENTITY_SIMILARITY",
    "GML_MODEL",
    "GML_TASK",
    "TARGET_NODE",
    "NODE_LABEL",
    "SOURCE_NODE",
    "DESTINATION_NODE",
    "ENTITY_NODE",
    "TOPK_LINKS",
    "TOPK_SIMILAR",
    "HAS_GML_TASK",
    "USES_MODEL",
    "MODEL_ACCURACY",
    "MODEL_SCORE",
    "INFERENCE_TIME",
    "TRAINING_TIME",
    "TRAINING_MEMORY",
    "MODEL_CARDINALITY",
    "GML_METHOD",
    "SAMPLER",
    "META_SAMPLING_CONFIG",
    "TASK_BUDGET",
    "TRAINED_ON_GRAPH",
    "EMBEDDING_DIM",
    "MODEL_URI_PREFIX",
    "TASK_URI_PREFIX",
    "classifier_class_for_task",
    "task_type_for_classifier",
]

# -- classes ---------------------------------------------------------------
NODE_CLASSIFIER = KGNET["NodeClassifier"]
LINK_PREDICTOR = KGNET["LinkPredictor"]
ENTITY_SIMILARITY = KGNET["EntitySimilarityModel"]
GML_MODEL = KGNET["GMLModel"]
GML_TASK = KGNET["GMLTask"]

# -- task description properties --------------------------------------------
TARGET_NODE = KGNET["TargetNode"]
NODE_LABEL = KGNET["NodeLabel"]
SOURCE_NODE = KGNET["SourceNode"]
DESTINATION_NODE = KGNET["DestinationNode"]
ENTITY_NODE = KGNET["EntityNode"]
TOPK_LINKS = KGNET["TopK-Links"]
TOPK_SIMILAR = KGNET["TopK-Similar"]

# -- model metadata properties (Fig 7) ---------------------------------------
HAS_GML_TASK = KGNET["HasGMLTask"]
USES_MODEL = KGNET["uses"]
MODEL_ACCURACY = KGNET["modelAccuracy"]
MODEL_SCORE = KGNET["modelScore"]
INFERENCE_TIME = KGNET["inferenceTime"]
TRAINING_TIME = KGNET["trainingTime"]
TRAINING_MEMORY = KGNET["trainingMemory"]
MODEL_CARDINALITY = KGNET["modelCardinality"]
GML_METHOD = KGNET["gmlMethod"]
SAMPLER = KGNET["sampler"]
META_SAMPLING_CONFIG = KGNET["metaSamplingConfig"]
TASK_BUDGET = KGNET["taskBudget"]
TRAINED_ON_GRAPH = KGNET["trainedOnGraph"]
EMBEDDING_DIM = KGNET["embeddingDim"]

MODEL_URI_PREFIX = KGNET.base + "model/"
TASK_URI_PREFIX = KGNET.base + "task/"

_TASK_TO_CLASS: Dict[str, IRI] = {
    TaskType.NODE_CLASSIFICATION: NODE_CLASSIFIER,
    TaskType.LINK_PREDICTION: LINK_PREDICTOR,
    TaskType.ENTITY_SIMILARITY: ENTITY_SIMILARITY,
}

_CLASS_TO_TASK: Dict[str, str] = {iri.value: task for task, iri in _TASK_TO_CLASS.items()}


def classifier_class_for_task(task_type: str) -> IRI:
    """The kgnet: model class for a task type (e.g. NC -> kgnet:NodeClassifier)."""
    try:
        return _TASK_TO_CLASS[task_type]
    except KeyError:
        raise KeyError(f"unknown task type {task_type!r}") from None


def task_type_for_classifier(classifier: IRI) -> Optional[str]:
    """Inverse of :func:`classifier_class_for_task`; None for unknown classes."""
    return _CLASS_TO_TASK.get(classifier.value)
