"""The KGMeta Governor (paper §IV-B.1).

KGMeta is an RDF graph describing every trained GML model — its task, the
nodes/predicates it covers, its accuracy, inference time and cardinality —
stored as a named graph alongside the data KG.  The governor is the only
component that writes to it; the SPARQL-ML optimizer reads it (through plain
SPARQL) to pick a model for a user-defined predicate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.exceptions import KGMetaError
from repro.gml.tasks import TaskSpec, TaskType
from repro.kgnet.kgmeta import ontology as O
from repro.rdf.graph import Graph
from repro.rdf.namespace import KGNET
from repro.rdf.terms import IRI, Literal, Term, RDF_TYPE
from repro.sparql.endpoint import SPARQLEndpoint

__all__ = ["ModelMetadata", "KGMetaGovernor", "KGMETA_GRAPH_IRI"]

#: Named graph holding KGMeta inside the endpoint's dataset.
KGMETA_GRAPH_IRI = IRI(KGNET.base + "KGMeta")

_MODEL_COUNTER = itertools.count(1)


@dataclass
class ModelMetadata:
    """A row of KGMeta describing one trained model."""

    uri: IRI
    task_type: str
    model_class: IRI
    method: str = ""
    accuracy: float = 0.0
    inference_seconds: float = 0.0
    training_seconds: float = 0.0
    training_memory_bytes: int = 0
    cardinality: int = 0
    sampler: str = ""
    meta_sampling: str = ""
    target_node_type: Optional[IRI] = None
    label_predicate: Optional[IRI] = None
    source_node_type: Optional[IRI] = None
    destination_node_type: Optional[IRI] = None
    target_predicate: Optional[IRI] = None
    entity_node_type: Optional[IRI] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        def iri(value: Optional[IRI]) -> Optional[str]:
            return value.value if value is not None else None
        return {
            "uri": self.uri.value,
            "task_type": self.task_type,
            "method": self.method,
            "accuracy": round(self.accuracy, 6),
            "inference_seconds": round(self.inference_seconds, 6),
            "training_seconds": round(self.training_seconds, 6),
            "training_memory_bytes": self.training_memory_bytes,
            "cardinality": self.cardinality,
            "sampler": self.sampler,
            "meta_sampling": self.meta_sampling,
            "target_node_type": iri(self.target_node_type),
            "label_predicate": iri(self.label_predicate),
            "source_node_type": iri(self.source_node_type),
            "destination_node_type": iri(self.destination_node_type),
            "target_predicate": iri(self.target_predicate),
        }


class KGMetaGovernor:
    """Creates, queries and deletes KGMeta entries on a SPARQL endpoint."""

    def __init__(self, endpoint: SPARQLEndpoint,
                 graph_iri: IRI = KGMETA_GRAPH_IRI) -> None:
        self.endpoint = endpoint
        self.graph_iri = graph_iri

    @property
    def graph(self) -> Graph:
        return self.endpoint.named_graph(self.graph_iri)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def mint_model_uri(self, task: TaskSpec, method: str) -> IRI:
        return IRI(f"{O.MODEL_URI_PREFIX}{task.name}/{method}/{next(_MODEL_COUNTER)}")

    def register_model(self, task: TaskSpec, metadata: ModelMetadata) -> IRI:
        """Write one model's metadata into KGMeta (idempotent per URI)."""
        graph = self.graph
        uri = metadata.uri
        model_class = O.classifier_class_for_task(task.task_type)
        graph.add(uri, RDF_TYPE, model_class)
        graph.add(uri, RDF_TYPE, O.GML_MODEL)
        graph.add(uri, O.GML_METHOD, Literal(metadata.method))
        graph.add(uri, O.MODEL_ACCURACY, Literal(float(metadata.accuracy)))
        graph.add(uri, O.MODEL_SCORE, Literal(float(metadata.accuracy)))
        graph.add(uri, O.INFERENCE_TIME, Literal(float(metadata.inference_seconds)))
        graph.add(uri, O.TRAINING_TIME, Literal(float(metadata.training_seconds)))
        graph.add(uri, O.TRAINING_MEMORY, Literal(int(metadata.training_memory_bytes)))
        graph.add(uri, O.MODEL_CARDINALITY, Literal(int(metadata.cardinality)))
        if metadata.sampler:
            graph.add(uri, O.SAMPLER, Literal(metadata.sampler))
        if metadata.meta_sampling:
            graph.add(uri, O.META_SAMPLING_CONFIG, Literal(metadata.meta_sampling))

        # Task-description triples: these are what SPARQL-ML queries match on
        # (paper Fig 2 lines 8-10 and Fig 10 lines 6-9).
        if task.task_type == TaskType.NODE_CLASSIFICATION:
            graph.add(uri, O.TARGET_NODE, task.target_node_type)
            graph.add(uri, O.NODE_LABEL, task.label_predicate)
        elif task.task_type == TaskType.LINK_PREDICTION:
            if task.source_node_type is not None:
                graph.add(uri, O.SOURCE_NODE, task.source_node_type)
            if task.destination_node_type is not None:
                graph.add(uri, O.DESTINATION_NODE, task.destination_node_type)
            graph.add(uri, O.NODE_LABEL, task.target_predicate)
            graph.add(uri, KGNET["TargetEdge"], task.target_predicate)
        elif task.task_type == TaskType.ENTITY_SIMILARITY:
            graph.add(uri, O.ENTITY_NODE, task.entity_node_type)

        # Interlink with the data KG: a task node connects the model to the
        # target node type living in the data graph (Fig 7's HasGMLTask).
        task_uri = IRI(f"{O.TASK_URI_PREFIX}{task.name}")
        graph.add(task_uri, RDF_TYPE, O.GML_TASK)
        graph.add(task_uri, O.USES_MODEL, uri)
        seed = task.seed_node_type
        if seed is not None:
            graph.add(seed, O.HAS_GML_TASK, task_uri)
        return uri

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _literal_float(self, subject: IRI, predicate: IRI, default: float = 0.0) -> float:
        value = self.graph.value(subject=subject, predicate=predicate)
        if isinstance(value, Literal):
            try:
                return float(value.lexical)
            except ValueError:
                return default
        return default

    def _literal_str(self, subject: IRI, predicate: IRI, default: str = "") -> str:
        value = self.graph.value(subject=subject, predicate=predicate)
        return value.lexical if isinstance(value, Literal) else default

    def _iri(self, subject: IRI, predicate: IRI) -> Optional[IRI]:
        value = self.graph.value(subject=subject, predicate=predicate)
        return value if isinstance(value, IRI) else None

    def describe(self, uri: IRI) -> ModelMetadata:
        graph = self.graph
        model_class = None
        task_type = TaskType.NODE_CLASSIFICATION
        for _, _, cls in graph.triples(uri, RDF_TYPE, None):
            if isinstance(cls, IRI):
                mapped = O.task_type_for_classifier(cls)
                if mapped is not None:
                    model_class = cls
                    task_type = mapped
        if model_class is None:
            raise KGMetaError(f"model {uri.n3()} is not registered in KGMeta")
        return ModelMetadata(
            uri=uri,
            task_type=task_type,
            model_class=model_class,
            method=self._literal_str(uri, O.GML_METHOD),
            accuracy=self._literal_float(uri, O.MODEL_ACCURACY),
            inference_seconds=self._literal_float(uri, O.INFERENCE_TIME),
            training_seconds=self._literal_float(uri, O.TRAINING_TIME),
            training_memory_bytes=int(self._literal_float(uri, O.TRAINING_MEMORY)),
            cardinality=int(self._literal_float(uri, O.MODEL_CARDINALITY)),
            sampler=self._literal_str(uri, O.SAMPLER),
            meta_sampling=self._literal_str(uri, O.META_SAMPLING_CONFIG),
            target_node_type=self._iri(uri, O.TARGET_NODE),
            label_predicate=self._iri(uri, O.NODE_LABEL),
            source_node_type=self._iri(uri, O.SOURCE_NODE),
            destination_node_type=self._iri(uri, O.DESTINATION_NODE),
            target_predicate=self._iri(uri, KGNET["TargetEdge"]),
            entity_node_type=self._iri(uri, O.ENTITY_NODE),
        )

    def list_models(self, model_class: Optional[IRI] = None) -> List[ModelMetadata]:
        graph = self.graph
        uris = set()
        if model_class is None:
            for subject in graph.subjects(RDF_TYPE, O.GML_MODEL):
                if isinstance(subject, IRI):
                    uris.add(subject)
        else:
            for subject in graph.subjects(RDF_TYPE, model_class):
                if isinstance(subject, IRI):
                    uris.add(subject)
        return [self.describe(uri) for uri in sorted(uris, key=lambda u: u.value)]

    def find_models(self, model_class: IRI,
                    constraints: Optional[Dict[IRI, Term]] = None) -> List[ModelMetadata]:
        """Models of ``model_class`` whose KGMeta triples match ``constraints``.

        ``constraints`` maps a kgnet: property (e.g. ``kgnet:TargetNode``) to
        the required value, mirroring the triple patterns of a SPARQL-ML
        query's user-defined predicate block.
        """
        constraints = constraints or {}
        candidates = []
        for metadata in self.list_models(model_class):
            graph = self.graph
            matches = True
            for predicate, value in constraints.items():
                if value is None:
                    continue
                found = any(True for _ in graph.triples(metadata.uri, predicate, value))
                if not found:
                    matches = False
                    break
            if matches:
                candidates.append(metadata)
        return candidates

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete_model(self, uri: IRI) -> int:
        """Remove every KGMeta triple about ``uri``; returns triples removed."""
        graph = self.graph
        removed = graph.remove(uri, None, None)
        removed += graph.remove(None, None, uri)
        return removed

    def delete_models(self, model_class: IRI,
                      constraints: Optional[Dict[IRI, Term]] = None) -> List[IRI]:
        """Delete all models matching (class, constraints); returns their URIs."""
        matching = self.find_models(model_class, constraints)
        for metadata in matching:
            self.delete_model(metadata.uri)
        return [m.uri for m in matching]

    def __len__(self) -> int:
        return sum(1 for _ in self.graph.subjects(RDF_TYPE, O.GML_MODEL))
