"""KGMeta: the RDF graph of trained-model metadata and its governor."""

from repro.kgnet.kgmeta import ontology
from repro.kgnet.kgmeta.governor import (
    KGMETA_GRAPH_IRI,
    KGMetaGovernor,
    ModelMetadata,
)

__all__ = ["ontology", "KGMETA_GRAPH_IRI", "KGMetaGovernor", "ModelMetadata"]
