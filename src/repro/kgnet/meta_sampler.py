"""Meta-sampling: extraction of task-specific subgraphs (paper §IV-B.2).

Given a GML task whose targets are nodes of one type (e.g.
``dblp:Publication``), the meta-sampler extracts the subgraph ``KG'`` that is
reachable from the target nodes within ``h`` hops, following edges either in
the outgoing direction only (``d = 1``) or in both directions (``d = 2``).
Label edges for the task are always kept so the transformer can still build
the supervision signal.  The paper reports ``d1h1`` as the best setting for
node classification and ``d2h1`` for link prediction.

The sampler exposes both the procedural extraction (used by the platform) and
the equivalent SPARQL CONSTRUCT text (:meth:`MetaSampler.to_sparql`) since the
paper describes the approach as SPARQL-based: the extraction is exactly the
query shipped to the RDF engine, evaluated here directly against the graph
indexes for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exceptions import MetaSamplingError
from repro.gml.tasks import TaskSpec, TaskType
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Term, RDF_TYPE

__all__ = ["MetaSamplingConfig", "MetaSamplingReport", "MetaSampler"]


@dataclass(frozen=True)
class MetaSamplingConfig:
    """Direction / hop configuration: ``d`` in {1, 2}, ``h`` >= 1."""

    direction: int = 1
    hops: int = 1
    #: Keep literal-valued triples of visited nodes (the transformer drops
    #: them anyway, but keeping them preserves the "KG'" triple counts).
    include_literals: bool = True

    def __post_init__(self) -> None:
        if self.direction not in (1, 2):
            raise MetaSamplingError("direction must be 1 (outgoing) or 2 (bidirectional)")
        if self.hops < 1:
            raise MetaSamplingError("hops must be >= 1")

    @property
    def label(self) -> str:
        """Short label used in the paper: d1h1, d2h1, ..."""
        return f"d{self.direction}h{self.hops}"

    @classmethod
    def from_label(cls, label: str) -> "MetaSamplingConfig":
        label = label.strip().lower()
        if not (len(label) == 4 and label[0] == "d" and label[2] == "h"):
            raise MetaSamplingError(f"cannot parse meta-sampling label {label!r}")
        return cls(direction=int(label[1]), hops=int(label[3]))

    #: Paper defaults per task type (§IV-B.2).
    @classmethod
    def default_for_task(cls, task_type: str) -> "MetaSamplingConfig":
        if task_type == TaskType.LINK_PREDICTION:
            return cls(direction=2, hops=1)
        return cls(direction=1, hops=1)


@dataclass
class MetaSamplingReport:
    """Size statistics of the extracted subgraph versus the full KG."""

    config_label: str = "d1h1"
    num_target_nodes: int = 0
    num_visited_nodes: int = 0
    num_kg_triples: int = 0
    num_subgraph_triples: int = 0
    hops_expanded: int = 0

    @property
    def triple_reduction(self) -> float:
        """Fraction of the KG removed (0.9 = KG' is 10x smaller)."""
        if self.num_kg_triples == 0:
            return 0.0
        return 1.0 - self.num_subgraph_triples / self.num_kg_triples

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_label,
            "num_target_nodes": self.num_target_nodes,
            "num_visited_nodes": self.num_visited_nodes,
            "num_kg_triples": self.num_kg_triples,
            "num_subgraph_triples": self.num_subgraph_triples,
            "triple_reduction": round(self.triple_reduction, 4),
        }


class MetaSampler:
    """Extracts a task-specific subgraph ``KG'`` from a knowledge graph."""

    def __init__(self, config: Optional[MetaSamplingConfig] = None) -> None:
        self.config = config or MetaSamplingConfig()

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def target_nodes(self, graph: Graph, task: TaskSpec) -> List[Term]:
        """The seed nodes for the expansion (nodes of the task's target type)."""
        seed_type = task.seed_node_type
        if seed_type is None:
            raise MetaSamplingError(f"task {task.name!r} has no seed node type")
        targets = list(graph.subjects(RDF_TYPE, seed_type))
        if not targets:
            raise MetaSamplingError(
                f"no nodes of type {seed_type.n3()} found for task {task.name!r}")
        return targets

    def extract(self, graph: Graph, task: TaskSpec,
                config: Optional[MetaSamplingConfig] = None):
        """Return ``(subgraph, report)`` for ``task`` on ``graph``."""
        config = config or self.config
        targets = self.target_nodes(graph, task)
        report = MetaSamplingReport(config_label=config.label,
                                    num_target_nodes=len(targets),
                                    num_kg_triples=len(graph))
        subgraph = Graph(namespaces=graph.namespaces.copy())

        visited: Set[Term] = set(targets)
        frontier: Set[Term] = set(targets)
        for hop in range(config.hops):
            next_frontier: Set[Term] = set()
            # Sorted iteration keeps the extraction order (and therefore the
            # downstream node interning / feature assignment) reproducible
            # across processes regardless of hash randomisation.
            for node in sorted(frontier, key=lambda term: term.sort_key()):
                # Outgoing edges.
                for s, p, o in graph.triples(node, None, None):
                    if isinstance(o, Literal):
                        if config.include_literals:
                            subgraph.add(s, p, o)
                        continue
                    subgraph.add(s, p, o)
                    if o not in visited:
                        next_frontier.add(o)
                # Incoming edges for bidirectional sampling.
                if config.direction == 2:
                    for s, p, o in graph.triples(None, None, node):
                        subgraph.add(s, p, o)
                        if s not in visited:
                            next_frontier.add(s)
            visited |= next_frontier
            frontier = next_frontier
            report.hops_expanded = hop + 1
            if not frontier:
                break

        # Keep rdf:type triples of every visited node so the transformer can
        # still see node types, and keep the task's label/target edges.
        for node in visited:
            for s, p, o in graph.triples(node, RDF_TYPE, None):
                subgraph.add(s, p, o)
        self._keep_task_edges(graph, task, targets, subgraph)

        report.num_visited_nodes = len(visited)
        report.num_subgraph_triples = len(subgraph)
        if len(subgraph) == 0:
            raise MetaSamplingError("meta-sampling produced an empty subgraph")
        return subgraph, report

    def _keep_task_edges(self, graph: Graph, task: TaskSpec, targets: List[Term],
                         subgraph: Graph) -> None:
        """Ensure the supervision edges of the task survive the sampling."""
        if task.task_type == TaskType.NODE_CLASSIFICATION:
            for target in targets:
                for s, p, o in graph.triples(target, task.label_predicate, None):
                    subgraph.add(s, p, o)
        elif task.task_type == TaskType.LINK_PREDICTION:
            for s, p, o in graph.triples(None, task.target_predicate, None):
                subgraph.add(s, p, o)
                for triple in graph.triples(s, RDF_TYPE, None):
                    subgraph.add(triple)
                for triple in graph.triples(o, RDF_TYPE, None):
                    subgraph.add(triple)

    # ------------------------------------------------------------------
    # SPARQL rendering (documentation / endpoint execution)
    # ------------------------------------------------------------------
    def to_sparql(self, task: TaskSpec,
                  config: Optional[MetaSamplingConfig] = None) -> str:
        """The CONSTRUCT query equivalent to :meth:`extract`.

        One ``UNION`` branch per (hop, direction) combination, rooted at the
        task's target node type.
        """
        config = config or self.config
        seed_type = task.seed_node_type
        if seed_type is None:
            raise MetaSamplingError(f"task {task.name!r} has no seed node type")
        branches: List[str] = []
        subject_chain = "?t"
        branches.append(f"  {{ ?t a {seed_type.n3()} . ?t ?p0 ?o0 . }}")
        if config.direction == 2:
            branches.append(f"  {{ ?t a {seed_type.n3()} . ?s0 ?q0 ?t . }}")
        for hop in range(1, config.hops):
            out_chain = " . ".join(
                [f"?t ?p{i} ?o{i}" for i in range(hop)] + [f"?o{hop - 1} ?p{hop} ?o{hop}"])
            branches.append(f"  {{ ?t a {seed_type.n3()} . {out_chain} . }}")
            if config.direction == 2:
                in_chain = " . ".join(
                    [f"?s{i + 1} ?q{i} ?s{i}" if i else f"?s1 ?q0 ?t" for i in range(hop + 1)])
                branches.append(f"  {{ ?t a {seed_type.n3()} . {in_chain} . }}")
        where = "\n  UNION\n".join(branches)
        return ("CONSTRUCT { ?s ?p ?o }\nWHERE {\n"
                f"{where}\n}}  # meta-sampling {config.label} for task {task.name}")
