"""Concurrency primitives for the KGNet serving layer.

KGNet is pitched as a *service*: SPARQL and SPARQL-ML queries arriving from
many clients at once while training jobs and update requests mutate the
hosted graphs.  This package holds the building blocks that make that safe
and fast:

* :class:`AtomicCounter` — lost-update-free statistics counters,
* :class:`WorkerPool` — a bounded thread pool with back-pressure,
* :class:`InflightBatcher` — coalesces concurrent single-item inference
  calls into one batched "HTTP" call,
* :class:`QueryScheduler` — time-sliced fair execution of preemptable
  queries (SaGe-style web preemption),
* :class:`AdmissionController` — sheds load with a typed
  :class:`~repro.exceptions.ServerOverloaded` before it executes.

The snapshot-isolation machinery itself lives with the data structures it
protects (:meth:`repro.rdf.graph.Graph.snapshot`,
:meth:`repro.rdf.dataset.Dataset.snapshot`); this package provides the
generic pieces the serving layer composes on top.
"""

from repro.concurrency.atomic import AtomicCounter
from repro.concurrency.batching import InflightBatcher
from repro.concurrency.pool import WorkerPool
from repro.concurrency.scheduler import AdmissionController, QueryScheduler

__all__ = ["AdmissionController", "AtomicCounter", "InflightBatcher",
           "QueryScheduler", "WorkerPool"]
