"""Time-sliced fair query scheduling and admission control.

Two cooperating pieces sit between the serving layer and the SPARQL
evaluator so hostile queries cannot monopolise the server:

:class:`QueryScheduler`
    Runs queries in *slices* over a dedicated :class:`~repro.concurrency.pool.WorkerPool`.
    A slice pulls rows from the lazy iterator ``SPARQLEndpoint.execute_stream``
    returns until the query's :class:`~repro.sparql.execution.ExecutionContext`
    reports its row/time quantum spent; the task then *re-enqueues itself at
    the back of the FIFO queue* — behind every waiting cheap query — and
    resumes from its live generator on the next slice (the SaGe
    web-preemption model: suspension, not restart).  Nothing is thrown
    through the generator, so all join cursor state survives.  Deadlines and
    cancellation still abort a query mid-slice with a typed
    :class:`~repro.exceptions.QueryInterrupted` subclass.

:class:`AdmissionController`
    Bounds how many requests may be in flight at once.  When the bound (or
    the optional stalled-oldest-request rule) trips, new work is shed
    *before it executes* with :class:`~repro.exceptions.ServerOverloaded`
    (HTTP 503 + ``Retry-After``), so retrying a shed request is always safe.
    Admission, not the scheduler's queue, is the system's load bound: the
    scheduler's pending queue is sized generously because every admitted
    query occupies one queue slot per *slice*.  Should the queue still
    fill (a deployment running the scheduler without admission control),
    enqueues never block — the task is shed with ``ServerOverloaded``
    after a short bounded wait, so lanes cannot deadlock re-enqueuing.

The scheduler is deliberately unaware of HTTP: the serving layer builds the
execution context (deadline from the ``timeout=`` parameter, cancel event
from the client socket) and hands the scheduler a thunk.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import (
    QueryCancelled,
    QueryInterrupted,
    QueryTimeout,
    ServerOverloaded,
)
from repro.concurrency.pool import WorkerPool
from repro.sparql.execution import ExecutionContext, StreamingResult
from repro.sparql.results import ResultSet

__all__ = ["AdmissionController", "QueryScheduler"]


# ---------------------------------------------------------------------------
# GIL switch-interval management.  sys.setswitchinterval is process-global,
# so per-instance save/restore misbehaves with overlapping schedulers (A
# closing first would restore the slow default under a still-running B, and
# B closing later would pin A's saved value forever).  A refcount shares the
# knob instead: the first acquisition saves the pre-scheduler value, the
# last release restores it; with several schedulers alive the most recently
# constructed one's interval wins.
# ---------------------------------------------------------------------------

_switch_lock = threading.Lock()
_switch_refs = 0
_switch_prior: Optional[float] = None


def _switch_interval_acquire(value: float) -> None:
    global _switch_refs, _switch_prior
    with _switch_lock:
        if _switch_refs == 0:
            _switch_prior = sys.getswitchinterval()
        _switch_refs += 1
        sys.setswitchinterval(value)


def _switch_interval_release() -> None:
    global _switch_refs, _switch_prior
    with _switch_lock:
        if _switch_refs <= 0:
            return
        _switch_refs -= 1
        if _switch_refs == 0 and _switch_prior is not None:
            sys.setswitchinterval(_switch_prior)
            _switch_prior = None


class AdmissionController:
    """Sheds load before it executes when the server is at capacity.

    Parameters
    ----------
    max_inflight:
        Concurrent admitted requests allowed; the ``max_inflight + 1``-th
        is shed.
    stall_seconds:
        Optional stalled-server rule: when at least half the slots are
        taken *and* the oldest admitted request has been running longer
        than this, new requests are shed too — capacity exists on paper but
        the server is visibly wedged.  ``None`` disables the rule.
    retry_after:
        The ``Retry-After`` hint (seconds) carried by the
        :class:`~repro.exceptions.ServerOverloaded` errors raised here.
    """

    def __init__(self, max_inflight: int = 16,
                 stall_seconds: Optional[float] = None,
                 retry_after: float = 1.0) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self.stall_seconds = stall_seconds
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._tickets = itertools.count(1)
        self._inflight: Dict[int, float] = {}
        self.admitted = 0
        self.shed = 0
        self.inflight_high_water = 0

    def admit(self) -> int:
        """Claim a slot; returns a ticket for :meth:`release`.

        Raises :class:`~repro.exceptions.ServerOverloaded` when the server
        is full (or stalled) — before the request has done any work.
        """
        now = time.monotonic()
        with self._lock:
            n = len(self._inflight)
            if n >= self.max_inflight:
                self.shed += 1
                raise ServerOverloaded(
                    f"server at capacity ({n} requests in flight); "
                    f"retry after {self.retry_after:g}s",
                    retry_after=self.retry_after)
            if (self.stall_seconds is not None
                    and n >= max(1, self.max_inflight // 2)
                    and now - min(self._inflight.values()) > self.stall_seconds):
                self.shed += 1
                raise ServerOverloaded(
                    f"server stalled (oldest of {n} in-flight requests "
                    f"exceeds {self.stall_seconds:g}s); "
                    f"retry after {self.retry_after:g}s",
                    retry_after=self.retry_after)
            ticket = next(self._tickets)
            self._inflight[ticket] = now
            self.admitted += 1
            if n + 1 > self.inflight_high_water:
                self.inflight_high_water = n + 1
            return ticket

    def release(self, ticket: int) -> None:
        with self._lock:
            self._inflight.pop(ticket, None)

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": len(self._inflight),
                "inflight_high_water": self.inflight_high_water,
                "admitted": self.admitted,
                "requests_shed": self.shed,
                "stall_seconds": self.stall_seconds,
                "retry_after": self.retry_after,
            }

    def __repr__(self) -> str:
        return (f"<AdmissionController {self.inflight}/{self.max_inflight} "
                f"shed={self.shed}>")


class _Task:
    """One scheduled query: its context, cursor state, and completion."""

    __slots__ = ("start", "context", "stream", "buffer", "result", "error",
                 "done", "slices")

    def __init__(self, start: Callable[[], object],
                 context: ExecutionContext) -> None:
        self.start = start
        self.context = context
        self.stream: Optional[StreamingResult] = None
        self.buffer: list = []
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()
        self.slices = 0


class QueryScheduler:
    """Time-sliced fair execution of queries over a worker pool.

    ``run(start, context)`` blocks the *calling* thread (normally an HTTP
    worker that must write the response anyway) while the query's slices
    execute on the scheduler's own lanes.  Fairness comes from FIFO
    re-submission: a query that exhausts its quantum goes to the back of
    the queue, so cheap queries admitted later overtake a long cross
    product instead of waiting behind it.
    """

    def __init__(self, max_workers: int = 4,
                 quantum_rows: Optional[int] = 512,
                 quantum_seconds: Optional[float] = 0.02,
                 max_pending: Optional[int] = None,
                 name: str = "kgnet-sched",
                 gil_switch_interval: Optional[float] = 0.001) -> None:
        # Each admitted query occupies one queue slot per slice; the load
        # bound lives in the AdmissionController, so the queue is sized
        # generously.  A full queue sheds (see _enqueue) — never blocks.
        self._pool = WorkerPool(max_workers,
                                max_pending=max_pending if max_pending is not None else 1024,
                                name=name)
        # Iterator-level slicing cannot fix GIL scheduling: a compute-bound
        # lane holds the interpreter for sys.getswitchinterval() at a time
        # (5ms default), and measured cheap-query p99 under an adversarial
        # cross product is dominated by those handoffs, not slice waits
        # (~20ms at 5ms vs ~7ms at 1ms).  Constructing a scheduler opts the
        # process into serving, so tighten the knob; it is process-global
        # and shared by refcount across schedulers — the pre-scheduler
        # value returns once the last scheduler closes.  Pass None to
        # leave it alone.
        self._owns_switch_interval = gil_switch_interval is not None
        if gil_switch_interval is not None:
            _switch_interval_acquire(gil_switch_interval)
        self.quantum_rows = quantum_rows
        self.quantum_seconds = quantum_seconds
        self._lock = threading.Lock()
        self._closed = False
        self.queries_started = 0
        self.queries_completed = 0
        self.queries_preempted = 0
        self.queries_timed_out = 0
        self.queries_cancelled = 0
        self.queue_high_water = 0

    # ------------------------------------------------------------------
    def context(self, timeout: Optional[float] = None,
                cancel: Optional[threading.Event] = None) -> ExecutionContext:
        """An ExecutionContext pre-configured with this scheduler's quanta."""
        return ExecutionContext(timeout=timeout, cancel=cancel,
                                quantum_work=self.quantum_rows,
                                quantum_seconds=self.quantum_seconds)

    def run(self, start: Callable[[], object],
            context: Optional[ExecutionContext] = None):
        """Execute ``start`` under time-slicing; blocks until completion.

        ``start`` is called on a scheduler lane during the first slice and
        should return either a :class:`~repro.sparql.execution.StreamingResult`
        (sliced lazily, materialised into a
        :class:`~repro.sparql.results.ResultSet` at the end) or any other
        value (returned as-is — ASK/CONSTRUCT/updates finish in their first
        slice under the context's checkpoints).

        Raises whatever the query raised — including the typed
        :class:`~repro.exceptions.QueryInterrupted` family.
        """
        if context is None:
            context = self.context()
        task = _Task(start, context)
        with self._lock:
            self.queries_started += 1
        self._enqueue(task)
        task.done.wait()
        if task.error is not None:
            raise task.error
        return task.result

    # ------------------------------------------------------------------
    #: How long an enqueue may wait on a full pending queue before the
    #: task is shed.  Kept short: the wait holds the pool's shutdown lock.
    ENQUEUE_TIMEOUT = 0.05

    def _enqueue(self, task: _Task) -> None:
        try:
            future = self._pool.try_submit(self._run_slice, task,
                                           timeout=self.ENQUEUE_TIMEOUT)
        except RuntimeError as exc:  # pool shut down
            self._fail(task, QueryCancelled(f"scheduler stopped: {exc}"))
            return
        if future is None:
            # The pending queue stayed full.  Blocking here would hold the
            # pool's shutdown lock with every lane potentially re-enqueuing
            # into the same full queue — a permanent deadlock when the
            # scheduler runs without an AdmissionController bounding
            # in-flight queries below max_pending.  Shed instead: only
            # streaming reads re-enqueue (updates finish in their first
            # slice), so discarding partial progress is always retry-safe.
            self._fail(task, ServerOverloaded(
                f"scheduler queue full ({self._pool.max_pending} pending "
                f"slices); retry later"))
            return
        depth = self._pool._queue.qsize()
        with self._lock:
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    def _run_slice(self, task: _Task) -> None:
        context = task.context
        context.begin_slice()
        try:
            if task.stream is None:
                started = task.start()
                if not isinstance(started, StreamingResult):
                    # Non-streaming work: it already ran to completion
                    # (checkpointed) inside this slice.
                    self._finish(task, started)
                    return
                task.stream = started
            stream = task.stream
            buffer = task.buffer
            solutions = stream.solutions
            while not context.quantum_expired():
                row = next(solutions, _DONE)
                if row is _DONE:
                    stream.finish(len(buffer))
                    self._finish(task, ResultSet(stream.variables, buffer))
                    return
                buffer.append(row)
        except BaseException as exc:  # noqa: BLE001 — delivered to the caller
            self._fail(task, exc)
            return
        # Quantum spent with rows remaining: yield the lane, go to the back
        # of the queue.  The generator keeps its cursor; nothing re-runs.
        task.slices += 1
        with self._lock:
            self.queries_preempted += 1
        self._enqueue(task)

    def _finish(self, task: _Task, result: object) -> None:
        task.result = result
        with self._lock:
            self.queries_completed += 1
        task.done.set()

    def _fail(self, task: _Task, exc: BaseException) -> None:
        task.error = exc
        with self._lock:
            if isinstance(exc, QueryTimeout):
                self.queries_timed_out += 1
            elif isinstance(exc, QueryCancelled):
                self.queries_cancelled += 1
        task.done.set()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_workers": self._pool.max_workers,
                "quantum_rows": self.quantum_rows,
                "quantum_seconds": self.quantum_seconds,
                "queue_depth": self._pool._queue.qsize(),
                "queue_high_water": self.queue_high_water,
                "queries_started": self.queries_started,
                "queries_completed": self.queries_completed,
                "queries_preempted": self.queries_preempted,
                "queries_timed_out": self.queries_timed_out,
                "queries_cancelled": self.queries_cancelled,
            }

    def close(self) -> None:
        """Stop the lanes; queries still queued fail with QueryCancelled."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        cancelled = self._pool.shutdown(wait=False, cancel_pending=True)
        for fn, args, kwargs in cancelled:
            if fn is self._run_slice and args:
                self._fail(args[0], QueryCancelled("scheduler shut down"))
        if self._owns_switch_interval:
            self._owns_switch_interval = False
            _switch_interval_release()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<QueryScheduler workers={self._pool.max_workers} "
                f"started={self.queries_started} "
                f"preempted={self.queries_preempted}>")


#: Sentinel distinguishing "iterator exhausted" from a None row.
_DONE = object()
