"""In-flight request batching (coalescing) for inference calls.

The paper's cost model charges one HTTP round-trip per GMLaaS call, which is
why the dictionary plan (Fig 12) and the ``infer_batch`` route exist.  Under
a *concurrent* serving load there is a third lever: many clients asking the
same model for single predictions at the same time.  :class:`InflightBatcher`
coalesces those — the first arrival for a key becomes the *leader*, waits a
tiny window for followers (or until the batch is full), issues **one** batched
call, and hands every member its own slice of the result.

The pattern is the classic group-commit / request-coalescing used by serving
systems; here it turns N concurrent ``infer`` envelopes into one
``infer_batch`` HTTP call.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, List, Sequence

from repro.concurrency.atomic import AtomicCounter

__all__ = ["InflightBatcher"]


class _PendingBatch:
    """One open batch: the leader executes it, followers wait on ``done``."""

    __slots__ = ("items", "closed", "full", "done", "results", "error")

    def __init__(self) -> None:
        self.items: List[object] = []
        self.closed = False
        #: Set by the follower that fills the batch, releasing the leader early.
        self.full = threading.Event()
        self.done = threading.Event()
        self.results: List[object] = []
        self.error: BaseException = None


class InflightBatcher:
    """Coalesces concurrent single-item calls into one batched call per key.

    Parameters
    ----------
    batch_fn:
        ``batch_fn(key, items) -> results`` where ``results`` aligns with
        ``items`` (one output per input, in order).
    max_batch:
        Close a batch once this many items are waiting.
    max_wait:
        Seconds the leader waits for followers before executing.  This is a
        latency/amortisation trade-off: the leader's own request pays up to
        ``max_wait`` extra latency to save whole round-trips.
    """

    def __init__(self, batch_fn: Callable[[Hashable, Sequence[object]], Sequence[object]],
                 max_batch: int = 64, max_wait: float = 0.002) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.batch_fn = batch_fn
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._lock = threading.Lock()
        self._pending: Dict[Hashable, _PendingBatch] = {}
        #: Batched executions vs items served: ``items - batches`` round-trips
        #: were saved by coalescing.
        self.batches_executed = AtomicCounter()
        self.items_coalesced = AtomicCounter()

    # ------------------------------------------------------------------
    def submit(self, key: Hashable, item: object) -> object:
        """Run ``item`` through the batch for ``key``; returns its result.

        Blocks until the batch executes.  Raises whatever ``batch_fn`` raised
        (every member of a failed batch sees the same exception).
        """
        with self._lock:
            batch = self._pending.get(key)
            leader = batch is None or batch.closed
            if leader:
                batch = _PendingBatch()
                self._pending[key] = batch
            index = len(batch.items)
            batch.items.append(item)
            if len(batch.items) >= self.max_batch:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
                batch.full.set()
        if leader:
            self._run_batch(key, batch)
        else:
            batch.done.wait()
        if batch.error is not None:
            raise batch.error
        return batch.results[index]

    def _run_batch(self, key: Hashable, batch: _PendingBatch) -> None:
        # Give followers a short window to join unless the batch filled first.
        if not batch.full.is_set() and self.max_wait > 0:
            batch.full.wait(self.max_wait)
        with self._lock:
            batch.closed = True
            if self._pending.get(key) is batch:
                del self._pending[key]
        try:
            results = list(self.batch_fn(key, batch.items))
            if len(results) != len(batch.items):
                raise RuntimeError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(batch.items)} items")
            batch.results = results
        except BaseException as exc:  # noqa: BLE001 — re-raised in every waiter
            batch.error = exc
        finally:
            self.batches_executed.increment()
            self.items_coalesced.increment(len(batch.items))
            batch.done.set()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        batches = self.batches_executed.value
        items = self.items_coalesced.value
        return {
            "batches_executed": batches,
            "items_coalesced": items,
            "calls_saved": max(0, items - batches),
        }

    def __repr__(self) -> str:
        return (f"<InflightBatcher max_batch={self.max_batch} "
                f"max_wait={self.max_wait} {self.stats()}>")
