"""A bounded worker pool for the concurrent serving path.

:class:`WorkerPool` is a small fixed-size thread pool with a *bounded* task
queue: ``submit`` blocks once ``max_pending`` tasks are waiting, so a burst
of clients exerts back-pressure instead of growing an unbounded queue (the
failure mode of naive ``Thread``-per-request serving).  Results travel as
:class:`concurrent.futures.Future` objects, and :meth:`map_ordered` preserves
input order — :meth:`APIRouter.serve_concurrent
<repro.kgnet.api.router.APIRouter.serve_concurrent>` relies on that to return
responses aligned with the request list.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["WorkerPool"]

#: Sentinel telling a worker thread to exit.
_STOP = object()


class WorkerPool:
    """Fixed-size thread pool with a bounded task queue.

    Parameters
    ----------
    max_workers:
        Number of worker threads (the concurrency limit).
    max_pending:
        Maximum queued-but-unstarted tasks before ``submit`` blocks;
        defaults to ``4 * max_workers``.
    name:
        Thread-name prefix (useful in stack dumps of stuck servers).
    """

    def __init__(self, max_workers: int = 8, max_pending: Optional[int] = None,
                 name: str = "kgnet-worker") -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.max_pending = max_pending if max_pending is not None else 4 * max_workers
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=self.max_pending)
        self._shutdown = False
        self._shutdown_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{index}", daemon=True)
            for index in range(max_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            future, fn, args, kwargs = item
            if future.set_running_or_notify_cancel():
                try:
                    future.set_result(fn(*args, **kwargs))
                except BaseException as exc:  # noqa: BLE001 — delivered via the future
                    future.set_exception(exc)
            self._queue.task_done()

    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> "Future":
        """Schedule ``fn(*args, **kwargs)``; blocks when the queue is full.

        The enqueue happens under the shutdown lock: otherwise a task could
        slip in *behind* the ``_STOP`` sentinels a concurrent ``shutdown``
        enqueued, leaving a future no worker will ever complete.  Shutdown
        therefore waits for any in-flight submit; back-pressure still works
        because the workers keep draining while a submitter blocks here.
        """
        with self._shutdown_lock:
            if self._shutdown:
                raise RuntimeError("cannot submit to a shut-down WorkerPool")
            future: Future = Future()
            self._queue.put((future, fn, args, kwargs))
        return future

    def try_submit(self, fn: Callable, *args,
                   timeout: float = 0.0, **kwargs) -> Optional["Future"]:
        """Like :meth:`submit`, but give up after ``timeout`` seconds.

        Returns None when the pending queue stayed full for the whole wait —
        the caller keeps control instead of blocking indefinitely (the HTTP
        accept loop needs this: a saturated pool must not wedge the loop
        past the server's shutdown request).  Note the bounded wait happens
        under the shutdown lock, so a concurrent ``shutdown()`` can stall up
        to ``timeout`` — keep timeouts short.
        """
        with self._shutdown_lock:
            if self._shutdown:
                raise RuntimeError("cannot submit to a shut-down WorkerPool")
            future: Future = Future()
            try:
                self._queue.put((future, fn, args, kwargs), timeout=timeout)
            except queue.Full:
                return None
        return future

    def map_ordered(self, fn: Callable, items: Sequence) -> List[object]:
        """Apply ``fn`` to every item concurrently; results in input order.

        Exceptions propagate: the first failing item re-raises after all
        tasks have been scheduled (submission itself never loses tasks).
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> List[Tuple]:
        """Stop the pool; returns the cancelled ``(fn, args, kwargs)`` tasks.

        ``cancel_pending=True`` drains queued-but-unstarted tasks first,
        cancelling their futures.  That matters for two reasons: the tasks
        never run (the caller gets them back to release whatever resources
        — sockets, handles — ride in their arguments), and — crucially —
        the ``_STOP`` sentinels below go into the queue, so on a FULL queue
        a plain shutdown blocks until busy workers drain it.  A server
        stopping under load (workers wedged on slow connections, queue full
        of unserved ones) needs the non-waiting variant to actually not
        wait.

        With ``wait=False`` the sentinel insertion itself is delegated to a
        daemon thread, so the caller never blocks even if the queue cannot
        accept all sentinels immediately.
        """
        cancelled: List[Tuple] = []
        with self._shutdown_lock:
            if self._shutdown:
                return cancelled
            self._shutdown = True
        if cancel_pending:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    future, fn, args, kwargs = item
                    future.cancel()
                    cancelled.append((fn, args, kwargs))
                self._queue.task_done()

        def plant_sentinels() -> None:
            for _ in self._threads:
                self._queue.put(_STOP)

        if wait:
            plant_sentinels()
            for thread in self._threads:
                thread.join()
        else:
            threading.Thread(target=plant_sentinels,
                             name="kgnet-pool-reaper", daemon=True).start()
        return cancelled

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        return (f"<WorkerPool workers={self.max_workers} "
                f"pending={self._queue.qsize()}/{self.max_pending}>")
