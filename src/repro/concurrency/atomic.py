"""Atomic counters for cross-thread statistics.

CPython's GIL makes single bytecodes atomic, but ``x += 1`` is a
read-modify-write sequence (LOAD / ADD / STORE) and two threads interleaving
it lose updates.  Every hot counter in the serving path (endpoint pattern
lookups, route metrics, inference HTTP-call counts) either goes through an
:class:`AtomicCounter` or takes an explicit lock; the contention tests in
``tests/concurrency`` hammer both and fail on any lost update.
"""

from __future__ import annotations

import threading

__all__ = ["AtomicCounter"]


class AtomicCounter:
    """A lock-protected integer counter.

    Read it via :attr:`value` or ``int(counter)``.  Deliberately *not* an
    int look-alike beyond that: defining ``__eq__`` against plain ints
    while hashing by identity would break the eq-implies-equal-hash
    contract the moment a counter landed in a set or dict key.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, initial: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = initial

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` and return the new value."""
        with self._lock:
            self._value += amount
            return self._value

    add = increment

    def reset(self, value: int = 0) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"AtomicCounter({self._value})"
