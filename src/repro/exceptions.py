"""Exception hierarchy for the KGNet reproduction.

Every subsystem raises exceptions derived from :class:`KGNetError` so callers
can catch platform errors without accidentally swallowing programming errors
(``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class KGNetError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# RDF / SPARQL substrate errors
# ---------------------------------------------------------------------------


class RDFError(KGNetError):
    """Base class for errors raised by the RDF store."""


class TermError(RDFError):
    """An RDF term was constructed from invalid input."""


class ParseError(RDFError):
    """Raised when an RDF document or a SPARQL query fails to parse.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based position in the source text, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class SPARQLError(RDFError):
    """Base class for SPARQL processing errors."""


class QueryError(SPARQLError):
    """A syntactically valid query could not be evaluated."""


class UpdateError(SPARQLError):
    """A SPARQL UPDATE request could not be applied."""


class UnsupportedFeatureError(SPARQLError):
    """The query uses a SPARQL feature outside the supported subset."""


class UDFError(SPARQLError):
    """A user-defined function failed or is unknown to the endpoint."""


class QueryInterrupted(SPARQLError):
    """A running query was stopped before it completed.

    Base class of the three cooperative-interruption outcomes the streaming
    evaluator can raise when its :class:`~repro.sparql.execution.ExecutionContext`
    trips a limit.  Carries partial-progress statistics so callers (and the
    wire protocol) can report how far the query got.

    Attributes
    ----------
    elapsed_seconds:
        Wall-clock time the query ran before being stopped.
    work_units:
        Pipeline work performed (join-loop iterations / rows processed).
    rows_emitted:
        Result rows produced before the interruption.
    """

    def __init__(self, message: str, *, elapsed_seconds: float = 0.0,
                 work_units: int = 0, rows_emitted: int = 0) -> None:
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds
        self.work_units = work_units
        self.rows_emitted = rows_emitted


class QueryTimeout(QueryInterrupted):
    """The query ran past its deadline and was aborted."""


class QueryCancelled(QueryInterrupted):
    """The query's cancellation event was set (e.g. the client went away)."""


class QueryPreempted(QueryInterrupted):
    """The query exhausted its work quantum and must yield the worker.

    Raised only for callers that configure a hard work budget on the
    execution context; the scheduler's time-slicing suspends queries
    without raising (their iterator state survives and resumes)."""


# ---------------------------------------------------------------------------
# GML framework errors
# ---------------------------------------------------------------------------


class GMLError(KGNetError):
    """Base class for graph machine learning errors."""


class AutogradError(GMLError):
    """Raised for invalid autograd graph operations."""


class ShapeError(GMLError):
    """Tensor shapes are incompatible for the requested operation."""


class TrainingError(GMLError):
    """Model training failed or was configured inconsistently."""


class BudgetExceededError(TrainingError):
    """A training run exceeded its time or memory budget."""

    def __init__(self, message: str, *, elapsed_seconds: float = 0.0,
                 peak_memory_bytes: int = 0) -> None:
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds
        self.peak_memory_bytes = peak_memory_bytes


class SamplingError(GMLError):
    """A graph sampler received an invalid configuration."""


class DatasetError(GMLError):
    """A dataset or task definition is malformed."""


# ---------------------------------------------------------------------------
# KGNet platform errors
# ---------------------------------------------------------------------------


class PlatformError(KGNetError):
    """Base class for KGNet platform-level errors."""


class MetaSamplingError(PlatformError):
    """The meta-sampler could not extract a task-specific subgraph."""


class ModelNotFoundError(PlatformError):
    """No trained model satisfies the requested user-defined predicate."""


class ModelSelectionError(PlatformError):
    """The optimizer could not select a GML method or model."""


class InferenceError(PlatformError):
    """The GML inference manager failed to produce predictions."""


class KGMetaError(PlatformError):
    """The KGMeta graph is inconsistent or an update to it failed."""


class SPARQLMLError(PlatformError):
    """A SPARQL-ML query is malformed or cannot be rewritten."""


# ---------------------------------------------------------------------------
# Service API errors
# ---------------------------------------------------------------------------


class APIError(KGNetError):
    """Base class for errors raised by the versioned service API."""


class BadRequestError(APIError):
    """An API request envelope is malformed or misses required parameters."""


class UnknownOperationError(APIError):
    """The requested operation is not registered with the API router."""


class CursorError(APIError):
    """A pagination cursor is unknown, expired, or already consumed."""


class ResultStreamCut(APIError):
    """A streamed result body terminated before it was complete.

    The server aborts a chunked response mid-transfer when the query's
    deadline or cancellation fires after the 200 header has gone out: it
    closes the connection *without* the terminal chunk, so every conforming
    HTTP client can tell the body is incomplete.  :class:`RemoteClient
    <repro.server.client.RemoteClient>` converts that framing violation into
    this typed error instead of retrying (the partial transfer proves the
    query executed — re-running it is not known to be safe).

    Attributes
    ----------
    partial_body:
        The bytes received before the stream was cut.  Line-oriented result
        formats (CSV/TSV) can salvage complete rows from it via
        :func:`repro.sparql.results.parse.parse_select_bindings` with
        ``partial=True``; JSON/XML salvage complete binding objects.
    media_type:
        The ``Content-Type`` the response declared, when known.
    """

    def __init__(self, message: str, *, partial_body: bytes = b"",
                 media_type: str = "") -> None:
        super().__init__(message)
        self.partial_body = partial_body
        self.media_type = media_type


class ServerOverloaded(APIError):
    """The server shed the request because it is at capacity.

    The request was *never executed* (admission control refused it before
    dispatch), so retrying it — after the ``retry_after`` hint — is always
    safe, even for updates.  Maps to HTTP 503 + ``Retry-After``.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


# ---------------------------------------------------------------------------
# Durable storage errors
# ---------------------------------------------------------------------------


class StorageError(KGNetError):
    """Base class for errors raised by the durable storage engine."""


class CorruptCheckpointError(StorageError):
    """A checkpoint file is unreadable: bad magic, length, or CRC."""


class WalTruncatedError(StorageError):
    """The requested WAL range was compacted away by segment retention.

    A follower asking for "commits after seq S" gets this when S predates
    the oldest retained segment; the only way forward is a snapshot
    bootstrap from the latest checkpoint.
    """


# ---------------------------------------------------------------------------
# Replication errors
# ---------------------------------------------------------------------------


class ReplicationError(KGNetError):
    """Base class for errors in the log-shipping replication layer."""


class ReadOnlyReplicaError(ReplicationError):
    """A write operation reached a read-only replica instead of the primary."""
