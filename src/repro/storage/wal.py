"""The write-ahead log: per-epoch redo records with fsync-on-commit.

The WAL is the durable half of the snapshot-isolation design from the
concurrency layer: writers already serialise on the dataset-shared write
lock and readers key on the epoch bump at lock release — so the release of
the *outermost* lock hold is the natural commit point, and that is exactly
where the log forces its records to disk.  :class:`WriteAheadLog` implements
the journal protocol the RDF layer calls into
(``log_add`` / ``log_remove`` / ``log_clear`` / ``log_create`` /
``log_drop`` / ``commit``):

* every mutation appends one CRC-framed record to an in-memory buffer
  (ids are decoded to full terms through the shared
  :class:`~repro.rdf.dictionary.TermDictionary`, so replay does not depend
  on the dictionary's id assignment surviving the crash),
* ``commit()`` — called by the journalled lock while the writer still holds
  it — stamps the transaction with a monotonically increasing sequence
  number, writes buffer + commit record in one ``write()``, flushes, and
  ``fsync``\\ s.  A transaction is durable if and only if its commit record
  is fully on disk,
* :class:`WalReplay` / :func:`iter_transactions` replay the log: they yield
  each *committed* transaction in order — reading the file incrementally,
  so recovery memory is bounded by the largest transaction, not the log
  size — and stop at the first truncated or corrupt frame.  Records after
  the last intact commit marker — a torn write, a half-flushed transaction,
  garbage from a dying disk — are dropped wholesale, never partially
  applied.  After the scan, recovery truncates the log back to the
  committed prefix (:func:`truncate_torn_tail`) so the reopened WAL never
  appends new commits *behind* leftover garbage, where the next recovery
  scan could not see them.
"""

from __future__ import annotations

import os
import threading
import zlib
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.exceptions import StorageError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Term, Triple
from repro.storage.format import (
    FRAME_HEADER_SIZE,
    decode_string,
    decode_term,
    decode_varint,
    encode_frame,
    encode_string,
    encode_term,
    encode_varint,
    fsync_directory,
    iter_frames,
    iter_frames_file,
)

__all__ = ["WalOp", "WalReplay", "WriteAheadLog", "decode_transaction_ops",
           "iter_transactions", "iter_transaction_bytes",
           "split_transaction_stream", "truncate_torn_tail"]

#: Record kinds (first payload byte).  Append-only.
_OP_ADD = ord("A")
_OP_REMOVE = ord("R")
_OP_CLEAR = ord("C")
_OP_CREATE = ord("G")
_OP_DROP = ord("D")
_OP_COMMIT = ord("T")
#: Envelope kind: the rest of the payload is one zlib-deflated record.
_OP_ZLIB = ord("Z")

#: Records shorter than this are never worth deflating: the zlib header/
#: dictionary overhead eats the gain and the common A/R record for short
#: IRIs sits well under it.  Long literals (document bodies, embeddings
#: serialised as text) are where the ROADMAP's 3-4x disk win lives.
WAL_COMPRESS_MIN_BYTES = 256

_KIND_NAMES = {
    _OP_ADD: "add",
    _OP_REMOVE: "remove",
    _OP_CLEAR: "clear",
    _OP_CREATE: "create",
    _OP_DROP: "drop",
}


class WalOp(NamedTuple):
    """One replayable operation: ``kind`` + target graph + optional triple."""

    kind: str                     # "add" | "remove" | "clear" | "create" | "drop"
    graph: Optional[IRI]          # None = the default graph
    triple: Optional[Triple]      # None for clear/create/drop


def _encode_graph_ref(buffer: bytearray, identifier: Optional[IRI]) -> None:
    if identifier is None:
        buffer.append(0)
    else:
        buffer.append(1)
        encode_string(buffer, identifier.value)


def _decode_graph_ref(data: bytes, offset: int) -> Tuple[Optional[IRI], int]:
    if offset >= len(data):
        raise StorageError("truncated graph reference")
    flag = data[offset]
    offset += 1
    if flag == 0:
        return None, offset
    value, offset = decode_string(data, offset)
    return IRI(value), offset


class WriteAheadLog:
    """Appends redo records for one dataset; one instance per engine.

    Writers are already serialised by the dataset write lock, so the
    internal buffer needs no locking of its own; the ``_lock`` below only
    protects the file handle against a concurrent :meth:`rotate` /
    :meth:`close` from an admin route.
    """

    def __init__(self, path: str, fsync: bool = True,
                 compress: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        #: Deflate record payloads over :data:`WAL_COMPRESS_MIN_BYTES`.
        #: Readers do not care about this flag: compressed records announce
        #: themselves with the ``Z`` kind byte, so logs written with either
        #: setting (or a mix, across restarts) always replay.
        self.compress = compress
        self._dictionary: Optional[TermDictionary] = None
        self._buffer = bytearray()
        self._buffered_ops = 0
        self._handle = None
        self._lock = threading.Lock()
        #: Sequence number of the last committed transaction (monotonic).
        self.last_seq = 0
        #: Sequence number of the first commit in the *current* log file
        #: (None while the file holds no commits).  Rotation archives the
        #: file under a name carrying this range, so a replication follower
        #: can ask for "all commits after seq S" by file name alone.
        self.first_seq: Optional[int] = None
        #: Counters surfaced through the engine's stats()/metrics routes.
        self.commits = 0
        self.ops_logged = 0
        self.bytes_written = 0
        self.compressed_records = 0
        #: Payload bytes compression avoided writing (before CRC framing).
        self.bytes_saved = 0
        #: Fail-stop latch: set when a commit failed to reach disk.  Once a
        #: transaction is lost, accepting later commits would produce a log
        #: whose replay was never any committed prefix of the in-memory
        #: history — so the WAL refuses all further work until the operator
        #: recovers (``admin/restore`` / ``StorageEngine.reopen``).
        self.failed = False

    # -- wiring ------------------------------------------------------------
    def attach_dictionary(self, dictionary: TermDictionary) -> None:
        """Bind the dataset's term dictionary (needed to decode logged ids)."""
        self._dictionary = dictionary

    def _ensure_handle(self):
        if self._handle is None:
            existed = os.path.exists(self.path)
            self._handle = open(self.path, "ab")
            if not existed:
                # A freshly created log's directory entry must be durable,
                # or a crash could drop the whole file (and every commit in
                # it) despite per-commit fsyncs of the file contents.
                fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        return self._handle

    # -- journal protocol (called by Graph/Dataset under the write lock) ---
    def _check_usable(self) -> None:
        if self.failed:
            raise StorageError(
                "write-ahead log is fail-stopped after a commit failure; "
                "recover via StorageEngine.reopen() / admin/restore")

    def _append_record(self, payload: bytes) -> None:
        """Frame one record into the transaction buffer, deflating big ones."""
        if self.compress and len(payload) >= WAL_COMPRESS_MIN_BYTES:
            packed = zlib.compress(payload, 1)
            if len(packed) + 1 < len(payload):
                self.compressed_records += 1
                self.bytes_saved += len(payload) - len(packed) - 1
                payload = bytes([_OP_ZLIB]) + packed
        self._buffer += encode_frame(payload)
        self._buffered_ops += 1

    def _log_triple(self, op: int, identifier: Optional[IRI],
                    si: int, pi: int, oi: int) -> None:
        self._check_usable()
        if self._dictionary is None:
            raise StorageError("WAL has no dictionary attached")
        decode = self._dictionary.decode
        payload = bytearray()
        payload.append(op)
        _encode_graph_ref(payload, identifier)
        encode_term(payload, decode(si))
        encode_term(payload, decode(pi))
        encode_term(payload, decode(oi))
        self._append_record(bytes(payload))

    def log_add(self, identifier: Optional[IRI], si: int, pi: int, oi: int) -> None:
        self._log_triple(_OP_ADD, identifier, si, pi, oi)

    def log_remove(self, identifier: Optional[IRI], si: int, pi: int, oi: int) -> None:
        self._log_triple(_OP_REMOVE, identifier, si, pi, oi)

    def _log_graph_op(self, op: int, identifier: Optional[IRI]) -> None:
        self._check_usable()
        payload = bytearray()
        payload.append(op)
        _encode_graph_ref(payload, identifier)
        self._append_record(bytes(payload))

    def log_clear(self, identifier: Optional[IRI]) -> None:
        self._log_graph_op(_OP_CLEAR, identifier)

    def log_create(self, identifier: IRI) -> None:
        self._log_graph_op(_OP_CREATE, identifier)

    def log_drop(self, identifier: IRI) -> None:
        self._log_graph_op(_OP_DROP, identifier)

    @property
    def has_pending(self) -> bool:
        return self._buffered_ops > 0

    def commit(self) -> Optional[int]:
        """Force the buffered transaction to disk; returns its sequence.

        Called by the journalled write lock at the release of the outermost
        hold — i.e. while the committing writer still owns the lock, so
        commit records hit the log in exactly the order their epochs
        committed.  A hold that logged nothing (reads also take the lock)
        is free: no record, no syscall.
        """
        if not self._buffered_ops:
            return None
        self._check_usable()
        seq = self.last_seq + 1
        payload = bytearray()
        payload.append(_OP_COMMIT)
        encode_varint(payload, seq)
        encode_varint(payload, self._buffered_ops)
        frame = self._buffer + encode_frame(bytes(payload))
        ops = self._buffered_ops
        self._buffer = bytearray()
        self._buffered_ops = 0
        with self._lock:
            try:
                handle = self._ensure_handle()
                handle.write(frame)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            except Exception:
                # The transaction may be half on disk and its in-memory
                # mutations are already visible: fail-stop so no later
                # commit can paper over the gap (replaying such a log would
                # yield a state that never existed).
                self.failed = True
                raise
            self.last_seq = seq
            if self.first_seq is None:
                self.first_seq = seq
            self.commits += 1
            self.ops_logged += ops
            self.bytes_written += len(frame)
        return seq

    def discard_pending(self) -> int:
        """Drop buffered, uncommitted records (used when a writer aborts)."""
        dropped = self._buffered_ops
        self._buffer = bytearray()
        self._buffered_ops = 0
        return dropped

    def append_raw_transaction(self, seq: int, raw: bytes) -> None:
        """Append one already-framed committed transaction verbatim.

        Replication followers receive transactions as the exact bytes the
        primary wrote — op frames followed by the commit frame — and must
        persist them BEFORE applying, so a follower crash replays from its
        own log instead of silently losing shipped commits.  The bytes are
        trusted (they were CRC-checked during streaming); the only local
        invariant enforced is sequence monotonicity.
        """
        self._check_usable()
        if seq <= self.last_seq:
            raise StorageError(
                f"raw transaction seq {seq} is not ahead of last applied "
                f"seq {self.last_seq}")
        with self._lock:
            try:
                handle = self._ensure_handle()
                handle.write(raw)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            except Exception:
                self.failed = True
                raise
            self.last_seq = seq
            if self.first_seq is None:
                self.first_seq = seq
            self.commits += 1
            self.bytes_written += len(raw)

    # -- maintenance -------------------------------------------------------
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def rotate(self, archive_to: Optional[str] = None) -> None:
        """Start a fresh log (called right after a successful checkpoint).

        With ``archive_to`` the old log file is atomically renamed there
        instead of truncated, preserving its committed transactions for
        replication followers that still need to fetch them; without it the
        file is simply truncated (the pre-replication behaviour).

        Sequence numbers keep increasing across rotations, so a crash
        between the checkpoint rename and this rotation is harmless:
        recovery skips replayed transactions whose sequence the checkpoint
        already covers.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if archive_to is not None and os.path.exists(self.path):
                os.replace(self.path, archive_to)
            with open(self.path, "wb") as handle:
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            self.first_seq = None
            # rotate() may be the call that CREATES the log (fresh store
            # whose first operation is a checkpoint): its directory entry
            # must be durable, or later fsynced commits could vanish with
            # the file.  _ensure_handle would skip its own directory fsync
            # afterwards because the file already exists.
            if self.fsync:
                fsync_directory(os.path.dirname(os.path.abspath(self.path)))

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:
        return (f"<WriteAheadLog {self.path!r} seq={self.last_seq} "
                f"commits={self.commits}>")


def _decode_record(payload: bytes):
    """Decode one frame payload into a WalOp or a ("commit", seq) marker."""
    if not payload:
        raise StorageError("empty WAL record")
    op = payload[0]
    offset = 1
    if op == _OP_ZLIB:
        # The frame CRC already vouched for the deflated bytes; a failure
        # here is version skew or a CRC collision, and the replay scan
        # escalates it instead of truncating (see WalReplay).
        try:
            inner = zlib.decompress(payload[1:])
        except zlib.error as exc:
            raise StorageError(f"undecompressable WAL record: {exc}")
        return _decode_record(inner)
    if op == _OP_COMMIT:
        seq, offset = decode_varint(payload, offset)
        return ("commit", seq)
    kind = _KIND_NAMES.get(op)
    if kind is None:
        raise StorageError(f"unknown WAL record kind {op}")
    identifier, offset = _decode_graph_ref(payload, offset)
    if op in (_OP_ADD, _OP_REMOVE):
        s, offset = decode_term(payload, offset)
        p, offset = decode_term(payload, offset)
        o, offset = decode_term(payload, offset)
        return WalOp(kind, identifier, Triple(s, p, o))
    return WalOp(kind, identifier, None)


def _commit_seq_of(payload: bytes) -> Optional[int]:
    """The sequence number if ``payload`` is a commit record, else None.

    Commit records are tiny (kind byte + two varints), so they are never
    Z-compressed — checking the first byte is sufficient.
    """
    if payload and payload[0] == _OP_COMMIT:
        seq, _ = decode_varint(payload, 1)
        return seq
    return None


def iter_transaction_bytes(path: str,
                           after_seq: int = 0) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(seq, raw_bytes)`` per committed transaction with seq > after_seq.

    ``raw_bytes`` is the exact on-disk form of the transaction — op frames
    followed by the commit frame — rebuilt deterministically from the
    scanned payloads via :func:`encode_frame`, so a replication follower
    can append them verbatim with :meth:`WriteAheadLog.append_raw_transaction`
    and end up with a byte-identical committed prefix.  Like replay, the
    scan stops cleanly at the first torn or corrupt frame, which makes it
    safe to run against the primary's LIVE log while commits append to it.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return
    with handle:
        pending = bytearray()
        for payload, _end in iter_frames_file(handle):
            pending += encode_frame(payload)
            seq = _commit_seq_of(payload)
            if seq is not None:
                if seq > after_seq:
                    yield seq, bytes(pending)
                pending = bytearray()


def decode_transaction_ops(raw: bytes) -> Tuple[int, List[WalOp]]:
    """Decode one raw transaction's bytes into ``(seq, ops)``.

    ``raw`` must be exactly one committed transaction as produced by
    :func:`iter_transaction_bytes` / :func:`split_transaction_stream` — op
    frames followed by the commit frame.  The replication follower uses
    this to apply a shipped transaction it has already persisted.
    """
    ops: List[WalOp] = []
    for payload, _end in iter_frames(raw):
        record = _decode_record(payload)
        if isinstance(record, tuple) and record[0] == "commit":
            return record[1], ops
        ops.append(record)
    raise StorageError("transaction bytes end without a commit record")


def split_transaction_stream(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Split a shipped replication stream into ``(seq, raw_bytes)`` pieces.

    The inverse view of what the WAL route concatenates: the follower CRC-
    validates every frame while splitting (via :func:`iter_frames`), so a
    connection torn mid-chunk simply ends the stream at the last complete
    transaction — exactly the crash semantics the on-disk log already has.
    """
    pending = bytearray()
    for payload, _end in iter_frames(data):
        pending += encode_frame(payload)
        seq = _commit_seq_of(payload)
        if seq is not None:
            yield seq, bytes(pending)
            pending = bytearray()


class WalReplay:
    """Single-pass incremental scan of a WAL's committed transactions.

    Iterating yields ``(seq, ops)`` exactly like :func:`iter_transactions`
    (which wraps this class), reading the log frame-by-frame so recovery
    memory stays bounded by the largest transaction instead of the log size.
    After the scan ends, :attr:`committed_offset` is the byte length of the
    longest committed prefix: everything past it is a torn frame, corrupt
    garbage, or ops that never committed, and the engine cuts it off with
    :func:`truncate_torn_tail` before reattaching a live WAL.

    Structural damage is the ONLY thing the scan absorbs silently.  A frame
    that passes its CRC but does not decode — a record kind from a newer
    build, a CRC collision — is not a crash artefact, and truncating it
    would permanently destroy transactions a matching decoder could still
    replay; the scan raises :class:`StorageError` instead, leaving the file
    untouched for the operator.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: End offset of the last fully committed frame seen by the scan.
        self.committed_offset = 0
        #: Sequence of the first committed transaction in the file (None if
        #: the file holds no commits) — recovery hands it back to the live
        #: WAL so rotation archives the file under its true seq range.
        self.first_seq: Optional[int] = None

    def __iter__(self) -> Iterator[Tuple[int, List[WalOp]]]:
        self.committed_offset = 0  # a re-scan must not report a stale prefix
        self.first_seq = None
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return
        with handle:
            pending: List[WalOp] = []
            for payload, end_offset in iter_frames_file(handle):
                try:
                    record = _decode_record(payload)
                except Exception as exc:
                    frame_start = end_offset - len(payload) - FRAME_HEADER_SIZE
                    raise StorageError(
                        f"WAL {self.path!r} holds an intact (CRC-valid) frame "
                        f"at offset {frame_start} that cannot be decoded "
                        f"({exc}); refusing to recover — replaying past it "
                        "could lose committed transactions a newer decoder "
                        "would understand") from exc
                if isinstance(record, tuple) and record[0] == "commit":
                    self.committed_offset = end_offset
                    if self.first_seq is None:
                        self.first_seq = record[1]
                    yield record[1], pending
                    pending = []
                else:
                    pending.append(record)
        # `pending` non-empty here means a transaction never committed: dropped.


def iter_transactions(path: str) -> Iterator[Tuple[int, List[WalOp]]]:
    """Yield ``(seq, ops)`` for every fully committed transaction, in order.

    Tolerates — silently truncates at — a torn or corrupt tail: the scan
    stops at the first frame that fails its CRC or runs past end-of-file,
    and any operations buffered since the last commit marker are discarded.
    A record that frames correctly but does not decode (a record kind from
    the future, a CRC collision) raises :class:`StorageError` instead of
    guessing — see :class:`WalReplay`.
    """
    return iter(WalReplay(path))


def truncate_torn_tail(path: str, committed_offset: int,
                       fsync: bool = True) -> int:
    """Truncate ``path`` to its committed prefix; returns the bytes dropped.

    Recovery must call this before it reattaches a live WAL: the new handle
    opens in append mode, so any garbage left past the last committed frame
    would sit BETWEEN the old commits and every new one — and the next
    recovery scan, stopping at the first bad frame, would silently lose
    every transaction committed after this recovery.  Cutting the tail off
    (and fsyncing the cut) is what keeps "durable iff the commit record is
    on disk" true across repeated crashes.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0
    if size <= committed_offset:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(committed_offset)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return size - committed_offset
