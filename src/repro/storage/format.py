"""Binary on-disk encoding shared by the checkpoint format and the WAL.

Everything durable in :mod:`repro.storage` is built from three primitives:

* **varints** — unsigned LEB128, so dense dictionary ids and counts cost one
  byte in the common case instead of a fixed-width word,
* **terms** — a tagged, length-prefixed encoding of the
  :mod:`repro.rdf.terms` value objects (IRI / BNode / Literal with datatype
  or language tag) that decodes without any parsing or escaping,
* **CRC frames** — ``[u32 length][u32 crc32(payload)][payload]`` records.
  A torn tail, a short write, or a flipped bit makes the frame fail its
  checksum, which is exactly the property crash recovery leans on: the WAL
  reader stops at the first bad frame and everything before it is intact.

The encoding is deliberately dumb — no compression, no string pooling beyond
what dictionary ids already give — because the decoder is on the restart
path and must stay a straight-line loop.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import Optional, Tuple

from repro.exceptions import StorageError
from repro.rdf.terms import (
    IRI,
    BNode,
    Literal,
    RDF_LANGSTRING,
    Term,
    XSD_STRING,
)

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_string",
    "decode_string",
    "encode_term",
    "decode_term",
    "encode_frame",
    "iter_frames",
    "iter_frames_file",
    "FRAME_HEADER_SIZE",
    "crc32",
    "fsync_directory",
]


def fsync_directory(directory: str) -> None:
    """fsync a directory so freshly created/renamed entries survive power loss.

    POSIX durability is two-level: fsyncing a file pins its *contents*, but
    the file's directory entry lives in the directory, which must be synced
    separately.  Platforms that cannot open directories (Windows) skip this
    silently — os.replace is atomic there at the API level.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)

_FRAME_HEADER = struct.Struct("<II")

#: Bytes of ``[u32 length][u32 crc32]`` preceding every frame payload.
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Term tags.  Append-only: renumbering breaks every checkpoint on disk.
TAG_IRI = 1
TAG_BNODE = 2
TAG_LITERAL_PLAIN = 3      # xsd:string, the overwhelmingly common literal
TAG_LITERAL_LANG = 4       # language-tagged (rdf:langString)
TAG_LITERAL_TYPED = 5      # any other datatype IRI


def crc32(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Varints and strings
# ---------------------------------------------------------------------------

def encode_varint(buffer: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``buffer``."""
    if value < 0:
        raise StorageError(f"cannot encode negative varint {value}")
    while value > 0x7F:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if offset >= length:
            raise StorageError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise StorageError("varint too long")


def encode_string(buffer: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    encode_varint(buffer, len(raw))
    buffer.extend(raw)


def decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise StorageError("truncated string")
    return data[offset:end].decode("utf-8"), end


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

def encode_term(buffer: bytearray, term: Term) -> None:
    """Append the tagged binary form of an RDF term to ``buffer``."""
    if isinstance(term, IRI):
        buffer.append(TAG_IRI)
        encode_string(buffer, term.value)
        return
    if isinstance(term, BNode):
        buffer.append(TAG_BNODE)
        encode_string(buffer, term.id)
        return
    if isinstance(term, Literal):
        if term.language is not None:
            buffer.append(TAG_LITERAL_LANG)
            encode_string(buffer, term.lexical)
            encode_string(buffer, term.language)
        elif term.datatype == XSD_STRING:
            buffer.append(TAG_LITERAL_PLAIN)
            encode_string(buffer, term.lexical)
        else:
            buffer.append(TAG_LITERAL_TYPED)
            encode_string(buffer, term.lexical)
            encode_string(buffer, term.datatype.value)
        return
    raise StorageError(f"cannot serialise term type {type(term).__name__} "
                       "(variables never reach storage)")


def decode_term(data: bytes, offset: int) -> Tuple[Term, int]:
    """Decode one tagged term at ``offset``; returns ``(term, next_offset)``."""
    if offset >= len(data):
        raise StorageError("truncated term")
    tag = data[offset]
    offset += 1
    if tag == TAG_IRI:
        value, offset = decode_string(data, offset)
        return IRI(value), offset
    if tag == TAG_BNODE:
        value, offset = decode_string(data, offset)
        return BNode(value), offset
    if tag == TAG_LITERAL_PLAIN:
        lexical, offset = decode_string(data, offset)
        return Literal(lexical), offset
    if tag == TAG_LITERAL_LANG:
        lexical, offset = decode_string(data, offset)
        language, offset = decode_string(data, offset)
        return Literal(lexical, language=language), offset
    if tag == TAG_LITERAL_TYPED:
        lexical, offset = decode_string(data, offset)
        datatype, offset = decode_string(data, offset)
        # rdf:langString without a tag cannot be constructed via language=;
        # it also can never be produced by encode_term, so reject it here.
        if datatype == RDF_LANGSTRING.value:
            raise StorageError("typed literal with rdf:langString datatype")
        return Literal(lexical, datatype=IRI(datatype)), offset
    raise StorageError(f"unknown term tag {tag}")


# ---------------------------------------------------------------------------
# CRC frames
# ---------------------------------------------------------------------------

def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` as ``[u32 len][u32 crc32][payload]``."""
    return _FRAME_HEADER.pack(len(payload), crc32(payload)) + payload


def _iter_frames_stream(handle, size: int):
    """Core frame scanner over a binary stream of known ``size``.

    Stops — silently, by design — at the first frame that is truncated
    (header or payload runs past ``size``) or fails its CRC.  That makes a
    torn or corrupted tail indistinguishable from a clean end-of-log, which
    is the contract WAL recovery is built on.  Both public scanners wrap
    this one loop so their stop conditions can never drift apart.
    """
    header_size = _FRAME_HEADER.size
    offset = handle.tell()
    while True:
        start = offset + header_size
        if start > size:
            return
        header = handle.read(header_size)
        if len(header) < header_size:
            return
        payload_len, checksum = _FRAME_HEADER.unpack(header)
        if payload_len == 0:
            # A zero-length frame is never written (every record has at
            # least a kind byte), but an ALL-ZERO header accidentally
            # passes validation because crc32(b"") == 0 — and zero-filled
            # tail blocks are a classic crash artifact on delayed-allocation
            # filesystems.  Classify it as structural tail damage and stop.
            return
        end = start + payload_len
        if end > size:
            return  # short write: the frame never finished hitting the disk
        payload = handle.read(payload_len)
        if len(payload) < payload_len:
            return
        if crc32(payload) != checksum:
            return  # corrupt frame: stop, everything before it is intact
        yield payload, end
        offset = end


def iter_frames(data: bytes, offset: int = 0):
    """Yield ``(payload, end_offset)`` for every intact frame in ``data``."""
    handle = io.BytesIO(data)
    handle.seek(offset)
    return _iter_frames_stream(handle, len(data))


def iter_frames_file(handle):
    """Yield ``(payload, end_offset)`` frames read incrementally from a file.

    The streaming twin of :func:`iter_frames`: WAL recovery reads the log
    header-then-payload instead of slurping the whole file, so replay memory
    is bounded by the largest single frame rather than the log size.  A
    frame length pointing past end-of-file is rejected against ``fstat``
    BEFORE the payload read, so a corrupt header cannot demand a
    multi-gigabyte allocation.
    """
    return _iter_frames_stream(handle, os.fstat(handle.fileno()).st_size)
