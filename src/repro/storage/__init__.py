"""Durable storage for the RDF substrate: checkpoints, WAL, bulk loading.

The in-memory store (:mod:`repro.rdf`) serves queries; this package makes it
survive restarts.  Three cooperating pieces:

* :mod:`repro.storage.checkpoint` — a binary, dictionary-aware snapshot of a
  whole :class:`~repro.rdf.dataset.Dataset` that bulk-restores without
  re-interning a single term,
* :mod:`repro.storage.wal` — a CRC-framed write-ahead log that fsyncs at
  each writer epoch's commit point (the release of the dataset-shared write
  lock) and tolerates torn/corrupt tails,
* :mod:`repro.storage.bulkload` — a streaming loader that feeds parser
  output straight into the id-space indexes in batches.

:class:`~repro.storage.engine.StorageEngine` composes them:
``open()`` = last checkpoint + replay of the committed WAL suffix;
``checkpoint()`` = compaction (snapshot + WAL rotation);
``bulk_load()`` = streaming ingest + checkpoint.
"""

from repro.storage.bulkload import BulkLoadReport, stream_load, stream_load_triples
from repro.storage.checkpoint import (
    CheckpointInfo,
    read_checkpoint,
    write_checkpoint,
)
from repro.storage.engine import JournalledLock, StorageEngine
from repro.storage.wal import (
    WalOp,
    WalReplay,
    WriteAheadLog,
    iter_transactions,
    truncate_torn_tail,
)

__all__ = [
    "BulkLoadReport",
    "CheckpointInfo",
    "JournalledLock",
    "StorageEngine",
    "WalOp",
    "WalReplay",
    "WriteAheadLog",
    "iter_transactions",
    "truncate_torn_tail",
    "read_checkpoint",
    "stream_load",
    "stream_load_triples",
    "write_checkpoint",
]
