"""The durable storage engine: checkpoint + WAL + recovery + bulk ingest.

:class:`StorageEngine` owns one directory::

    <dir>/checkpoint.kgck   last checkpoint (atomic-rename discipline)
    <dir>/wal.log           redo log since that checkpoint

and one :class:`~repro.rdf.dataset.Dataset` built over it.  The engine's
whole contract is the recovery invariant the crash-injection suite
(``tests/storage/test_recovery.py``) enforces:

    ``open()`` reconstructs exactly the state at the last *committed* writer
    epoch — last checkpoint + replay of the committed WAL suffix; a torn or
    corrupt log tail is truncated, never partially applied.

Durability hooks into the concurrency layer rather than duplicating it: the
engine installs a :class:`JournalledLock` as the dataset-shared write lock,
so the release of the outermost write hold — the exact point where the PR-3
snapshot/epoch machinery makes a writer's batch visible to readers — is also
where the WAL stamps, flushes and fsyncs the transaction.  One lock, one
commit point, two consumers.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterator, Optional, TextIO, Tuple, Union

try:  # POSIX advisory locks
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]
try:  # Windows region locks
    import msvcrt
except ImportError:  # pragma: no cover - POSIX
    msvcrt = None  # type: ignore[assignment]

from repro.exceptions import StorageError, WalTruncatedError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import IRI
from repro.storage.bulkload import (
    DEFAULT_BATCH_SIZE,
    BulkLoadReport,
    stream_load,
)
from repro.storage.checkpoint import (
    CheckpointInfo,
    read_checkpoint,
    write_checkpoint,
)
from repro.storage.segments import WalArchive
from repro.storage.wal import (
    WalReplay,
    WriteAheadLog,
    iter_transaction_bytes,
    truncate_torn_tail,
)

__all__ = ["JournalledLock", "StorageEngine"]

CHECKPOINT_NAME = "checkpoint.kgck"
WAL_NAME = "wal.log"
SEGMENTS_DIR = "segments"
LOCK_NAME = "LOCK"


def _acquire_dir_lock(path: str):
    """Take an exclusive, non-blocking OS lock on the data directory.

    Two engines opening one directory is silent corruption waiting to
    happen — the second open() truncates the torn tail of a log the first
    is actively appending to.  An advisory ``flock`` (or msvcrt region
    lock on Windows) on a dedicated ``LOCK`` file turns that into a clean
    error.  The lock is per open-file-description, so it also catches two
    engines inside ONE process, and the OS drops it automatically if the
    process dies — no stale-lockfile recovery dance needed.
    """
    handle = open(path, "a+b")
    try:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        elif msvcrt is not None:  # pragma: no cover - Windows
            handle.seek(0)
            msvcrt.locking(handle.fileno(), msvcrt.LK_NBLCK, 1)
    except OSError as exc:
        handle.close()
        raise StorageError(
            f"storage directory is locked by another engine "
            f"({path!r}): {exc}") from exc
    return handle


def _release_dir_lock(handle) -> None:
    if handle is None:
        return
    try:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        elif msvcrt is not None:  # pragma: no cover - Windows
            handle.seek(0)
            msvcrt.locking(handle.fileno(), msvcrt.LK_UNLCK, 1)
    except OSError:
        pass
    finally:
        handle.close()


class JournalledLock:
    """An RLock whose outermost release is the WAL commit point.

    Drop-in for the :class:`threading.RLock` a :class:`Dataset` shares with
    its graphs.  Re-entrant holds nest exactly like RLock; when the holding
    thread releases its outermost hold, any operations the journal buffered
    during the hold are committed (written, flushed, fsynced) *before* the
    lock is handed to the next writer — so the on-disk commit order is the
    in-memory epoch order, always.
    """

    def __init__(self, journal: Optional[WriteAheadLog] = None) -> None:
        self._inner = threading.RLock()
        self._depth = threading.local()
        self.journal = journal

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._depth.value = getattr(self._depth, "value", 0) + 1
        return acquired

    def release(self) -> None:
        depth = getattr(self._depth, "value", 0)
        if depth <= 0:
            raise RuntimeError("cannot release un-acquired JournalledLock")
        self._depth.value = depth - 1
        try:
            if depth == 1 and self.journal is not None:
                try:
                    self.journal.commit()
                except Exception:
                    # The transaction failed to reach disk: drop the buffered
                    # records so they cannot leak into the next writer's
                    # commit, then surface the failure to the caller.
                    self.journal.discard_pending()
                    raise
        finally:
            self._inner.release()

    __enter__ = acquire

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()


class StorageEngine:
    """Durable, recoverable storage for one RDF dataset."""

    def __init__(self, directory: str,
                 namespaces: Optional[NamespaceManager] = None,
                 fsync: bool = True, compress: bool = True,
                 retain_segments: int = 8) -> None:
        self.directory = directory
        self.checkpoint_path = os.path.join(directory, CHECKPOINT_NAME)
        self.wal_path = os.path.join(directory, WAL_NAME)
        self.lock_path = os.path.join(directory, LOCK_NAME)
        #: Rotated WAL files kept for replication followers.  ``retain_segments``
        #: bounds how far behind a follower can fall before it must
        #: snapshot-bootstrap instead of tailing the log.
        self.archive = WalArchive(os.path.join(directory, SEGMENTS_DIR),
                                  retain=retain_segments, fsync=fsync)
        self._lock_file = None
        self._namespaces = namespaces
        self._fsync = fsync
        #: zlib-frame checkpoint sections and oversized WAL records.  Purely
        #: a write-side knob: the readers auto-detect per file/record, so an
        #: engine opened with either setting reads everything ever written.
        self._compress = compress
        self._dataset: Optional[Dataset] = None
        self._wal: Optional[WriteAheadLog] = None
        self._lock_obj: Optional[JournalledLock] = None
        #: Serialises lifecycle + maintenance (open/close/checkpoint/bulk
        #: load) against each other.  Re-entrant, and always acquired BEFORE
        #: the dataset write lock — close() takes admin → write (via
        #: attach_journal), so any path taking them in the other order
        #: would deadlock.
        self._admin_lock = threading.RLock()
        #: Recovery accounting from the most recent open()/reopen().
        self.recovered_transactions = 0
        self.recovered_ops = 0
        self.recovered_truncated_bytes = 0
        self.last_checkpoint: Optional[CheckpointInfo] = None
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        if self._dataset is None:
            raise StorageError("storage engine is not open (call open() first)")
        return self._dataset

    @property
    def is_open(self) -> bool:
        return self._dataset is not None

    def open(self) -> Dataset:
        """Open (or recover) the dataset: last checkpoint + committed WAL suffix.

        Idempotent: a second call returns the already-open dataset.
        """
        with self._admin_lock:
            if self._dataset is not None:
                return self._dataset
            os.makedirs(self.directory, exist_ok=True)
            self._lock_file = _acquire_dir_lock(self.lock_path)
            try:
                return self._open_locked()
            except BaseException:
                _release_dir_lock(self._lock_file)
                self._lock_file = None
                raise

    def _open_locked(self) -> Dataset:
        """Recovery proper, once the directory lock is held."""
        lock = JournalledLock()
        checkpoint_seq = 0
        if os.path.exists(self.checkpoint_path):
            dataset, checkpoint_seq, info = read_checkpoint(
                self.checkpoint_path, lock=lock)
            self.last_checkpoint = info
        else:
            dataset = Dataset(namespaces=self._namespaces, lock=lock)

        # Replay the committed suffix.  The journal is NOT attached yet:
        # replayed operations must not be re-logged.
        self.recovered_transactions = 0
        self.recovered_ops = 0
        self.recovered_truncated_bytes = 0
        last_seq = checkpoint_seq
        replay = WalReplay(self.wal_path)
        for seq, ops in replay:
            if seq <= checkpoint_seq:
                # The checkpoint already covers this transaction (a crash
                # landed between checkpoint rename and WAL rotation).
                last_seq = max(last_seq, seq)
                continue
            self._apply_ops(dataset, ops)
            last_seq = seq
            self.recovered_transactions += 1
            self.recovered_ops += len(ops)

        # Cut the log back to the committed prefix the scan stopped at.
        # The WAL below reopens in append mode, so a torn/corrupt tail
        # left in place would sit between the old commits and every new
        # one — and the NEXT recovery scan, stopping at the first bad
        # frame, would silently lose everything committed from here on.
        self.recovered_truncated_bytes = truncate_torn_tail(
            self.wal_path, replay.committed_offset, fsync=self._fsync)

        wal = WriteAheadLog(self.wal_path, fsync=self._fsync,
                            compress=self._compress)
        wal.attach_dictionary(dataset.dictionary)
        wal.last_seq = last_seq
        wal.first_seq = replay.first_seq
        dataset.attach_journal(wal)
        lock.journal = wal
        self._dataset = dataset
        self._wal = wal
        self._lock_obj = lock
        return dataset

    @staticmethod
    def _apply_ops(dataset: Dataset, ops) -> None:
        for op in ops:
            if op.kind == "add":
                target = dataset.graph(op.graph) if op.graph else dataset.default_graph
                target.add(op.triple)
            elif op.kind == "remove":
                target = dataset.graph(op.graph) if op.graph else dataset.default_graph
                target.remove(*op.triple)
            elif op.kind == "clear":
                target = dataset.graph(op.graph) if op.graph else dataset.default_graph
                target.clear()
            elif op.kind == "create":
                dataset.graph(op.graph)
            elif op.kind == "drop":
                dataset.drop_graph(op.graph)
            else:  # pragma: no cover - iter_transactions filters unknown kinds
                raise StorageError(f"unknown WAL op kind {op.kind!r}")

    def close(self) -> None:
        """Detach the journal and release the WAL file handle.

        Close is deliberately boring: every committed transaction is already
        on disk, so closing is not a durability event — killing the process
        instead of calling close() loses nothing committed.
        """
        with self._admin_lock:
            if self._dataset is not None:
                self._dataset.attach_journal(None)
                if self._lock_obj is not None:
                    self._lock_obj.journal = None
            if self._wal is not None:
                self._wal.close()
            self._dataset = None
            self._wal = None
            self._lock_obj = None
            _release_dir_lock(self._lock_file)
            self._lock_file = None

    def reopen(self) -> Dataset:
        """Close and recover from disk (the ``admin/restore`` route)."""
        self.close()
        return self.open()

    # ------------------------------------------------------------------
    # Checkpointing / compaction
    # ------------------------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        """Write a checkpoint and rotate (truncate) the WAL.

        This is the log-compaction path: after it returns, recovery starts
        from the fresh checkpoint and the redo log is empty.  Runs under the
        admin lock (so it cannot race close()/reopen() swapping the WAL out
        from under it) and the dataset write lock (so the dump is one
        consistent commit point and no writer can slip a transaction
        between the dump and the rotation).

        A fail-stopped WAL (a commit that never reached disk) is healed
        here: the checkpoint serialises the *live* in-memory state — which
        is by definition ahead of the broken log — and the rotation starts
        a fresh one.
        """
        with self._admin_lock:
            dataset = self.dataset
            wal = self._wal
            with dataset.write_lock:
                info = write_checkpoint(dataset, self.checkpoint_path,
                                        last_commit_seq=wal.last_seq,
                                        compress=self._compress)
                # Archive the rotated log for replication followers — unless
                # it is empty (no commits since the last rotation) or
                # retention is off.  The seq range in the file name is the
                # archive's whole index.
                if wal.first_seq is not None and self.archive.retain > 0:
                    target = self.archive.archive_target(wal.first_seq,
                                                         wal.last_seq)
                    wal.rotate(archive_to=target)
                    self.archive.committed()
                else:
                    wal.rotate()
                # Retention is enforced every checkpoint (not just when a
                # segment was archived), so dropping `retain` takes effect
                # at the next compaction.
                self.archive.prune()
                wal.failed = False
            self.last_checkpoint = info
            self.checkpoints_written += 1
            return info

    # ------------------------------------------------------------------
    # Replication (primary side)
    # ------------------------------------------------------------------
    def wal_window(self) -> Tuple[Optional[int], int]:
        """``(oldest_streamable_seq, last_seq)`` of the shippable history.

        ``oldest`` is the first commit a follower can still fetch frame-by-
        frame (from archived segments or the live log); ``None`` means no
        commit history is retained at all — every follower must bootstrap
        from the checkpoint.
        """
        wal = self._wal
        last_seq = wal.last_seq if wal is not None else 0
        candidates = [seq for seq in
                      (self.archive.oldest_seq(),
                       wal.first_seq if wal is not None else None)
                      if seq is not None]
        return (min(candidates) if candidates else None), last_seq

    def stream_wal_after(self, after_seq: int) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(seq, raw_transaction_bytes)`` for commits > ``after_seq``.

        Raises :class:`WalTruncatedError` when retention has already pruned
        part of the requested range — the HTTP layer maps that to 410 and
        the follower falls back to snapshot bootstrap.  The scan runs
        lock-free against live files: CRC framing makes a concurrent append
        tear off cleanly, and a rotation racing the hand-off from segments
        to the live log merely ends the stream early — the follower's next
        poll finds the rotated transactions in the archive.
        """
        oldest, last_seq = self.wal_window()
        if after_seq >= last_seq:
            return
        if oldest is None or after_seq + 1 < oldest:
            raise WalTruncatedError(
                f"commits after seq {after_seq} are no longer retained "
                f"(oldest streamable seq: {oldest}); bootstrap from the "
                "latest checkpoint instead")
        watermark = after_seq
        for seq, raw in self.archive.iter_bytes_after(after_seq):
            watermark = seq
            yield seq, raw
        for seq, raw in iter_transaction_bytes(self.wal_path, watermark):
            yield seq, raw

    def snapshot_bytes(self) -> Tuple[bytes, int]:
        """The latest checkpoint file verbatim + the commit seq it covers.

        Writes a checkpoint first if none exists yet (a fresh store) so a
        follower can always bootstrap.  Served by the snapshot route; the
        follower installs the bytes as its own ``checkpoint.kgck`` and
        resumes tailing from the returned seq.
        """
        with self._admin_lock:
            if not os.path.exists(self.checkpoint_path):
                self.checkpoint()
            info = self.last_checkpoint
            seq = info.last_commit_seq if info is not None else 0
            with open(self.checkpoint_path, "rb") as handle:
                data = handle.read()
            return data, seq

    # ------------------------------------------------------------------
    # Bulk ingest
    # ------------------------------------------------------------------
    def bulk_load(self, source: Union[str, TextIO],
                  graph_iri: Optional[Union[str, IRI]] = None,
                  fmt: str = "turtle",
                  batch_size: int = DEFAULT_BATCH_SIZE) -> BulkLoadReport:
        """Stream ``source`` into the dataset atomically, then checkpoint.

        The source is parsed into a *staging* graph first (sharing the
        dataset's dictionary, so this is already the final id-space
        encoding, batched with one epoch bump per batch).  Only after the
        whole source parsed cleanly is the staged id set merged into the
        live graph under the write lock — a parse error at triple one
        million therefore leaves the serving dataset completely untouched.

        The load bypasses the WAL (logging a bulk load triple-by-triple
        would write the dataset twice); durability comes from the checkpoint
        that always follows.  A crash mid-load recovers the pre-load state —
        the WAL and previous checkpoint are untouched until the new
        checkpoint atomically replaces them — and a completed call means
        the loaded data is durable.
        """
        with self._admin_lock:
            dataset = self.dataset
            # Stage outside the write lock: parsing a million triples must
            # not stall writers, and interning into the shared dictionary
            # is lock-free for readers / striped for writers by design.
            staging = Graph(namespaces=dataset.namespaces,
                            dictionary=dataset.dictionary)
            report = stream_load(staging, source, fmt=fmt,
                                 batch_size=batch_size)
            with dataset.write_lock:
                # Detach the journal for the merge: the whole point of the
                # bulk path is to not write every triple twice.  The target
                # graph is resolved while detached too — an implicitly
                # created named graph must not commit a WAL create record,
                # or a crash before the checkpoint rename would recover an
                # empty graph the pre-load state never had.
                dataset.attach_journal(None)
                try:
                    target = (dataset.graph(graph_iri) if graph_iri
                              else dataset.default_graph)
                    added = target.bulk_add_ids(staging.triples_ids())
                finally:
                    dataset.attach_journal(self._wal)
                # Checkpoint INSIDE the write hold (both locks re-entrant):
                # were the lock released first, another writer could commit
                # a WAL transaction that observed the merged-but-not-yet-
                # durable triples, and a crash before the checkpoint rename
                # would recover post-load commits on top of the PRE-load
                # checkpoint — a state that never existed.
                try:
                    self.checkpoint()
                except Exception:
                    # The merged triples are live in memory but in neither
                    # the log nor a checkpoint: fail-stop the WAL so no
                    # later commit can widen the divergence before a
                    # checkpoint succeeds or the operator restores.
                    if self._wal is not None:
                        self._wal.failed = True
                    raise
            report.triples_added = added  # net of duplicates already stored
            return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        wal = self._wal
        stats: Dict[str, object] = {
            "directory": self.directory,
            "open": self.is_open,
            "compress": self._compress,
            "recovered_transactions": self.recovered_transactions,
            "recovered_ops": self.recovered_ops,
            "recovered_truncated_bytes": self.recovered_truncated_bytes,
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint": (self.last_checkpoint.as_dict()
                                if self.last_checkpoint else None),
        }
        if wal is not None:
            stats["wal"] = {
                "path": wal.path,
                "size_bytes": wal.size_bytes(),
                "first_seq": wal.first_seq,
                "last_seq": wal.last_seq,
                "commits": wal.commits,
                "ops_logged": wal.ops_logged,
                "bytes_written": wal.bytes_written,
                "compressed_records": wal.compressed_records,
                "bytes_saved": wal.bytes_saved,
            }
        stats["segments"] = self.archive.stats()
        return stats

    def __enter__(self) -> "StorageEngine":
        self.open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return f"<StorageEngine {self.directory!r} ({state})>"
