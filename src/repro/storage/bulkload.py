"""Streaming bulk loader: parser output straight into id-space indexes.

``Graph.add_all(parse_turtle(text))`` pays, per triple: a term re-validation,
an epoch bump (which invalidates the snapshot cache and every compiled plan),
and — under a journalled dataset — a WAL record.  Loading a million-triple KG
that way is death by bookkeeping.  :func:`stream_load` instead:

* streams triples out of :func:`repro.rdf.io.iter_turtle` as the
  recursive-descent parser produces them (no intermediate triple list, no
  intermediate graph),
* validates and dictionary-encodes each term once,
* commits them in batches through :meth:`Graph.bulk_add_ids
  <repro.rdf.graph.Graph.bulk_add_ids>`, so a batch of ``batch_size``
  triples costs one write-lock acquisition and ONE epoch bump.

The loader bypasses the write-ahead log by design — logging a bulk load
triple-by-triple would write the dataset twice.  Durable ingest goes through
:meth:`StorageEngine.bulk_load <repro.storage.engine.StorageEngine.bulk_load>`,
which runs this loader and then checkpoints (the log-compaction path), so
the loaded data is durable the moment the call returns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, TextIO, Union

from repro.exceptions import RDFError
from repro.rdf.graph import Graph
from repro.rdf.io import iter_turtle
from repro.rdf.terms import IRI, Literal, Triple

__all__ = ["BulkLoadReport", "stream_load", "stream_load_triples"]

#: Default number of triples per bulk_add_ids batch.  Large enough that the
#: per-batch lock/epoch cost vanishes, small enough that memory stays flat.
DEFAULT_BATCH_SIZE = 8192


@dataclass
class BulkLoadReport:
    """Throughput accounting for one bulk load."""

    triples_seen: int
    triples_added: int
    batches: int
    seconds: float

    @property
    def triples_per_second(self) -> float:
        return self.triples_seen / self.seconds if self.seconds else 0.0

    def as_dict(self) -> dict:
        return {
            "triples_seen": self.triples_seen,
            "triples_added": self.triples_added,
            "batches": self.batches,
            "seconds": round(self.seconds, 6),
            "triples_per_second": round(self.triples_per_second, 1),
        }


def stream_load_triples(graph: Graph, triples: Iterable[Triple],
                        batch_size: int = DEFAULT_BATCH_SIZE) -> BulkLoadReport:
    """Feed an arbitrary triple iterable into ``graph`` in id-space batches."""
    if batch_size <= 0:
        raise RDFError("batch_size must be positive")
    started = time.perf_counter()
    encode = graph.dictionary.encode
    batch = []
    append = batch.append
    seen = added = batches = 0
    for s, p, o in triples:
        if isinstance(s, Literal):
            raise RDFError(f"literals cannot be used as subjects: {s!r}")
        if not isinstance(p, IRI):
            raise RDFError(f"predicates must be IRIs, got {p!r}")
        append((encode(s), encode(p), encode(o)))
        seen += 1
        if len(batch) >= batch_size:
            added += graph.bulk_add_ids(batch)
            batches += 1
            batch.clear()
    if batch:
        added += graph.bulk_add_ids(batch)
        batches += 1
    return BulkLoadReport(triples_seen=seen, triples_added=added,
                          batches=batches,
                          seconds=time.perf_counter() - started)


def stream_load(graph: Graph, source: Union[str, TextIO],
                fmt: str = "turtle",
                batch_size: int = DEFAULT_BATCH_SIZE) -> BulkLoadReport:
    """Stream-parse Turtle/N-Triples ``source`` into ``graph``.

    ``source`` is a string of Turtle text or a file-like object; ``fmt`` is
    accepted for symmetry with :func:`repro.rdf.io.dump_graph` (both formats
    share one parser).

    Memory profile: a file-like source streams end to end.  The tokenizer
    reads it in fixed-size chunks and parses statement-at-a-time, so the
    serialized document is never held in memory whole — transient memory is
    O(chunk + batch) regardless of file size — and triples flow straight
    from the recursive-descent parser into id-space batches, with no
    intermediate triple list and no staging copy of the graph.  (A string
    source is, of course, already resident; everything downstream of the
    tokenizer still streams.)
    """
    if fmt not in ("turtle", "ntriples", "nt"):
        raise RDFError(f"unknown bulk-load format {fmt!r}")
    return stream_load_triples(
        graph, iter_turtle(source, namespaces=graph.namespaces),
        batch_size=batch_size)
