"""Archived WAL segments: the primary's shippable commit history.

When the engine checkpoints, the live ``wal.log`` is rotated.  Before
replication the rotation simply truncated the file — the checkpoint made
its transactions redundant for *local* recovery.  A log-shipping follower,
though, needs the commit stream itself: a replica that was down across a
checkpoint must still be able to ask "give me every commit after seq S"
and receive the exact frames the primary wrote.  So rotation now renames
the old log into ``<dir>/segments/wal-<first>-<last>.seg``, where
``first``/``last`` are the segment's commit sequence range, and
:class:`WalArchive` manages that directory:

* the file NAME is the index — listing the directory answers a range query
  without opening a single segment,
* retention keeps the newest ``retain`` segments; pruning older ones is
  what eventually forces a very stale follower down the snapshot-bootstrap
  path (HTTP 410 on the WAL route),
* ranges are contiguous by construction (seq numbers are monotonic across
  rotations) but a crash between checkpoint and rotation can leave one
  commit covered by both a segment and the live log — harmless, because
  streaming dedups on a last-yielded-seq watermark.
"""

from __future__ import annotations

import os
import re
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.storage.format import fsync_directory
from repro.storage.wal import iter_transaction_bytes

__all__ = ["Segment", "WalArchive"]

_SEGMENT_NAME = re.compile(r"^wal-(\d+)-(\d+)\.seg$")


class Segment(NamedTuple):
    """One archived WAL file covering commits ``first_seq..last_seq``."""

    first_seq: int
    last_seq: int
    path: str

    @property
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0


class WalArchive:
    """The ``segments/`` directory of retained, rotated WAL files."""

    def __init__(self, directory: str, retain: int = 8,
                 fsync: bool = True) -> None:
        self.directory = directory
        #: Number of newest segments kept by :meth:`prune` (0 = keep none,
        #: which restores the pre-replication truncate-on-checkpoint world).
        self.retain = retain
        self.fsync = fsync

    def ensure_dir(self) -> None:
        if not os.path.isdir(self.directory):
            os.makedirs(self.directory, exist_ok=True)
            fsync_directory(os.path.dirname(os.path.abspath(self.directory)))

    def segment_path(self, first_seq: int, last_seq: int) -> str:
        return os.path.join(self.directory, f"wal-{first_seq}-{last_seq}.seg")

    def segments(self) -> List[Segment]:
        """All archived segments, sorted by first sequence number."""
        found: List[Segment] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return found
        for name in names:
            match = _SEGMENT_NAME.match(name)
            if match is None:
                continue
            found.append(Segment(int(match.group(1)), int(match.group(2)),
                                 os.path.join(self.directory, name)))
        found.sort(key=lambda seg: seg.first_seq)
        return found

    def oldest_seq(self) -> Optional[int]:
        """First commit seq still covered by the archive (None if empty)."""
        segments = self.segments()
        return segments[0].first_seq if segments else None

    def archive_target(self, first_seq: int, last_seq: int) -> str:
        """Reserve the destination path for rotating a log into the archive."""
        self.ensure_dir()
        return self.segment_path(first_seq, last_seq)

    def committed(self) -> None:
        """Make a just-renamed segment's directory entry durable."""
        if self.fsync:
            fsync_directory(self.directory)

    def prune(self) -> List[Segment]:
        """Drop all but the newest :attr:`retain` segments; returns dropped."""
        segments = self.segments()
        if self.retain < 0 or len(segments) <= self.retain:
            return []
        drop = segments[:len(segments) - self.retain]
        for segment in drop:
            try:
                os.remove(segment.path)
            except OSError:
                pass
        if drop and self.fsync:
            fsync_directory(self.directory)
        return drop

    def clear(self) -> None:
        """Remove every segment (snapshot bootstrap starts a fresh history)."""
        for segment in self.segments():
            try:
                os.remove(segment.path)
            except OSError:
                pass
        if self.fsync:
            fsync_directory(self.directory)

    def iter_bytes_after(self, after_seq: int) -> Iterator[Tuple[int, bytes]]:
        """Stream ``(seq, raw_transaction_bytes)`` from all relevant segments.

        Segments whose entire range is ≤ ``after_seq`` are skipped without
        being opened (the file name carries the range).  Possible overlap
        between consecutive segments — or between the last segment and the
        live log the caller scans next — is deduplicated by the per-call
        watermark here and by the caller passing the last yielded seq on.
        """
        watermark = after_seq
        for segment in self.segments():
            if segment.last_seq <= watermark:
                continue
            for seq, raw in iter_transaction_bytes(segment.path, watermark):
                watermark = seq
                yield seq, raw

    def stats(self) -> dict:
        segments = self.segments()
        return {
            "segments": len(segments),
            "retain": self.retain,
            "oldest_seq": segments[0].first_seq if segments else None,
            "newest_seq": segments[-1].last_seq if segments else None,
            "bytes": sum(seg.size_bytes for seg in segments),
        }

    def __repr__(self) -> str:
        return f"<WalArchive {self.directory!r} retain={self.retain}>"
