"""Binary, dictionary-aware dataset checkpoints.

A checkpoint is one sequential dump of the whole
:class:`~repro.rdf.dataset.Dataset`: namespace bindings, the shared
:class:`~repro.rdf.dictionary.TermDictionary` (id order preserved, terms in
the tagged binary encoding of :mod:`repro.storage.format`), then one section
per graph holding its id-space SPO/POS/OSP indexes and cardinality counters
as a *data-only* pickle (nested dicts/sets of ints — deserialised through an
unpickler with ``find_class`` closed off, so no code can ever execute).
Restoring is the whole point of the format:

* the dictionary comes back via :meth:`TermDictionary.restore
  <repro.rdf.dictionary.TermDictionary.restore>` — positional, no
  re-interning, no stripe locks — with terms built by trusted constructors
  that skip re-validation of CRC-verified data,
* the indexes come back as one C-level deserialisation each, adopted
  wholesale by :meth:`Graph._adopt_indexes <repro.rdf.graph.Graph>` —
  no per-triple insertion, probing or counter maintenance at all,

which is why restoring a checkpoint beats re-parsing the equivalent Turtle
by the margin ``benchmarks/bench_persistence.py`` records (the ISSUE-4
acceptance bar is ≥ 5× on a 100k-triple KG).

File layout::

    v1: MAGIC "KGCKPT01"             | u32 crc32(payload) | u64 len | payload
    v2: MAGIC "KGCKPT02" | u8 flags  | u32 crc32(payload) | u64 len | payload

``flags`` bit 0 (v2) marks the pickled sections — the term-table columns and
each graph's index state — as zlib-framed: the section's varint length then
counts *compressed* bytes, and the reader inflates before unpickling.  The
writer emits v2 by default (``compress=False`` produces byte-identical v1
files); the reader dispatches on the magic, so every old checkpoint on disk
stays readable.  Compression is per-section, not whole-file, so the restore
path keeps its shape: one inflate + one C-level unpickle per section.

The file is written to a temp sibling and atomically renamed into place, so
a crash mid-checkpoint leaves the previous checkpoint untouched; a torn or
tampered file fails magic/length/CRC and raises
:class:`~repro.exceptions.CorruptCheckpointError`.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import CorruptCheckpointError
from repro.rdf.dataset import Dataset
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import BNode, IRI, Literal, RDF_LANGSTRING, XSD_STRING
from repro.storage.format import (
    TAG_BNODE,
    TAG_IRI,
    TAG_LITERAL_LANG,
    TAG_LITERAL_PLAIN,
    TAG_LITERAL_TYPED,
    crc32,
    decode_string,
    decode_varint,
    encode_string,
    encode_varint,
    fsync_directory,
)

__all__ = ["CheckpointInfo", "write_checkpoint", "read_checkpoint"]

MAGIC = b"KGCKPT01"
MAGIC_V2 = b"KGCKPT02"
_HEADER = struct.Struct("<IQ")  # crc32(payload), len(payload)

#: v2 flag bit: pickled sections are zlib-framed.
FLAG_ZLIB_SECTIONS = 0x01

#: zlib level for checkpoint sections: 6 is the sweet spot for pickled index
#: dumps (levels beyond it buy <2% size for ~2x CPU on this data).
_ZLIB_LEVEL = 6


@dataclass
class CheckpointInfo:
    """What one checkpoint write/restore touched (surfaced via admin routes)."""

    path: str
    last_commit_seq: int
    triples: int
    terms: int
    named_graphs: int
    bytes: int
    seconds: float
    #: Section compression accounting (v2 files): raw pickled bytes vs the
    #: zlib-framed bytes actually stored.  Equal on uncompressed/v1 files.
    compressed: bool = False
    section_raw_bytes: int = 0
    section_stored_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "last_commit_seq": self.last_commit_seq,
            "triples": self.triples,
            "terms": self.terms,
            "named_graphs": self.named_graphs,
            "bytes": self.bytes,
            "seconds": round(self.seconds, 6),
            "compressed": self.compressed,
            "section_raw_bytes": self.section_raw_bytes,
            "section_stored_bytes": self.section_stored_bytes,
        }


def _frame_section(buffer: bytearray, blob: bytes,
                   compress: bool) -> Tuple[int, int]:
    """Append one pickled section, optionally zlib-framed.

    Returns ``(raw_bytes, stored_bytes)`` for the compression accounting
    the storage engine surfaces through its stats.
    """
    stored = zlib.compress(blob, _ZLIB_LEVEL) if compress else blob
    encode_varint(buffer, len(stored))
    buffer += stored
    return len(blob), len(stored)


def _encode_graph(buffer: bytearray, graph: Graph,
                  compress: bool = False) -> Tuple[int, int, int]:
    """Append one graph section; returns (triples, raw_bytes, stored_bytes).

    The section body is a *data-only* pickle of the graph's three id-space
    indexes plus the maintained cardinality counters — nested dicts / sets
    of ints, nothing else.  Pickling them costs one C-level traversal at
    checkpoint time and, far more importantly, restoring them is one
    C-level :func:`pickle.load` instead of ~3 Python-level index insertions
    per triple (see :func:`_decode_graph_state` for why that is safe).
    """
    if graph.identifier is None:
        buffer.append(0)
    else:
        buffer.append(1)
        encode_string(buffer, graph.identifier.value)
    blob = pickle.dumps(
        (graph._spo, graph._pos, graph._osp, graph._s_counts,
         graph._p_counts, graph._o_counts, len(graph)),
        protocol=pickle.HIGHEST_PROTOCOL)
    raw, stored = _frame_section(buffer, blob, compress)
    return len(graph), raw, stored


class _DataOnlyUnpickler(pickle.Unpickler):
    """An unpickler that refuses to resolve ANY global.

    The graph-section pickles contain only builtin containers and ints, so
    a legitimate checkpoint never needs ``find_class`` — and with it closed
    off, a tampered pickle cannot name a callable, which removes the entire
    arbitrary-code-execution surface unpickling normally carries.
    """

    def find_class(self, module, name):  # noqa: ARG002 - signature fixed
        raise CorruptCheckpointError(
            f"checkpoint graph section references global {module}.{name}; "
            "index pickles must be pure data")


def _read_section(data: bytes, offset: int, compressed: bool,
                  what: str) -> Tuple[bytes, int, int]:
    """Slice (and inflate, for v2 files) one pickled section.

    Returns ``(blob, end, stored_bytes)`` — the raw size is ``len(blob)``;
    together they let the restore path report the same raw/stored
    accounting the write path does.
    """
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise CorruptCheckpointError(f"{what} runs past end of payload")
    blob = data[offset:end]
    if compressed:
        try:
            blob = zlib.decompress(blob)
        except zlib.error as exc:
            raise CorruptCheckpointError(f"undecompressable {what}: {exc}")
    return blob, end, length


def _decode_graph_state(data: bytes, offset: int, compressed: bool = False):
    """Decode one graph section; returns (state, end, raw_bytes, stored_bytes)."""
    blob, end, stored = _read_section(data, offset, compressed, "graph section")
    try:
        state = _DataOnlyUnpickler(io.BytesIO(blob)).load()
    except CorruptCheckpointError:
        raise
    except Exception as exc:
        raise CorruptCheckpointError(f"undecodable graph section: {exc}")
    if not (isinstance(state, tuple) and len(state) == 7):
        raise CorruptCheckpointError("malformed graph section state")
    return state, end, len(blob), stored


def write_checkpoint(dataset: Dataset, path: str,
                     last_commit_seq: int = 0,
                     compress: bool = True) -> CheckpointInfo:
    """Serialise ``dataset`` to ``path`` in one sequential pass.

    The caller is expected to hold the dataset's write lock (the storage
    engine does); the dump then observes one consistent commit point, and
    ``last_commit_seq`` records which WAL transactions it already covers.

    ``compress=True`` (the default) writes the v2 format with zlib-framed
    sections; ``compress=False`` writes a v1 file bit-identical to what
    pre-compression builds produced.
    """
    started = time.perf_counter()
    payload = bytearray()
    encode_varint(payload, last_commit_seq)

    prefixes = list(dataset.namespaces.prefixes())
    encode_varint(payload, len(prefixes))
    for prefix, base in prefixes:
        encode_string(payload, prefix)
        encode_string(payload, base)

    # Snapshot the term table once: `encode` interns *outside* the write
    # lock (by design — see Graph.add), so the dictionary may keep growing
    # while we hold the lock.  Any id the indexes reference was interned
    # before the lock was taken, so a point-in-time copy is always closed
    # over the triples serialised below.
    table = list(dataset.dictionary)
    encode_varint(payload, len(table))
    raw_bytes, stored_bytes = _encode_term_table(payload, table, compress)

    graphs = [dataset.default_graph] + list(dataset.named_graphs())
    encode_varint(payload, len(graphs))
    triples = 0
    for graph in graphs:
        count, raw, stored = _encode_graph(payload, graph, compress)
        triples += count
        raw_bytes += raw
        stored_bytes += stored

    blob = bytes(payload)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        if compress:
            handle.write(MAGIC_V2)
            handle.write(bytes([FLAG_ZLIB_SECTIONS]))
        else:
            handle.write(MAGIC)
        handle.write(_HEADER.pack(crc32(blob), len(blob)))
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    # fsync the directory too: os.replace orders the rename in memory, but
    # the new directory entry itself must be durable BEFORE the engine
    # truncates the WAL — otherwise a power cut could leave the old
    # checkpoint next to an already-empty log.
    fsync_directory(os.path.dirname(os.path.abspath(path)))
    elapsed = time.perf_counter() - started
    header_bytes = len(MAGIC_V2) + 1 if compress else len(MAGIC)
    return CheckpointInfo(path=path, last_commit_seq=last_commit_seq,
                          triples=triples, terms=len(table),
                          named_graphs=len(graphs) - 1,
                          bytes=header_bytes + _HEADER.size + len(blob),
                          seconds=elapsed,
                          compressed=compress,
                          section_raw_bytes=raw_bytes,
                          section_stored_bytes=stored_bytes)


# ---------------------------------------------------------------------------
# Restore fast path
#
# The decoders below inline varint/string reads and construct terms through
# trusted constructors that skip input validation.  That is safe here and
# only here: the payload was produced by encode_term/encode_varint from live,
# already-validated terms and has just passed its CRC — re-validating every
# IRI against the forbidden-character regex on every restart is pure waste
# on the restart path, which this module exists to make fast.
# ---------------------------------------------------------------------------

def _trusted_iri(value: str) -> IRI:
    iri = object.__new__(IRI)
    object.__setattr__(iri, "value", value)
    return iri


def _trusted_literal(lexical: str, datatype: IRI,
                     language) -> Literal:
    literal = object.__new__(Literal)
    object.__setattr__(literal, "lexical", lexical)
    object.__setattr__(literal, "datatype", datatype)
    object.__setattr__(literal, "language", language)
    return literal


def _encode_term_table(buffer: bytearray, table,
                       compress: bool = False) -> Tuple[int, int]:
    """Append the id-ordered term list as three pickled parallel columns.

    ``(tags: bytes, texts: list[str], extras: list[str|None])`` — a pure-data
    pickle, so the restore side gets every string materialised by one
    C-level :func:`pickle.load` and only the term-object construction itself
    stays Python (see :func:`_decode_term_table`).  Returns the
    ``(raw, stored)`` byte accounting like :func:`_encode_graph`.
    """
    tags = bytearray()
    texts = []
    extras = []
    for term in table:
        if isinstance(term, IRI):
            tags.append(TAG_IRI)
            texts.append(term.value)
            extras.append(None)
        elif isinstance(term, Literal):
            texts.append(term.lexical)
            if term.language is not None:
                tags.append(TAG_LITERAL_LANG)
                extras.append(term.language)
            elif term.datatype == XSD_STRING:
                tags.append(TAG_LITERAL_PLAIN)
                extras.append(None)
            else:
                tags.append(TAG_LITERAL_TYPED)
                extras.append(term.datatype.value)
        elif isinstance(term, BNode):
            tags.append(TAG_BNODE)
            texts.append(term.id)
            extras.append(None)
        else:
            raise CorruptCheckpointError(
                f"cannot checkpoint term type {type(term).__name__}")
    blob = pickle.dumps((bytes(tags), texts, extras),
                        protocol=pickle.HIGHEST_PROTOCOL)
    return _frame_section(buffer, blob, compress)


def _decode_term_table(data: bytes, offset: int, n_terms: int,
                       compressed: bool = False):
    """Decode the dictionary section; returns (terms, end, raw, stored)."""
    blob, end, stored = _read_section(data, offset, compressed, "term table")
    try:
        tags, texts, extras = _DataOnlyUnpickler(io.BytesIO(blob)).load()
    except CorruptCheckpointError:
        raise
    except Exception as exc:
        raise CorruptCheckpointError(f"undecodable term table: {exc}")
    if not (len(tags) == len(texts) == len(extras) == n_terms):
        raise CorruptCheckpointError(
            f"term table length mismatch: header says {n_terms}, "
            f"columns hold {len(texts)}")
    terms = []
    append = terms.append
    new = object.__new__
    set_attr = object.__setattr__
    # Datatype IRIs repeat massively (xsd:integer, xsd:date, ...): intern
    # them per checkpoint so equal datatypes share one IRI object.
    datatypes = {}
    for tag, text, extra in zip(tags, texts, extras):
        if tag == TAG_IRI:
            term = new(IRI)
            set_attr(term, "value", text)
        elif tag == TAG_LITERAL_PLAIN:
            term = _trusted_literal(text, XSD_STRING, None)
        elif tag == TAG_BNODE:
            term = BNode(text)
        elif tag == TAG_LITERAL_LANG:
            term = _trusted_literal(text, RDF_LANGSTRING, extra)
        elif tag == TAG_LITERAL_TYPED:
            datatype = datatypes.get(extra)
            if datatype is None:
                datatype = datatypes[extra] = _trusted_iri(extra)
            term = _trusted_literal(text, datatype, None)
        else:
            raise CorruptCheckpointError(f"unknown term tag {tag} in checkpoint")
        append(term)
    return terms, end, len(blob), stored


def read_checkpoint(path: str,
                    lock: Optional[threading.RLock] = None
                    ) -> Tuple[Dataset, int, CheckpointInfo]:
    """Restore a dataset from ``path``; returns ``(dataset, seq, info)``.

    ``lock`` is forwarded to the restored :class:`Dataset` so the storage
    engine can install its journalled write lock before any graph exists.
    Raises :class:`~repro.exceptions.CorruptCheckpointError` when the file
    fails magic, length or CRC validation.
    """
    started = time.perf_counter()
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CorruptCheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    if raw.startswith(MAGIC_V2):
        header_offset = len(MAGIC_V2) + 1
        if len(raw) < header_offset + _HEADER.size:
            raise CorruptCheckpointError(f"{path!r} is truncated inside its header")
        flags = raw[len(MAGIC_V2)]
        if flags & ~FLAG_ZLIB_SECTIONS:
            raise CorruptCheckpointError(
                f"checkpoint {path!r} carries unknown format flags {flags:#x}")
        compressed = bool(flags & FLAG_ZLIB_SECTIONS)
    elif raw.startswith(MAGIC):
        if len(raw) < len(MAGIC) + _HEADER.size:
            raise CorruptCheckpointError(f"{path!r} is truncated inside its header")
        header_offset = len(MAGIC)
        compressed = False
    else:
        raise CorruptCheckpointError(f"{path!r} is not a KGNet checkpoint")
    checksum, length = _HEADER.unpack_from(raw, header_offset)
    data = raw[header_offset + _HEADER.size:]
    if len(data) != length:
        raise CorruptCheckpointError(
            f"checkpoint {path!r} is truncated: expected {length} payload "
            f"bytes, found {len(data)}")
    if crc32(data) != checksum:
        raise CorruptCheckpointError(f"checkpoint {path!r} fails its CRC")

    offset = 0
    last_commit_seq, offset = decode_varint(data, offset)

    n_prefixes, offset = decode_varint(data, offset)
    namespaces = NamespaceManager()
    for _ in range(n_prefixes):
        prefix, offset = decode_string(data, offset)
        base, offset = decode_string(data, offset)
        namespaces.bind(prefix, base)

    n_terms, offset = decode_varint(data, offset)
    terms, offset, raw_bytes, stored_bytes = _decode_term_table(
        data, offset, n_terms, compressed=compressed)
    dictionary = TermDictionary.restore(terms)

    dataset = Dataset(namespaces=namespaces, dictionary=dictionary, lock=lock)
    n_graphs, offset = decode_varint(data, offset)
    triples = 0
    for _ in range(n_graphs):
        if offset >= len(data):
            raise CorruptCheckpointError(f"checkpoint {path!r}: graph section "
                                         "runs past end of payload")
        flag = data[offset]
        offset += 1
        if flag == 0:
            graph = dataset.default_graph
        else:
            iri, offset = decode_string(data, offset)
            graph = dataset.graph(IRI(iri))
        state, offset, raw_len, stored_len = _decode_graph_state(
            data, offset, compressed=compressed)
        raw_bytes += raw_len
        stored_bytes += stored_len
        triples += graph._adopt_indexes(*state)
    elapsed = time.perf_counter() - started
    info = CheckpointInfo(path=path, last_commit_seq=last_commit_seq,
                          triples=triples, terms=n_terms,
                          named_graphs=n_graphs - 1, bytes=len(raw),
                          seconds=elapsed, compressed=compressed,
                          section_raw_bytes=raw_bytes,
                          section_stored_bytes=stored_bytes)
    return dataset, last_commit_seq, info
