"""Synthetic YAGO-4-like knowledge graph (paper Table I, Fig 14).

The real YAGO-4 has ~400M triples, 104 node types and 98 edge types; the
KGNet task on it is *place-country* node classification (1.2M places,
200 countries).  This generator reproduces the shape at laptop scale: a
relevant core of places, countries, people and organisations whose country
labels are learnable from geography-flavoured structure, plus a long tail of
creative works, events, products and taxonomy nodes that the meta-sampler
should prune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.generator import GeneratorConfig, KGBuilder
from repro.gml.tasks import TaskSpec, TaskType
from repro.rdf.graph import Graph
from repro.rdf.namespace import YAGO, SCHEMA
from repro.rdf.terms import IRI

__all__ = ["YAGOConfig", "generate_yago_kg", "yago_place_country_task"]


@dataclass
class YAGOConfig(GeneratorConfig):
    """Instance counts for the YAGO-4-like generator (before ``scale``)."""

    num_places: int = 400
    num_countries: int = 10
    num_people: int = 200
    num_organizations: int = 60
    num_events: int = 150
    num_creative_works: int = 250
    num_products: int = 120
    num_taxa: int = 80
    neighbors_per_place: float = 2.0
    people_per_place: float = 1.0
    #: Probability a place's neighbours / inhabitants share its country
    #: (the structural signal the classifier exploits).
    country_coherence: float = 0.85


def generate_yago_kg(config: YAGOConfig = None) -> Graph:
    """Generate the YAGO-4-like KG; deterministic for a fixed config seed."""
    config = config or YAGOConfig()
    builder = KGBuilder(YAGO, seed=config.seed + 1)
    rng = builder.rng

    num_places = config.scaled(config.num_places, minimum=20)
    num_countries = config.scaled(config.num_countries, minimum=3)
    num_people = config.scaled(config.num_people, minimum=10)
    num_organizations = config.scaled(config.num_organizations, minimum=5)

    countries = [builder.new_entity("Country", "country")
                 for _ in range(num_countries)]
    places = [builder.new_entity("Place", "place") for _ in range(num_places)]
    people = [builder.new_entity("Person", "person") for _ in range(num_people)]
    organizations = [builder.new_entity("Organization", "organization")
                     for _ in range(num_organizations)]

    # Assign each place a ground-truth country; the label edge is
    # yago:locatedInCountry (removed from the structure by the transformer).
    country_of_place = {}
    places_by_country: List[List[IRI]] = [[] for _ in range(num_countries)]
    for index, place in enumerate(places):
        country_index = index % num_countries
        country_of_place[place] = country_index
        places_by_country[country_index].append(place)
        builder.add(place, YAGO["locatedInCountry"], countries[country_index])
        if config.include_literals:
            builder.add_literal(place, SCHEMA["name"], f"Place {place.local_name()}")
            builder.add_literal(place, SCHEMA["population"], int(rng.integers(1000, 10_000_000)))

    # Structural signal 1: neighbouring places are (mostly) in the same country.
    for place in places:
        country_index = country_of_place[place]
        for _ in range(builder.poisson(config.neighbors_per_place, minimum=1)):
            if rng.random() < config.country_coherence and len(places_by_country[country_index]) > 1:
                neighbor = builder.choice(places_by_country[country_index])
            else:
                neighbor = builder.choice(places)
            if neighbor != place:
                builder.add(place, SCHEMA["containedInPlace"], neighbor)

    # Structural signal 2: people born in / living in places are citizens of
    # the corresponding country.
    for person in people:
        place = builder.choice(places)
        country_index = country_of_place[place]
        builder.add(person, SCHEMA["birthPlace"], place)
        if rng.random() < config.country_coherence:
            builder.add(person, SCHEMA["nationality"], countries[country_index])
        else:
            builder.add(person, SCHEMA["nationality"], builder.choice(countries))
        if rng.random() < 0.5:
            second_place = builder.choice(places_by_country[country_index])
            builder.add(person, SCHEMA["homeLocation"], second_place)
        if config.include_literals:
            builder.add_literal(person, SCHEMA["name"], f"Person {person.local_name()}")

    # Structural signal 3: organisations are headquartered in places.
    for organization in organizations:
        place = builder.choice(places)
        builder.add(organization, SCHEMA["location"], place)
        builder.add(organization, SCHEMA["foundingLocation"],
                    builder.choice(places_by_country[country_of_place[place]]))
        if config.include_literals:
            builder.add_literal(organization, SCHEMA["name"],
                                f"Organization {organization.local_name()}")

    # ------------------------------------------------------------------
    # Task-irrelevant long tail (creative works, events, products, taxa ...)
    # ------------------------------------------------------------------
    if config.include_irrelevant_structure:
        creative_works = [builder.new_entity("CreativeWork", "work")
                          for _ in range(config.scaled(config.num_creative_works, minimum=5))]
        events = [builder.new_entity("Event", "event")
                  for _ in range(config.scaled(config.num_events, minimum=5))]
        products = [builder.new_entity("Product", "product")
                    for _ in range(config.scaled(config.num_products, minimum=3))]
        taxa = [builder.new_entity("Taxon", "taxon")
                for _ in range(config.scaled(config.num_taxa, minimum=3))]
        genres = [builder.new_entity("Genre", "genre")
                  for _ in range(config.scaled(12, minimum=3))]
        languages = [builder.new_entity("Language", "language")
                     for _ in range(config.scaled(15, minimum=3))]
        awards = [builder.new_entity("Award", "award")
                  for _ in range(config.scaled(10, minimum=2))]

        for work in creative_works:
            builder.add(work, SCHEMA["author"], builder.choice(people))
            builder.add(work, SCHEMA["genre"], builder.choice(genres))
            builder.add(work, SCHEMA["inLanguage"], builder.choice(languages))
            if rng.random() < 0.5:
                builder.add(work, SCHEMA["locationCreated"], builder.choice(places))
            if rng.random() < 0.3:
                builder.add(work, SCHEMA["award"], builder.choice(awards))
            if config.include_literals:
                builder.add_literal(work, SCHEMA["datePublished"],
                                    int(1950 + rng.integers(0, 74)))
        for event in events:
            builder.add(event, SCHEMA["organizer"], builder.choice(organizations))
            builder.add(event, SCHEMA["performer"], builder.choice(people))
            # Events happen at random places regardless of country: noise for
            # the place-country task that only the full KG contains.
            builder.add(event, SCHEMA["location"], builder.choice(places))
            if config.include_literals:
                builder.add_literal(event, SCHEMA["startDate"],
                                    int(1990 + rng.integers(0, 34)))
        for product in products:
            builder.add(product, SCHEMA["manufacturer"], builder.choice(organizations))
            builder.add(product, SCHEMA["material"], builder.choice(taxa))
        for taxon in taxa:
            builder.add(taxon, SCHEMA["parentTaxon"], builder.choice(taxa))
        for language in languages:
            builder.add(language, SCHEMA["supersededBy"], builder.choice(languages))

    return builder.build()


def yago_place_country_task() -> TaskSpec:
    """Place-country node classification (paper Fig 14)."""
    return TaskSpec(
        task_type=TaskType.NODE_CLASSIFICATION,
        name="yago_place_country",
        target_node_type=YAGO["Place"],
        label_predicate=YAGO["locatedInCountry"],
    )
