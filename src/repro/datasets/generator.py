"""Shared machinery for the synthetic knowledge-graph generators.

The paper evaluates on DBLP (252M triples) and YAGO-4 (400M triples), which
are far beyond laptop scale and not redistributable here.  The generators in
:mod:`repro.datasets.dblp` and :mod:`repro.datasets.yago` produce *schema-
faithful*, seeded synthetic KGs instead: the node/edge type inventory mirrors
the real graphs (many task-irrelevant types, literal attributes, skewed
degree distributions) while the instance counts are scaled down.  What the
KGNet experiments measure — how much smaller and cheaper a task-specific
subgraph is, and whether accuracy survives — depends on that schema
heterogeneity, not on absolute size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, RDF_TYPE

__all__ = ["KGBuilder", "GeneratorConfig"]


@dataclass
class GeneratorConfig:
    """Base configuration shared by the synthetic generators."""

    seed: int = 7
    #: Global multiplier on instance counts (1.0 = default laptop scale).
    scale: float = 1.0
    #: Whether to attach literal attributes (titles, names, years ...).
    include_literals: bool = True
    #: Whether to attach the task-irrelevant "long tail" of node/edge types.
    include_irrelevant_structure: bool = True

    def scaled(self, count: int, minimum: int = 1) -> int:
        return max(minimum, int(round(count * self.scale)))


class KGBuilder:
    """Mutable helper accumulating triples for a synthetic KG."""

    def __init__(self, namespace: Namespace, seed: int = 7) -> None:
        self.ns = namespace
        self.graph = Graph()
        self.rng = np.random.default_rng(seed)
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Entity creation
    # ------------------------------------------------------------------
    def new_entity(self, type_name: str, prefix: Optional[str] = None) -> IRI:
        """Mint a fresh IRI of type ``type_name`` and assert its rdf:type."""
        prefix = prefix or type_name.lower()
        index = self._counters.get(prefix, 0)
        self._counters[prefix] = index + 1
        entity = self.ns[f"{prefix}/{index}"]
        self.graph.add(entity, RDF_TYPE, self.ns[type_name])
        return entity

    def entities_of(self, type_name: str) -> List[IRI]:
        return [s for s in self.graph.subjects(RDF_TYPE, self.ns[type_name])
                if isinstance(s, IRI)]

    # ------------------------------------------------------------------
    # Triple helpers
    # ------------------------------------------------------------------
    def add(self, subject: IRI, predicate: IRI, obj) -> None:
        self.graph.add(subject, predicate, obj)

    def add_literal(self, subject: IRI, predicate: IRI, value) -> None:
        self.graph.add(subject, predicate, Literal(value))

    def link_many(self, subjects: Sequence[IRI], predicate: IRI,
                  objects: Sequence[IRI], per_subject: int = 1,
                  replace: bool = False) -> None:
        """Link each subject to ``per_subject`` randomly drawn objects."""
        if not objects:
            raise DatasetError("cannot link to an empty object list")
        objects = list(objects)
        for subject in subjects:
            count = min(per_subject, len(objects)) if not replace else per_subject
            chosen = self.rng.choice(len(objects), size=count, replace=replace)
            for index in np.atleast_1d(chosen):
                self.add(subject, predicate, objects[int(index)])

    # ------------------------------------------------------------------
    # Random draws
    # ------------------------------------------------------------------
    def choice(self, items: Sequence, p: Optional[np.ndarray] = None):
        index = self.rng.choice(len(items), p=p)
        return items[int(index)]

    def zipf_choice(self, items: Sequence, exponent: float = 1.1):
        """Skewed (Zipf-like) draw — real KGs have heavy-tailed degree laws."""
        ranks = np.arange(1, len(items) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        weights /= weights.sum()
        return self.choice(items, p=weights)

    def poisson(self, mean: float, minimum: int = 0) -> int:
        return max(minimum, int(self.rng.poisson(mean)))

    def build(self) -> Graph:
        return self.graph
