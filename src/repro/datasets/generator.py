"""Shared machinery for the synthetic knowledge-graph generators.

The paper evaluates on DBLP (252M triples) and YAGO-4 (400M triples), which
are far beyond laptop scale and not redistributable here.  The generators in
:mod:`repro.datasets.dblp` and :mod:`repro.datasets.yago` produce *schema-
faithful*, seeded synthetic KGs instead: the node/edge type inventory mirrors
the real graphs (many task-irrelevant types, literal attributes, skewed
degree distributions) while the instance counts are scaled down.  What the
KGNet experiments measure — how much smaller and cheaper a task-specific
subgraph is, and whether accuracy survives — depends on that schema
heterogeneity, not on absolute size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, RDF_TYPE, Triple

__all__ = ["KGBuilder", "GeneratorConfig", "StreamingKGConfig",
           "stream_synthetic_kg", "materialize_synthetic_kg"]


@dataclass
class GeneratorConfig:
    """Base configuration shared by the synthetic generators."""

    seed: int = 7
    #: Global multiplier on instance counts (1.0 = default laptop scale).
    scale: float = 1.0
    #: Whether to attach literal attributes (titles, names, years ...).
    include_literals: bool = True
    #: Whether to attach the task-irrelevant "long tail" of node/edge types.
    include_irrelevant_structure: bool = True

    def scaled(self, count: int, minimum: int = 1) -> int:
        return max(minimum, int(round(count * self.scale)))


class KGBuilder:
    """Mutable helper accumulating triples for a synthetic KG."""

    def __init__(self, namespace: Namespace, seed: int = 7) -> None:
        self.ns = namespace
        self.graph = Graph()
        self.rng = np.random.default_rng(seed)
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Entity creation
    # ------------------------------------------------------------------
    def new_entity(self, type_name: str, prefix: Optional[str] = None) -> IRI:
        """Mint a fresh IRI of type ``type_name`` and assert its rdf:type."""
        prefix = prefix or type_name.lower()
        index = self._counters.get(prefix, 0)
        self._counters[prefix] = index + 1
        entity = self.ns[f"{prefix}/{index}"]
        self.graph.add(entity, RDF_TYPE, self.ns[type_name])
        return entity

    def entities_of(self, type_name: str) -> List[IRI]:
        return [s for s in self.graph.subjects(RDF_TYPE, self.ns[type_name])
                if isinstance(s, IRI)]

    # ------------------------------------------------------------------
    # Triple helpers
    # ------------------------------------------------------------------
    def add(self, subject: IRI, predicate: IRI, obj) -> None:
        self.graph.add(subject, predicate, obj)

    def add_literal(self, subject: IRI, predicate: IRI, value) -> None:
        self.graph.add(subject, predicate, Literal(value))

    def link_many(self, subjects: Sequence[IRI], predicate: IRI,
                  objects: Sequence[IRI], per_subject: int = 1,
                  replace: bool = False) -> None:
        """Link each subject to ``per_subject`` randomly drawn objects."""
        if not objects:
            raise DatasetError("cannot link to an empty object list")
        objects = list(objects)
        for subject in subjects:
            count = min(per_subject, len(objects)) if not replace else per_subject
            chosen = self.rng.choice(len(objects), size=count, replace=replace)
            for index in np.atleast_1d(chosen):
                self.add(subject, predicate, objects[int(index)])

    # ------------------------------------------------------------------
    # Random draws
    # ------------------------------------------------------------------
    def choice(self, items: Sequence, p: Optional[np.ndarray] = None):
        index = self.rng.choice(len(items), p=p)
        return items[int(index)]

    def zipf_choice(self, items: Sequence, exponent: float = 1.1):
        """Skewed (Zipf-like) draw — real KGs have heavy-tailed degree laws."""
        ranks = np.arange(1, len(items) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        weights /= weights.sum()
        return self.choice(items, p=weights)

    def poisson(self, mean: float, minimum: int = 0) -> int:
        return max(minimum, int(self.rng.poisson(mean)))

    def build(self) -> Graph:
        return self.graph


# ---------------------------------------------------------------------------
# Streaming synthetic KG (the join-ordering proving ground)
# ---------------------------------------------------------------------------

@dataclass
class StreamingKGConfig:
    """Configuration of the *streaming* Zipf-skewed synthetic KG.

    Unlike :class:`KGBuilder` (which accumulates a :class:`Graph` in
    memory), :func:`stream_synthetic_kg` yields triples one batch at a time
    — at the default ``num_triples`` of 10M, nothing but the current batch
    is ever materialised, so the generator feeds
    :func:`repro.storage.bulkload.stream_load_triples` (or a serializer) at
    any scale the indexes themselves fit.

    The shape is engineered to punish bad join orders:

    * entity in-degree follows a bounded Zipf law with ``zipf_exponent``
      (entity 0 is a huge hub, the tail is sparse),
    * predicate frequency follows a Zipf law over ``num_predicates`` ranks
      (``p0`` accounts for a large share of all edges, ``p23`` is rare),
    * every entity gets one ``rdf:type`` triple Zipf-drawn over
      ``num_types`` (``T0`` is huge), and exactly
      ``rare_type_cardinality`` entities additionally carry the
      ``RareType`` class — the selective anchor an optimizer should start
      from and a syntactic evaluator, handed the popular pattern first,
      will not.

    Same seed, same config → byte-identical triple stream.
    """

    seed: int = 7
    num_triples: int = 10_000_000
    num_predicates: int = 24
    num_types: int = 12
    #: Skew of the entity in-degree / predicate-frequency laws (must be >1
    #: for the bounded inverse-transform draw).
    zipf_exponent: float = 2.0
    #: Entities additionally typed ``RareType`` (the selective anchor).
    rare_type_cardinality: int = 20
    #: Triples sampled per numpy batch (the only transient allocation).
    batch_size: int = 100_000
    base_iri: str = "https://repro.example/skg/"

    def __post_init__(self) -> None:
        if self.num_triples <= 0:
            raise DatasetError("num_triples must be positive")
        if self.zipf_exponent <= 1.0:
            raise DatasetError("zipf_exponent must be > 1 (bounded Zipf)")
        if self.batch_size <= 0:
            raise DatasetError("batch_size must be positive")

    @property
    def num_entities(self) -> int:
        """Entity universe: ~1 type triple + ~7 edges per entity."""
        return max(1024, self.num_triples // 8)

    # -- the IRIs queries and benchmarks address -------------------------
    def entity(self, index: int) -> IRI:
        return IRI(f"{self.base_iri}e{index}")

    def predicate(self, rank: int) -> IRI:
        """Predicate by frequency rank — 0 is the most common."""
        return IRI(f"{self.base_iri}p{rank}")

    def entity_type(self, rank: int) -> IRI:
        """Class by frequency rank — 0 is the most common."""
        return IRI(f"{self.base_iri}T{rank}")

    @property
    def rare_type(self) -> IRI:
        return IRI(f"{self.base_iri}RareType")


def _bounded_zipf(rng: np.random.Generator, exponent: float, size: int,
                  upper: int) -> np.ndarray:
    """``size`` Zipf ranks truncated to ``[1, upper]`` (inverse transform).

    ``P(rank = k) ∝ k^-exponent``; draws past ``upper`` fold onto it, which
    only fattens the tail bucket marginally for exponents > 1.
    """
    u = rng.random(size)
    ranks = np.ceil(u ** (-1.0 / (exponent - 1.0)))
    return np.minimum(ranks, float(upper)).astype(np.int64)


def stream_synthetic_kg(config: Optional[StreamingKGConfig] = None,
                        ) -> Iterator[Triple]:
    """Yield the synthetic KG's triples without materialising the KG.

    Emission order: one ``rdf:type`` triple per entity (Zipf over classes),
    then the ``rare_type_cardinality`` RareType markers, then Zipf-skewed
    link triples until exactly ``config.num_triples`` have been yielded.
    The stream may contain a (tiny) fraction of duplicate link triples —
    loading through a set-semantics :class:`Graph` drops them, which is why
    loaders report ``triples_seen`` vs ``triples_added`` separately.
    """
    config = config or StreamingKGConfig()
    rng = np.random.default_rng(config.seed)
    base = config.base_iri
    num_entities = config.num_entities
    remaining = config.num_triples

    type_iris = [IRI(f"{base}T{rank}") for rank in range(config.num_types)]
    predicate_iris = [IRI(f"{base}p{rank}")
                      for rank in range(config.num_predicates)]
    rank_weights = np.arange(1, config.num_predicates + 1,
                             dtype=np.float64) ** -config.zipf_exponent
    rank_weights /= rank_weights.sum()
    rare_type = config.rare_type

    # Phase 1: one class-membership triple per entity, batched.
    for start in range(0, min(num_entities, remaining), config.batch_size):
        stop = min(start + config.batch_size, num_entities, remaining)
        type_ranks = _bounded_zipf(rng, config.zipf_exponent, stop - start,
                                   config.num_types)
        for index in range(start, stop):
            yield Triple(IRI(f"{base}e{index}"), RDF_TYPE,
                         type_iris[type_ranks[index - start] - 1])
    remaining -= min(num_entities, remaining)

    # Phase 2: the selective anchor class.  Low entity indexes are the Zipf
    # hubs, so RareType members are guaranteed to participate in joins.
    rare = min(config.rare_type_cardinality, num_entities, remaining)
    for index in range(rare):
        yield Triple(IRI(f"{base}e{index}"), RDF_TYPE, rare_type)
    remaining -= rare

    # Phase 3: Zipf-skewed link triples (uniform subjects, Zipf predicates,
    # Zipf hub objects) until the budget is spent.
    while remaining > 0:
        size = min(config.batch_size, remaining)
        subjects = rng.integers(0, num_entities, size=size)
        predicates = rng.choice(config.num_predicates, size=size,
                                p=rank_weights)
        objects = _bounded_zipf(rng, config.zipf_exponent, size,
                                num_entities) - 1
        for si, pi, oi in zip(subjects, predicates, objects):
            yield Triple(IRI(f"{base}e{si}"), predicate_iris[pi],
                         IRI(f"{base}e{oi}"))
        remaining -= size


def materialize_synthetic_kg(config: Optional[StreamingKGConfig] = None,
                             ) -> Graph:
    """Load the streamed KG into an in-memory :class:`Graph` (small scales).

    Tests and the benchmark harness use this below ~1M triples; beyond
    that, feed :func:`stream_synthetic_kg` to the bulk loader directly.
    """
    from repro.storage.bulkload import stream_load_triples

    config = config or StreamingKGConfig()
    graph = Graph()
    stream_load_triples(graph, stream_synthetic_kg(config))
    return graph
