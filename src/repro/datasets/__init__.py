"""Synthetic benchmark knowledge graphs and their standard GML tasks."""

from repro.datasets.generator import (
    GeneratorConfig,
    KGBuilder,
    StreamingKGConfig,
    materialize_synthetic_kg,
    stream_synthetic_kg,
)
from repro.datasets.dblp import (
    DBLPConfig,
    dblp_author_affiliation_task,
    dblp_author_similarity_task,
    dblp_paper_venue_task,
    generate_dblp_kg,
)
from repro.datasets.yago import YAGOConfig, generate_yago_kg, yago_place_country_task

__all__ = [
    "GeneratorConfig",
    "KGBuilder",
    "StreamingKGConfig",
    "stream_synthetic_kg",
    "materialize_synthetic_kg",
    "DBLPConfig",
    "generate_dblp_kg",
    "dblp_paper_venue_task",
    "dblp_author_affiliation_task",
    "dblp_author_similarity_task",
    "YAGOConfig",
    "generate_yago_kg",
    "yago_place_country_task",
]
