"""Synthetic DBLP-like knowledge graph (paper Table I, Figs 13 and 15).

The real DBLP RDF dump has ~252M triples, 42 node types and 48 edge types;
its two KGNet tasks are *paper-venue* node classification (50 venues) and
*author-affiliation* link prediction.  This generator reproduces the schema
shape at laptop scale:

* a **relevant core**: publications, authors, venues, affiliations, keywords
  and citations, with venue labels that are *learnable from structure*
  (papers of a research community share authors and keywords),
* a **task-irrelevant long tail**: publishers, editors, awards, projects,
  web pages, series ... connected to the core but useless for the tasks —
  this is what KGNet's meta-sampler prunes away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.generator import GeneratorConfig, KGBuilder
from repro.gml.tasks import TaskSpec, TaskType
from repro.rdf.graph import Graph
from repro.rdf.namespace import DBLP
from repro.rdf.terms import IRI

__all__ = ["DBLPConfig", "generate_dblp_kg", "dblp_paper_venue_task",
           "dblp_author_affiliation_task", "dblp_author_similarity_task"]


@dataclass
class DBLPConfig(GeneratorConfig):
    """Instance counts for the DBLP-like generator (before ``scale``)."""

    num_papers: int = 400
    num_authors: int = 200
    num_venues: int = 8
    num_affiliations: int = 24
    num_keywords: int = 60
    num_communities: int = 8
    num_publishers: int = 20
    num_series: int = 10
    num_projects: int = 120
    num_awards: int = 40
    authors_per_paper: float = 2.5
    keywords_per_paper: float = 2.0
    citations_per_paper: float = 2.0
    #: Probability that an author's affiliation matches their community's
    #: dominant affiliation (signal for the link-prediction task).
    affiliation_coherence: float = 0.8
    #: Probability a paper's venue matches its community's venue
    #: (signal for the node-classification task).
    venue_coherence: float = 0.85


def generate_dblp_kg(config: DBLPConfig = None) -> Graph:
    """Generate the DBLP-like KG; deterministic for a fixed config seed."""
    config = config or DBLPConfig()
    builder = KGBuilder(DBLP, seed=config.seed)
    rng = builder.rng

    num_papers = config.scaled(config.num_papers)
    num_authors = config.scaled(config.num_authors, minimum=10)
    num_venues = config.scaled(config.num_venues, minimum=3)
    num_affiliations = config.scaled(config.num_affiliations, minimum=4)
    num_keywords = config.scaled(config.num_keywords, minimum=10)
    num_communities = max(2, min(config.num_communities, num_venues))

    # ------------------------------------------------------------------
    # Core entities
    # ------------------------------------------------------------------
    venues = [builder.new_entity("Venue", "venue") for _ in range(num_venues)]
    affiliations = [builder.new_entity("Affiliation", "affiliation")
                    for _ in range(num_affiliations)]
    keywords = [builder.new_entity("Keyword", "keyword") for _ in range(num_keywords)]
    authors = [builder.new_entity("Person", "person") for _ in range(num_authors)]
    papers = [builder.new_entity("Publication", "publication") for _ in range(num_papers)]

    # Communities tie venues, authors, keywords and affiliations together so
    # the classification label (venue) is predictable from graph structure.
    community_of_venue = {venue: i % num_communities for i, venue in enumerate(venues)}
    venues_by_community: List[List[IRI]] = [[] for _ in range(num_communities)]
    for venue, community in community_of_venue.items():
        venues_by_community[community].append(venue)
    community_of_author = {author: int(rng.integers(num_communities))
                           for author in authors}
    community_of_keyword = {keyword: int(rng.integers(num_communities))
                            for keyword in keywords}
    community_affiliation = {community: affiliations[community % len(affiliations)]
                             for community in range(num_communities)}

    authors_by_community: List[List[IRI]] = [[] for _ in range(num_communities)]
    for author, community in community_of_author.items():
        authors_by_community[community].append(author)
    keywords_by_community: List[List[IRI]] = [[] for _ in range(num_communities)]
    for keyword, community in community_of_keyword.items():
        keywords_by_community[community].append(keyword)
    for community in range(num_communities):
        if not authors_by_community[community]:
            authors_by_community[community].append(authors[community % len(authors)])
        if not keywords_by_community[community]:
            keywords_by_community[community].append(keywords[community % len(keywords)])

    # ------------------------------------------------------------------
    # Authors: affiliations (the LP target), names, homepages
    # ------------------------------------------------------------------
    for author in authors:
        community = community_of_author[author]
        if rng.random() < config.affiliation_coherence:
            affiliation = community_affiliation[community]
        else:
            affiliation = builder.choice(affiliations)
        builder.add(author, DBLP["affiliation"], affiliation)
        if rng.random() < 0.6:
            builder.add(author, DBLP["primaryAffiliation"], affiliation)
        if config.include_literals:
            builder.add_literal(author, DBLP["name"], f"Author {author.local_name()}")
        if config.include_irrelevant_structure and rng.random() < 0.6:
            page = builder.new_entity("WebPage", "webpage")
            builder.add(author, DBLP["homepage"], page)
            if rng.random() < 0.4:
                builder.add(page, DBLP["archivedBy"], builder.choice(affiliations))

    # ------------------------------------------------------------------
    # Papers: venue labels (the NC target), authorship, keywords, citations
    # ------------------------------------------------------------------
    papers_by_community: List[List[IRI]] = [[] for _ in range(num_communities)]
    for paper in papers:
        community = int(rng.integers(num_communities))
        papers_by_community[community].append(paper)
        # Venue label — mostly the community's venue, sometimes noise.
        if rng.random() < config.venue_coherence:
            venue = builder.choice(venues_by_community[community])
        else:
            venue = builder.choice(venues)
        builder.add(paper, DBLP["publishedIn"], venue)

        num_paper_authors = builder.poisson(config.authors_per_paper, minimum=1)
        community_authors = authors_by_community[community]
        for _ in range(num_paper_authors):
            if rng.random() < 0.85:
                author = builder.zipf_choice(community_authors)
            else:
                author = builder.choice(authors)
            builder.add(paper, DBLP["authoredBy"], author)

        num_paper_keywords = builder.poisson(config.keywords_per_paper, minimum=1)
        community_keywords = keywords_by_community[community]
        for _ in range(num_paper_keywords):
            if rng.random() < 0.8:
                keyword = builder.choice(community_keywords)
            else:
                keyword = builder.choice(keywords)
            builder.add(paper, DBLP["hasKeyword"], keyword)

        if config.include_literals:
            builder.add_literal(paper, DBLP["title"], f"Paper {paper.local_name()}")
            builder.add_literal(paper, DBLP["yearOfPublication"],
                                int(2000 + rng.integers(0, 23)))
            if rng.random() < 0.4:
                builder.add_literal(paper, DBLP["pages"], f"{rng.integers(1, 20)}")

    # Citations: mostly within the same community.
    for community, community_papers in enumerate(papers_by_community):
        for paper in community_papers:
            for _ in range(builder.poisson(config.citations_per_paper)):
                if rng.random() < 0.8 and len(community_papers) > 1:
                    cited = builder.choice(community_papers)
                else:
                    cited = builder.choice(papers)
                if cited != paper:
                    builder.add(paper, DBLP["cites"], cited)

    # ------------------------------------------------------------------
    # Task-irrelevant structure (what meta-sampling prunes)
    # ------------------------------------------------------------------
    if config.include_irrelevant_structure:
        publishers = [builder.new_entity("Publisher", "publisher")
                      for _ in range(config.scaled(config.num_publishers, minimum=2))]
        series = [builder.new_entity("Series", "series")
                  for _ in range(config.scaled(config.num_series, minimum=2))]
        projects = [builder.new_entity("Project", "project")
                    for _ in range(config.scaled(config.num_projects, minimum=2))]
        awards = [builder.new_entity("Award", "award")
                  for _ in range(config.scaled(config.num_awards, minimum=2))]
        editors = [builder.new_entity("Editor", "editor")
                   for _ in range(config.scaled(40, minimum=2))]
        countries = [builder.new_entity("Country", "country")
                     for _ in range(config.scaled(20, minimum=3))]
        conferences_events = [builder.new_entity("ConferenceEvent", "event")
                              for _ in range(config.scaled(150, minimum=3))]
        grants = [builder.new_entity("Grant", "grant")
                  for _ in range(config.scaled(60, minimum=2))]
        datasets = [builder.new_entity("Dataset", "dataset")
                    for _ in range(config.scaled(80, minimum=2))]

        for venue in venues:
            builder.add(venue, DBLP["publishedBy"], builder.choice(publishers))
            builder.add(venue, DBLP["partOfSeries"], builder.choice(series))
            builder.add(venue, DBLP["editedBy"], builder.choice(editors))
            if config.include_literals:
                builder.add_literal(venue, DBLP["venueName"],
                                    f"Venue {venue.local_name()}")
        for affiliation in affiliations:
            builder.add(affiliation, DBLP["locatedInCountry"], builder.choice(countries))
            if config.include_literals:
                builder.add_literal(affiliation, DBLP["affiliationName"],
                                    f"Affiliation {affiliation.local_name()}")
        for event in conferences_events:
            builder.add(event, DBLP["eventOfSeries"], builder.choice(series))
            builder.add(event, DBLP["heldInCountry"], builder.choice(countries))
            # Events mention papers independently of the papers' communities:
            # pure noise for the venue-classification task, only present in
            # the full KG (meta-sampling d1h1 never reaches these edges).
            for _ in range(2):
                builder.add(event, DBLP["presentsPaper"], builder.choice(papers))
            if config.include_literals:
                builder.add_literal(event, DBLP["eventYear"],
                                    int(2000 + rng.integers(0, 23)))
        for project in projects:
            builder.add(project, DBLP["fundsAuthor"], builder.choice(authors))
            builder.add(project, DBLP["hostedBy"], builder.choice(affiliations))
        for award in awards:
            builder.add(award, DBLP["awardedTo"], builder.choice(authors))
            builder.add(award, DBLP["sponsoredBy"], builder.choice(publishers))
        for publisher in publishers:
            builder.add(publisher, DBLP["headquarteredIn"], builder.choice(countries))
        for editor in editors:
            builder.add(editor, DBLP["memberOf"], builder.choice(affiliations))
        for grant in grants:
            builder.add(grant, DBLP["fundsProject"], builder.choice(projects))
            builder.add(grant, DBLP["grantedBy"], builder.choice(countries))
        for dataset in datasets:
            builder.add(dataset, DBLP["producedBy"], builder.choice(projects))
            builder.add(dataset, DBLP["hostedAt"], builder.choice(affiliations))
            builder.add(dataset, DBLP["referencedBy"], builder.choice(papers))
            if config.include_literals:
                builder.add_literal(dataset, DBLP["datasetSize"],
                                    int(rng.integers(1, 100000)))

    return builder.build()


# ---------------------------------------------------------------------------
# Standard task definitions (paper Table I: NC, LP, ES on DBLP)
# ---------------------------------------------------------------------------

def dblp_paper_venue_task() -> TaskSpec:
    """Paper-venue node classification (paper Fig 13)."""
    return TaskSpec(
        task_type=TaskType.NODE_CLASSIFICATION,
        name="dblp_paper_venue",
        target_node_type=DBLP["Publication"],
        label_predicate=DBLP["publishedIn"],
    )


def dblp_author_affiliation_task() -> TaskSpec:
    """Author-affiliation link prediction (paper Fig 15)."""
    return TaskSpec(
        task_type=TaskType.LINK_PREDICTION,
        name="dblp_author_affiliation",
        source_node_type=DBLP["Person"],
        destination_node_type=DBLP["Affiliation"],
        target_predicate=DBLP["affiliation"],
    )


def dblp_author_similarity_task() -> TaskSpec:
    """Author entity-similarity search (the ES task of Table I)."""
    return TaskSpec(
        task_type=TaskType.ENTITY_SIMILARITY,
        name="dblp_author_similarity",
        entity_node_type=DBLP["Person"],
    )
