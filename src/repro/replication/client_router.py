"""The replica-aware client router: one client over a whole replica set.

:class:`ReplicaSetClient` gives an application a single object that makes
the primary + N replicas topology look like one endpoint with one
consistency story:

* **reads fan out** across the replicas round-robin; a replica that fails a
  request (connection refused, timeout, mid-stream death) is *ejected* for
  ``eject_seconds`` and silently re-admitted afterwards — the next read
  probes it again, so a restarted replica rejoins the rotation by itself.
  A replica that keeps *answering* but only with server-side 5xx errors is
  quarantined the same way after ``fault_quarantine_threshold`` consecutive
  faults; client-side errors (bad query, 4xx) are the request's own fault
  and propagate without touching replica health.  A replica shedding load
  (``ServerOverloaded``) is skipped for that one read but never ejected —
  busy is not broken,
* **writes pin to the primary**, and every update response's ``commit_seq``
  advances the session's write watermark,
* **read-your-writes** rides on that watermark: a read only goes to a
  replica whose *applied* sequence (from its cheap local
  ``replication/status`` document, cached for ``status_max_age`` seconds)
  has reached the session's last write; when every replica lags, the read
  falls back to the primary rather than returning stale bindings.

The router is deliberately client-side: the servers stay simple
(asynchronous shipping, no coordination), and each session buys exactly the
consistency it needs — monotonic read-your-writes for writers, any-replica
freshness for pure readers.
"""

from __future__ import annotations

import http.client
import threading
import time
from typing import Dict, List

from repro.exceptions import APIError, KGNetError, ServerOverloaded
from repro.kgnet.api.errors import error_code
from repro.server.client import RemoteClient
from repro.server.service import http_status_for_error
from repro.sparql.results.serialize import MEDIA_JSON

__all__ = ["ReplicaSetClient"]

#: Default quarantine after a failed request, in seconds.
DEFAULT_EJECT_SECONDS = 2.0

#: Consecutive server-side (5xx) faults before a replica that still answers
#: is quarantined like a dead one.
DEFAULT_FAULT_QUARANTINE_THRESHOLD = 3

#: How stale a cached replica status may be before the read path refreshes
#: it (only consulted when the cached applied seq is *behind* the session's
#: write watermark; an up-to-date cache entry short-circuits).
DEFAULT_STATUS_MAX_AGE = 0.25


class _ReplicaState:
    """Health + lag bookkeeping for one replica."""

    def __init__(self, url: str, timeout: float) -> None:
        self.url = url
        self.client = RemoteClient(url, timeout=timeout)
        self.applied_seq = 0
        self.status_at = 0.0
        self.ejected_until = 0.0
        self.failures = 0
        self.consecutive_faults = 0
        self.reads = 0

    def healthy(self, now: float) -> bool:
        return now >= self.ejected_until

    def as_dict(self, now: float) -> Dict[str, object]:
        return {
            "url": self.url,
            "applied_seq": self.applied_seq,
            "healthy": self.healthy(now),
            "ejected_for": max(0.0, round(self.ejected_until - now, 3)),
            "failures": self.failures,
            "consecutive_faults": self.consecutive_faults,
            "reads": self.reads,
        }


class ReplicaSetClient:
    """Routes reads across replicas, writes to the primary."""

    def __init__(self, primary_url: str, replica_urls: List[str],
                 eject_seconds: float = DEFAULT_EJECT_SECONDS,
                 status_max_age: float = DEFAULT_STATUS_MAX_AGE,
                 timeout: float = 30.0,
                 fault_quarantine_threshold: int =
                 DEFAULT_FAULT_QUARANTINE_THRESHOLD) -> None:
        self.primary = RemoteClient(primary_url, timeout=timeout)
        self._replicas = [_ReplicaState(url, timeout) for url in replica_urls]
        self.eject_seconds = eject_seconds
        self.status_max_age = status_max_age
        self.fault_quarantine_threshold = fault_quarantine_threshold
        self._lock = threading.Lock()
        self._rr = 0
        #: The session's write watermark: reads must observe at least this
        #: commit sequence.  0 until the first write — any replica serves.
        self.last_write_seq = 0
        #: Routing counters (where reads actually landed).
        self.replica_reads = 0
        self.primary_reads = 0
        self.ejections = 0

    # ------------------------------------------------------------------
    # Writes: pinned to the primary
    # ------------------------------------------------------------------
    def update(self, update: str) -> Dict[str, object]:
        """Apply a SPARQL update on the primary; advances the watermark."""
        payload = self.primary.protocol_update(update)
        result = payload.get("result")
        seq = None
        if isinstance(result, dict):
            seq = result.get("commit_seq")
        with self._lock:
            if isinstance(seq, int) and seq > self.last_write_seq:
                self.last_write_seq = seq
        return payload

    # ------------------------------------------------------------------
    # Reads: replica rotation with stickiness
    # ------------------------------------------------------------------
    def select(self, query: str,
               accept: str = MEDIA_JSON) -> List[Dict[str, Dict[str, str]]]:
        """SELECT on the freshest-enough replica, primary as last resort."""
        return self._read(lambda client: client.protocol_select(
            query, accept=accept))

    def ask(self, query: str) -> bool:
        return self._read(lambda client: client.protocol_ask(query))

    def _read(self, call):
        with self._lock:
            min_seq = self.last_write_seq
            candidates = self._rotation()
        for state in candidates:
            if not self._fresh_enough(state, min_seq):
                continue
            try:
                value = call(state.client)
            except ServerOverloaded:
                # Admission shed: the replica is busy, not broken.  (The
                # RemoteClient already burnt its own retry budget on it.)
                # Try the next one without touching replica health.
                continue
            except (http.client.HTTPException, OSError) as exc:
                # Transport-level failure: the replica is unreachable or
                # died mid-exchange — quarantine it immediately.
                self._eject(state, exc)
                continue
            except KGNetError as exc:
                # A typed error the replica *answered* with.  Client-fault
                # statuses (4xx, plus 501 not-implemented) would fail on
                # every replica identically: the request's own problem.
                # This must discriminate APIError subclasses too — a
                # replica answering BAD_REQUEST or CURSOR_ERROR is relaying
                # the *client's* mistake, not failing (catching them as
                # transport errors used to eject every replica in turn for
                # one malformed read).
                status = http_status_for_error(error_code(exc))
                if status < 500 or status == 501:
                    raise
                if isinstance(exc, APIError):
                    # A 5xx-class APIError is the transport reporting a
                    # broken exchange (non-envelope body, protocol
                    # violation): one strike, like a connection failure.
                    self._eject(state, exc)
                    continue
                # Server-side 5xx: a corrupt or sick replica often keeps
                # answering; repeated faults must quarantine it exactly
                # like a connection failure (it used to ride round-robin
                # forever, failing a share of all reads).
                self._fault(state, exc)
                continue
            state.consecutive_faults = 0
            state.reads += 1
            with self._lock:
                self.replica_reads += 1
            return value
        # Every replica is ejected, lagging, or just failed: the primary is
        # always sufficient (it trivially satisfies any watermark).
        with self._lock:
            self.primary_reads += 1
        return call(self.primary)

    def _rotation(self) -> List[_ReplicaState]:
        """Replicas in round-robin order starting at the cursor (locked)."""
        if not self._replicas:
            return []
        start = self._rr % len(self._replicas)
        self._rr += 1
        ordered = self._replicas[start:] + self._replicas[:start]
        now = time.time()
        return [state for state in ordered if state.healthy(now)]

    def _fresh_enough(self, state: _ReplicaState, min_seq: int) -> bool:
        """Can this replica serve a read that must observe ``min_seq``?

        The cached applied seq answers most calls; only a replica whose
        cache is both behind the watermark *and* stale pays a status
        round-trip (which doubles as a health probe for re-admission).
        """
        if state.applied_seq >= min_seq:
            return True
        if time.time() - state.status_at < self.status_max_age:
            return False
        try:
            status = state.client.replication_status()
        except (APIError, http.client.HTTPException, OSError) as exc:
            # Unlike reads, the status document is not client input: any
            # failure here is the replica's own (transport or otherwise).
            self._eject(state, exc)
            return False
        applied = status.get("applied_seq", status.get("last_seq", 0))
        state.applied_seq = int(applied) if isinstance(applied, int) else 0
        state.status_at = time.time()
        return state.applied_seq >= min_seq

    def _fault(self, state: _ReplicaState, exc: BaseException) -> None:
        """Count a server-side (5xx) answer; quarantine at the threshold."""
        state.consecutive_faults += 1
        if state.consecutive_faults >= self.fault_quarantine_threshold:
            self._eject(state, exc)

    def _eject(self, state: _ReplicaState, exc: BaseException) -> None:
        state.failures += 1
        state.consecutive_faults = 0
        state.ejected_until = time.time() + self.eject_seconds
        # A broken keep-alive socket must not poison the next attempt.
        state.client.close()
        with self._lock:
            self.ejections += 1

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        now = time.time()
        return {
            "last_write_seq": self.last_write_seq,
            "replica_reads": self.replica_reads,
            "primary_reads": self.primary_reads,
            "ejections": self.ejections,
            "replicas": [state.as_dict(now) for state in self._replicas],
        }

    def replication_overview(self) -> Dict[str, object]:
        """Primary + per-replica status documents (one round-trip each)."""
        overview: Dict[str, object] = {"primary": None, "replicas": []}
        try:
            overview["primary"] = self.primary.replication_status()
        except (APIError, OSError) as exc:
            overview["primary"] = {"error": str(exc)}
        for state in self._replicas:
            try:
                overview["replicas"].append(state.client.replication_status())
            except (APIError, OSError) as exc:
                overview["replicas"].append({"url": state.url,
                                             "error": str(exc)})
        return overview

    def close(self) -> None:
        self.primary.close()
        for state in self._replicas:
            state.client.close()

    def __enter__(self) -> "ReplicaSetClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<ReplicaSetClient primary={self.primary!r} "
                f"replicas={len(self._replicas)}>")
