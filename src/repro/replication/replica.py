"""The log-shipping follower: a live, read-only copy of a primary.

:class:`ReplicaEngine` owns its own data directory (never the primary's —
the storage LOCK file enforces that) and keeps it converging on the
primary's state through two mechanisms, both built on the storage layer's
existing machinery rather than a parallel code path:

* **tail-apply** — poll ``GET /kgnet/v1/replication/wal?after_seq=S`` for
  the raw CRC-framed bytes of every commit after the last applied sequence,
  persist each transaction verbatim into the local WAL *first* (so a
  follower crash replays from its own log, the same recovery invariant the
  primary has), then apply its decoded ops to the in-memory dataset under
  the write lock — one epoch bump per shipped commit, so serving readers
  see each transaction atomically, exactly as the primary's readers did;
* **snapshot bootstrap** — when the primary answers 410 (the requested
  range was compacted away by segment retention), fetch the latest
  checkpoint file verbatim, install it as the local checkpoint, wipe the
  local log, and recover from it — then resume tailing from its sequence.

The apply loop runs on a one-thread :class:`~repro.concurrency.WorkerPool`;
queries serve through the normal endpoint/router stack concurrently, with
the router flipped to read-only so writes are refused with a stable error
code instead of silently diverging the replica.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from repro.concurrency import WorkerPool
from repro.exceptions import ReplicationError, WalTruncatedError
from repro.kgnet.platform import KGNet
from repro.server.client import RemoteClient
from repro.sparql.endpoint import SPARQLEndpoint
from repro.storage.engine import StorageEngine
from repro.storage.format import fsync_directory
from repro.storage.wal import decode_transaction_ops, split_transaction_stream

__all__ = ["ReplicaEngine"]

#: Local checkpoint once the replica's WAL grows past this (bounds replay
#: time after a follower restart; replicas keep no segments of their own).
DEFAULT_CHECKPOINT_WAL_BYTES = 8 * 1024 * 1024


class ReplicaEngine:
    """A read replica of one primary, serving while it applies."""

    def __init__(self, directory: str, primary_url: str,
                 poll_interval: float = 0.1,
                 fsync: bool = False,
                 checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
                 client_timeout: float = 30.0) -> None:
        self.directory = directory
        self.primary_url = primary_url
        self.poll_interval = poll_interval
        self.checkpoint_wal_bytes = checkpoint_wal_bytes
        #: Followers default to fsync=False: a lost local commit is always
        #: recoverable from the primary, so follower durability buys little
        #: and costs one fsync per shipped transaction.
        self.storage = StorageEngine(directory, fsync=fsync,
                                     retain_segments=0)
        self.client = RemoteClient(primary_url, timeout=client_timeout)
        self.platform: Optional[KGNet] = None
        self._pool: Optional[WorkerPool] = None
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._applied_seq = 0
        #: Wall-clock of the last successful poll that left us caught up or
        #: advanced us (the freshness half of replication lag).
        self._last_progress: Optional[float] = None
        self._last_applied_at: Optional[float] = None
        #: Counters surfaced through replication_status().
        self.transactions_applied = 0
        self.ops_applied = 0
        self.bytes_shipped = 0
        self.snapshot_bootstraps = 0
        self.poll_errors = 0
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> KGNet:
        """Open local state, build the serving platform, start tailing."""
        if self.platform is not None:
            return self.platform
        dataset = self.storage.open()
        self._detach_journal()
        self._applied_seq = self.storage._wal.last_seq
        endpoint = SPARQLEndpoint(dataset=dataset)
        platform = KGNet(endpoint=endpoint)
        platform.api.read_only = True
        platform.api.replication = self
        self.platform = platform
        self._stop.clear()
        self._pool = WorkerPool(max_workers=1, name="kgnet-replica-apply")
        self._pool.submit(self._run)
        return platform

    def stop(self) -> None:
        self._stop.set()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.client.close()
        self.storage.close()
        self.platform = None

    def __enter__(self) -> "ReplicaEngine":
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def _detach_journal(self) -> None:
        """Serve read-only: applied ops must not be re-journalled.

        The WAL object stays alive for raw verbatim appends
        (:meth:`~repro.storage.wal.WriteAheadLog.append_raw_transaction`);
        only the dataset-side journal hooks are disconnected.
        """
        dataset = self.storage.dataset
        dataset.attach_journal(None)
        if self.storage._lock_obj is not None:
            self.storage._lock_obj.journal = None

    # ------------------------------------------------------------------
    # The apply loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                self.poll_errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                # A dead primary connection must not be held open half-used.
                self.client.close()
            self._stop.wait(self.poll_interval)

    def poll_once(self) -> int:
        """One fetch/apply round; returns the number of commits applied.

        Public so tests (and an embedding process that wants deterministic
        control) can drive the follower without the background loop.
        """
        try:
            data = self.client.replication_wal(self._applied_seq)
        except WalTruncatedError:
            # Retention outran us (or we are brand new): start over from
            # the primary's checkpoint, then resume tailing from its seq.
            self.bootstrap_from_snapshot()
            return 0
        applied = 0
        for seq, raw in split_transaction_stream(data):
            self._apply_transaction(seq, raw)
            applied += 1
        now = time.time()
        with self._state_lock:
            self._last_progress = now
        self.last_error = None
        if (self.storage._wal is not None
                and self.storage._wal.size_bytes() > self.checkpoint_wal_bytes):
            self._local_checkpoint()
        return applied

    def _apply_transaction(self, seq: int, raw: bytes) -> None:
        if seq <= self._applied_seq:
            return  # duplicate from an overlapping segment hand-off
        if seq != self._applied_seq + 1:
            raise ReplicationError(
                f"replication stream gap: expected seq {self._applied_seq + 1}, "
                f"got {seq}")
        # WAL before apply: once the bytes are in the local log, a crash at
        # any later point replays this transaction on restart.
        self.storage._wal.append_raw_transaction(seq, raw)
        _seq, ops = decode_transaction_ops(raw)
        dataset = self.storage.dataset
        with dataset.write_lock:
            StorageEngine._apply_ops(dataset, ops)
        # The epoch bump happened at lock release, so serving readers can
        # already see the commit — advance the applied seq only now, which
        # keeps read-your-writes honest: status never claims a seq whose
        # data a query could still miss.
        now = time.time()
        with self._state_lock:
            self._applied_seq = seq
            self._last_applied_at = now
            self._last_progress = now
        self.transactions_applied += 1
        self.ops_applied += len(ops)
        self.bytes_shipped += len(raw)

    def _local_checkpoint(self) -> None:
        """Compact the local log so a follower restart replays hours, not days."""
        self.storage.checkpoint()

    # ------------------------------------------------------------------
    # Snapshot bootstrap
    # ------------------------------------------------------------------
    def bootstrap_from_snapshot(self) -> int:
        """Replace all local state with the primary's latest checkpoint.

        Returns the commit seq the snapshot covers.  The swap is atomic at
        the file level (write + rename) and at the serving level
        (:meth:`~repro.sparql.endpoint.SPARQLEndpoint.replace_dataset`), so
        concurrent readers see either the old state or the new one, never a
        mix.
        """
        data, seq = self.client.replication_snapshot()
        temp = self.storage.checkpoint_path + ".ship"
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.storage.checkpoint_path)
        fsync_directory(self.directory)
        # The old WAL describes the state we just threw away.
        try:
            os.remove(self.storage.wal_path)
        except OSError:
            pass
        self.storage.archive.clear()
        dataset = self.storage.reopen()
        self._detach_journal()
        platform = self.platform
        if platform is not None:
            platform.endpoint.replace_dataset(dataset)
        now = time.time()
        with self._state_lock:
            self._applied_seq = self.storage._wal.last_seq
            self._last_applied_at = now
            self._last_progress = now
        self.snapshot_bootstraps += 1
        return seq

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def applied_seq(self) -> int:
        with self._state_lock:
            return self._applied_seq

    def replication_lag(self) -> Dict[str, object]:
        """Sequence + wall-clock lag behind the primary.

        The sequence half asks the primary for its current seq (best
        effort: ``primary_seq`` is None when the primary is unreachable);
        the wall-clock half is purely local — seconds since the last poll
        that proved us caught up or moved us forward.
        """
        primary_seq: Optional[int] = None
        try:
            status = self.client.replication_status()
            primary_seq = int(status.get("last_seq", 0))
        except Exception:  # noqa: BLE001 — lag reporting must not raise
            pass
        with self._state_lock:
            applied = self._applied_seq
            progress = self._last_progress
        return {
            "applied_seq": applied,
            "primary_seq": primary_seq,
            "seq_lag": (primary_seq - applied
                        if primary_seq is not None else None),
            "seconds_since_progress": (round(time.time() - progress, 6)
                                       if progress is not None else None),
        }

    def replication_status(self) -> Dict[str, object]:
        """The local status document served by ``replication/status``.

        Deliberately cheap and self-contained — the client router polls it
        on the read path, so it must never block on the primary.
        """
        with self._state_lock:
            applied = self._applied_seq
            progress = self._last_progress
            applied_at = self._last_applied_at
        return {
            "role": "replica",
            "read_only": True,
            "primary_url": self.primary_url,
            "applied_seq": applied,
            "last_seq": applied,
            "seconds_since_progress": (round(time.time() - progress, 6)
                                       if progress is not None else None),
            "last_applied_at": applied_at,
            "transactions_applied": self.transactions_applied,
            "ops_applied": self.ops_applied,
            "bytes_shipped": self.bytes_shipped,
            "snapshot_bootstraps": self.snapshot_bootstraps,
            "poll_errors": self.poll_errors,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:
        return (f"<ReplicaEngine {self.directory!r} <- {self.primary_url} "
                f"applied_seq={self.applied_seq}>")
