"""Scale-out serving: WAL log-shipping replication for the KGNet platform.

The storage engine already produces everything a read replica needs —
sequence-numbered committed WAL frames, restartable checkpoints, an HTTP
transport — and this package assembles them into a primary + N follower
deployment:

* :class:`~repro.replication.replica.ReplicaEngine` — a follower that
  bootstraps from the primary's checkpoint, tail-applies shipped commit
  frames into a live read-only dataset, and serves queries through the
  normal endpoints while applying,
* :class:`~repro.replication.client_router.ReplicaSetClient` — a client-side
  router that fans reads across replicas (round-robin with health/lag
  ejection), pins writes to the primary, and keeps read-your-writes
  consistency per session via commit-sequence stickiness,
* ``python -m repro.replication`` — a tiny CLI that runs one node (primary
  or replica), used by the examples, the benchmark, and the multi-process
  test harness.

Replication is asynchronous and single-writer: the primary never waits for
followers, a follower is eventually consistent, and consistency guarantees
stronger than that live in the client router, not the server.
"""

from repro.replication.client_router import ReplicaSetClient
from repro.replication.replica import ReplicaEngine

__all__ = ["ReplicaEngine", "ReplicaSetClient"]
