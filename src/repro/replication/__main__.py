"""Run one replication node: ``python -m repro.replication primary|replica``.

The process model is one node per process, each with its own data directory
(the storage LOCK file refuses a shared one) and its own HTTP port:

    python -m repro.replication primary --dir /data/p --port 8100
    python -m repro.replication replica --dir /data/r1 --port 8101 \
        --primary http://127.0.0.1:8100

The first stdout line is ``KGNET_NODE <role> <base_url>`` (flushed), which
is how the multi-process tests, the example, and the benchmark discover the
ephemeral port when started with ``--port 0``.  The process then serves
until SIGTERM/SIGINT, shutting the node down cleanly so a primary's WAL is
never left with a torn frame that a restart would have to truncate.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.kgnet.platform import KGNet
from repro.replication.replica import ReplicaEngine
from repro.server.http import KGNetHTTPServer
from repro.storage.engine import StorageEngine


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication",
        description="Run one KGNet replication node (primary or replica).")
    sub = parser.add_subparsers(dest="role", required=True)

    primary = sub.add_parser("primary", help="writable primary node")
    primary.add_argument("--dir", required=True, help="data directory")
    primary.add_argument("--port", type=int, default=0,
                         help="HTTP port (0 = ephemeral, printed on stdout)")
    primary.add_argument("--host", default="127.0.0.1")
    primary.add_argument("--retain-segments", type=int, default=8,
                         help="archived WAL segments kept for followers")
    primary.add_argument("--no-fsync", action="store_true",
                         help="skip per-commit fsync (tests/benchmarks)")

    replica = sub.add_parser("replica", help="read-only follower node")
    replica.add_argument("--dir", required=True, help="data directory")
    replica.add_argument("--port", type=int, default=0,
                         help="HTTP port (0 = ephemeral, printed on stdout)")
    replica.add_argument("--host", default="127.0.0.1")
    replica.add_argument("--primary", required=True,
                         help="base URL of the primary, e.g. http://127.0.0.1:8100")
    replica.add_argument("--poll-interval", type=float, default=0.1,
                         help="seconds between WAL polls")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda _s, _f: stop.set())

    if args.role == "primary":
        storage = StorageEngine(args.dir, fsync=not args.no_fsync,
                                retain_segments=args.retain_segments)
        platform = KGNet(storage=storage)
        router = platform.api
        shutdown = storage.close
    else:
        engine = ReplicaEngine(args.dir, args.primary,
                               poll_interval=args.poll_interval)
        platform = engine.start()
        router = platform.api
        shutdown = engine.stop

    server = KGNetHTTPServer((args.host, args.port), router=router)
    server.start()
    print(f"KGNET_NODE {args.role} {server.base_url}", flush=True)
    try:
        stop.wait()
    finally:
        server.stop()
        shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
