"""GML task definitions.

A :class:`TaskSpec` captures what the SPARQL-ML ``TrainGML`` JSON object
(paper Fig 8) describes: the task type, the target node type and label
predicate for node classification, or the source/destination node types and
target predicate for link prediction, plus an optional similarity-search
configuration for entity matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import DatasetError
from repro.rdf.terms import IRI

__all__ = ["TaskType", "TaskSpec"]


class TaskType:
    """String constants for the three GML tasks KGNet supports."""

    NODE_CLASSIFICATION = "node_classification"
    LINK_PREDICTION = "link_prediction"
    ENTITY_SIMILARITY = "entity_similarity"

    ALL = (NODE_CLASSIFICATION, LINK_PREDICTION, ENTITY_SIMILARITY)


@dataclass
class TaskSpec:
    """A fully specified GML task on a knowledge graph."""

    task_type: str
    name: str = ""
    #: Node classification: the type of the nodes being classified and the
    #: predicate whose object is the class label.
    target_node_type: Optional[IRI] = None
    label_predicate: Optional[IRI] = None
    #: Link prediction: source/destination node types and the predicate whose
    #: missing edges the model predicts.
    source_node_type: Optional[IRI] = None
    destination_node_type: Optional[IRI] = None
    target_predicate: Optional[IRI] = None
    #: Entity similarity: the node type whose embeddings are indexed.
    entity_node_type: Optional[IRI] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.task_type not in TaskType.ALL:
            raise DatasetError(f"unknown task type {self.task_type!r}")
        if self.task_type == TaskType.NODE_CLASSIFICATION:
            if self.target_node_type is None or self.label_predicate is None:
                raise DatasetError(
                    "node classification requires target_node_type and label_predicate")
        elif self.task_type == TaskType.LINK_PREDICTION:
            if self.target_predicate is None:
                raise DatasetError("link prediction requires target_predicate")
        elif self.task_type == TaskType.ENTITY_SIMILARITY:
            if self.entity_node_type is None:
                raise DatasetError("entity similarity requires entity_node_type")
        if not self.name:
            self.name = self._default_name()

    def _default_name(self) -> str:
        if self.task_type == TaskType.NODE_CLASSIFICATION:
            return (f"nc_{self.target_node_type.local_name()}"
                    f"_{self.label_predicate.local_name()}")
        if self.task_type == TaskType.LINK_PREDICTION:
            return f"lp_{self.target_predicate.local_name()}"
        return f"es_{self.entity_node_type.local_name()}"

    #: The node type the meta-sampler starts from.
    @property
    def seed_node_type(self) -> Optional[IRI]:
        if self.task_type == TaskType.NODE_CLASSIFICATION:
            return self.target_node_type
        if self.task_type == TaskType.LINK_PREDICTION:
            return self.source_node_type
        return self.entity_node_type

    def as_dict(self) -> Dict[str, object]:
        def iri(value: Optional[IRI]) -> Optional[str]:
            return value.value if value is not None else None
        return {
            "task_type": self.task_type,
            "name": self.name,
            "target_node_type": iri(self.target_node_type),
            "label_predicate": iri(self.label_predicate),
            "source_node_type": iri(self.source_node_type),
            "destination_node_type": iri(self.destination_node_type),
            "target_predicate": iri(self.target_predicate),
            "entity_node_type": iri(self.entity_node_type),
        }

    _IRI_FIELDS = ("target_node_type", "label_predicate", "source_node_type",
                   "destination_node_type", "target_predicate", "entity_node_type")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TaskSpec":
        """Inverse of :meth:`as_dict`; IRI fields arrive as plain strings."""
        if "task_type" not in payload:
            raise DatasetError("task payload misses 'task_type'")
        kwargs: Dict[str, object] = {
            "task_type": payload["task_type"],
            "name": str(payload.get("name") or ""),
        }
        for name in cls._IRI_FIELDS:
            value = payload.get(name)
            if isinstance(value, IRI):
                kwargs[name] = value
            elif value is not None:
                kwargs[name] = IRI(str(value))
        extra = payload.get("extra")
        if isinstance(extra, dict):
            kwargs["extra"] = dict(extra)
        return cls(**kwargs)
