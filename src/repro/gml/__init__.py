"""Graph machine learning framework substrate (the PyG/DGL/OGB stand-in).

Sub-packages:

* :mod:`repro.gml.autograd` — numpy reverse-mode autodiff,
* :mod:`repro.gml.data` / :mod:`repro.gml.transform` / :mod:`repro.gml.splits`
  — sparse-matrix graph data and the RDF dataset transformer,
* :mod:`repro.gml.sampling` — GraphSAINT, ShaDow, neighbour and triple samplers,
* :mod:`repro.gml.nn` — GNN layers / models and optimizers,
* :mod:`repro.gml.kge` — TransE, DistMult, ComplEx, RotatE, MorsE,
* :mod:`repro.gml.train` — trainers, metrics, budgets, cost estimators.
"""

from repro.gml.data import GraphData, TriplesData, xavier_features
from repro.gml.transform import RDFGraphTransformer, TransformReport
from repro.gml.splits import SplitFractions, community_split, random_split, split_masks

__all__ = [
    "GraphData",
    "TriplesData",
    "xavier_features",
    "RDFGraphTransformer",
    "TransformReport",
    "SplitFractions",
    "community_split",
    "random_split",
    "split_masks",
]
