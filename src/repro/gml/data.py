"""In-memory graph data structures used for GML training.

These classes are the sparse-matrix representation the paper's *Dataset
Transformer* produces (Fig 6): a homogeneous-index, heterogeneous-typed graph
(:class:`GraphData`) for node classification with GNNs, and a triple-factored
view (:class:`TriplesData`) for KGE-based link prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse as sp

from repro.exceptions import DatasetError

__all__ = ["GraphData", "TriplesData", "xavier_features"]


def xavier_features(num_nodes: int, dim: int, seed: int = 0) -> np.ndarray:
    """Xavier/Glorot-uniform random node features.

    The paper initialises node features randomly with Xavier initialisation
    in every experiment (§V-A), so the transformer does the same.
    """
    rng = np.random.default_rng(seed)
    bound = np.sqrt(6.0 / dim)
    return rng.uniform(-bound, bound, size=(num_nodes, dim))


@dataclass
class GraphData:
    """A typed multigraph in index space, ready for GNN training."""

    num_nodes: int
    edge_index: np.ndarray            # (2, E) int64 — source, destination
    edge_type: np.ndarray             # (E,) int64 — relation id per edge
    num_relations: int
    features: np.ndarray              # (N, F) float64
    labels: np.ndarray                # (N,) int64, -1 where unlabeled
    num_classes: int
    train_mask: np.ndarray            # (N,) bool
    val_mask: np.ndarray              # (N,) bool
    test_mask: np.ndarray             # (N,) bool
    node_names: List[str] = field(default_factory=list)
    node_types: Optional[np.ndarray] = None
    node_type_names: List[str] = field(default_factory=list)
    relation_names: List[str] = field(default_factory=list)
    class_names: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Validation and derived quantities
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_type = np.asarray(self.edge_type, dtype=np.int64).reshape(-1)
        if self.edge_index.shape[1] != self.edge_type.shape[0]:
            raise DatasetError("edge_index and edge_type disagree on the number of edges")
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise DatasetError("edge_index references a node id >= num_nodes")
        if self.features.shape[0] != self.num_nodes:
            raise DatasetError("feature matrix has the wrong number of rows")
        if self.labels.shape[0] != self.num_nodes:
            raise DatasetError("label vector has the wrong length")
        for mask in (self.train_mask, self.val_mask, self.test_mask):
            if mask.shape[0] != self.num_nodes:
                raise DatasetError("split mask has the wrong length")

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    def labeled_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.labels >= 0)

    # ------------------------------------------------------------------
    # Sparse adjacency construction
    # ------------------------------------------------------------------
    def adjacency(self, relation: Optional[int] = None, add_self_loops: bool = True,
                  normalize: bool = True, symmetric: bool = True) -> sp.csr_matrix:
        """Build a (normalised) sparse adjacency matrix.

        ``relation`` restricts the edges to one relation type (used by RGCN);
        ``None`` merges all relations (used by GCN/GraphSAINT aggregation).
        With ``symmetric=True`` (the default) every edge also contributes its
        inverse, so messages flow both along and against edge direction —
        the usual practice for RDF graphs where most predicates have an
        implicit inverse (``authoredBy`` vs ``authorOf``).
        """
        if relation is None:
            mask = np.ones(self.num_edges, dtype=bool)
        else:
            mask = self.edge_type == relation
        src = self.edge_index[0, mask]
        dst = self.edge_index[1, mask]
        if symmetric:
            src, dst = (np.concatenate([src, dst]), np.concatenate([dst, src]))
        values = np.ones(src.shape[0], dtype=np.float64)
        adj = sp.coo_matrix((values, (dst, src)),
                            shape=(self.num_nodes, self.num_nodes))
        adj = adj.tocsr()
        if add_self_loops:
            adj = adj + sp.eye(self.num_nodes, format="csr")
        if normalize:
            degree = np.asarray(adj.sum(axis=1)).reshape(-1)
            degree[degree == 0] = 1.0
            inv = sp.diags(1.0 / degree)
            adj = inv @ adj
        return adj.tocsr()

    def relation_adjacencies(self, add_self_loops: bool = False,
                             normalize: bool = True,
                             symmetric: bool = True) -> List[sp.csr_matrix]:
        """One adjacency matrix per relation (RGCN message passing)."""
        return [self.adjacency(relation=r, add_self_loops=add_self_loops,
                               normalize=normalize, symmetric=symmetric)
                for r in range(self.num_relations)]

    # Cached variants: adjacency construction is the dominant per-forward cost
    # for full-batch training, so models memoise it on the data object itself
    # (the cache dies with the GraphData, which matters for sampled batches).
    def cached_adjacency(self) -> sp.csr_matrix:
        cache = getattr(self, "_adjacency_cache", None)
        if cache is None:
            cache = self.adjacency()
            object.__setattr__(self, "_adjacency_cache", cache)
        return cache

    def cached_relation_adjacencies(self) -> List[sp.csr_matrix]:
        cache = getattr(self, "_relation_adjacency_cache", None)
        if cache is None:
            cache = self.relation_adjacencies()
            object.__setattr__(self, "_relation_adjacency_cache", cache)
        return cache

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, node_indices: np.ndarray) -> Tuple["GraphData", np.ndarray]:
        """Induce the subgraph on ``node_indices``.

        Returns the new :class:`GraphData` plus the array mapping new node ids
        to the original ids.
        """
        node_indices = np.unique(np.asarray(node_indices, dtype=np.int64))
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[node_indices] = np.arange(node_indices.shape[0])
        src, dst = self.edge_index
        keep = (remap[src] >= 0) & (remap[dst] >= 0)
        new_edge_index = np.stack([remap[src[keep]], remap[dst[keep]]])
        new_edge_type = self.edge_type[keep]
        sub = GraphData(
            num_nodes=node_indices.shape[0],
            edge_index=new_edge_index,
            edge_type=new_edge_type,
            num_relations=self.num_relations,
            features=self.features[node_indices],
            labels=self.labels[node_indices],
            num_classes=self.num_classes,
            train_mask=self.train_mask[node_indices],
            val_mask=self.val_mask[node_indices],
            test_mask=self.test_mask[node_indices],
            node_names=[self.node_names[i] for i in node_indices] if self.node_names else [],
            node_types=self.node_types[node_indices] if self.node_types is not None else None,
            node_type_names=self.node_type_names,
            relation_names=self.relation_names,
            class_names=self.class_names,
        )
        return sub, node_indices

    def neighbors(self, nodes: np.ndarray, bidirectional: bool = True) -> np.ndarray:
        """Return the union of one-hop neighbours of ``nodes``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        node_set = np.zeros(self.num_nodes, dtype=bool)
        node_set[nodes] = True
        src, dst = self.edge_index
        out_neighbors = dst[node_set[src]]
        if bidirectional:
            in_neighbors = src[node_set[dst]]
            return np.unique(np.concatenate([out_neighbors, in_neighbors]))
        return np.unique(out_neighbors)

    # ------------------------------------------------------------------
    # Memory accounting (used by the GML method cost estimators)
    # ------------------------------------------------------------------
    def sparse_matrix_bytes(self, per_relation: bool = False) -> int:
        """Approximate bytes of the adjacency structure(s) a method materialises."""
        bytes_per_edge = 8 + 8 + 8  # indices + indptr amortised + value
        if per_relation:
            # RGCN materialises one matrix per relation plus per-relation weights.
            return self.num_edges * bytes_per_edge + self.num_relations * self.num_nodes * 8
        return self.num_edges * bytes_per_edge

    def feature_bytes(self) -> int:
        return int(self.features.size * 8)

    def __repr__(self) -> str:
        return (f"<GraphData nodes={self.num_nodes} edges={self.num_edges} "
                f"relations={self.num_relations} classes={self.num_classes}>")


@dataclass
class TriplesData:
    """Triple-factored view of a KG for link prediction / KGE training."""

    num_entities: int
    num_relations: int
    triples: np.ndarray               # (T, 3) int64 — head, relation, tail
    train_idx: np.ndarray             # indices into triples
    valid_idx: np.ndarray
    test_idx: np.ndarray
    entity_names: List[str] = field(default_factory=list)
    relation_names: List[str] = field(default_factory=list)
    target_relation: Optional[int] = None

    def __post_init__(self) -> None:
        self.triples = np.asarray(self.triples, dtype=np.int64).reshape(-1, 3)
        if self.triples.size:
            if self.triples[:, [0, 2]].max() >= self.num_entities:
                raise DatasetError("triples reference an entity id >= num_entities")
            if self.triples[:, 1].max() >= self.num_relations:
                raise DatasetError("triples reference a relation id >= num_relations")

    @property
    def num_triples(self) -> int:
        return int(self.triples.shape[0])

    def split(self, name: str) -> np.ndarray:
        """Return the (T_split, 3) triples of one split by name."""
        index = {"train": self.train_idx, "valid": self.valid_idx,
                 "test": self.test_idx}.get(name)
        if index is None:
            raise DatasetError(f"unknown split {name!r}")
        return self.triples[index]

    def filter_entities(self, entity_ids: Sequence[int]) -> "TriplesData":
        """Restrict the dataset to triples whose head and tail are both kept."""
        keep_set = np.zeros(self.num_entities, dtype=bool)
        keep_set[np.asarray(list(entity_ids), dtype=np.int64)] = True
        mask = keep_set[self.triples[:, 0]] & keep_set[self.triples[:, 2]]
        kept = np.flatnonzero(mask)
        remap_triples = self.triples[kept]
        old_ids = np.flatnonzero(keep_set)
        remap = -np.ones(self.num_entities, dtype=np.int64)
        remap[old_ids] = np.arange(old_ids.shape[0])
        new_triples = remap_triples.copy()
        new_triples[:, 0] = remap[remap_triples[:, 0]]
        new_triples[:, 2] = remap[remap_triples[:, 2]]
        position = {old: new for new, old in enumerate(kept)}
        def remap_index(idx: np.ndarray) -> np.ndarray:
            return np.asarray([position[i] for i in idx if i in position], dtype=np.int64)
        return TriplesData(
            num_entities=old_ids.shape[0],
            num_relations=self.num_relations,
            triples=new_triples,
            train_idx=remap_index(self.train_idx),
            valid_idx=remap_index(self.valid_idx),
            test_idx=remap_index(self.test_idx),
            entity_names=[self.entity_names[i] for i in old_ids] if self.entity_names else [],
            relation_names=self.relation_names,
            target_relation=self.target_relation,
        )

    def embedding_bytes(self, dim: int) -> int:
        """Bytes needed by entity + relation embedding tables of width ``dim``."""
        return (self.num_entities + self.num_relations) * dim * 8

    def __repr__(self) -> str:
        return (f"<TriplesData entities={self.num_entities} relations={self.num_relations} "
                f"triples={self.num_triples}>")
