"""Train / validation / test splitting strategies.

The paper's data transformer performs "a train-validation-test split using
different strategies like random and community-based" (§IV-A).  Both are
implemented here over node index arrays.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import csgraph
from scipy import sparse as sp

from repro.exceptions import DatasetError

__all__ = ["random_split", "community_split", "split_masks", "SplitFractions"]


class SplitFractions:
    """Fractions of labelled nodes assigned to train / valid / test."""

    def __init__(self, train: float = 0.6, valid: float = 0.2, test: float = 0.2) -> None:
        total = train + valid + test
        if not np.isclose(total, 1.0):
            raise DatasetError(f"split fractions must sum to 1.0, got {total}")
        if min(train, valid, test) < 0:
            raise DatasetError("split fractions must be non-negative")
        self.train = train
        self.valid = valid
        self.test = test

    def counts(self, n: int) -> Tuple[int, int, int]:
        n_train = int(round(n * self.train))
        n_valid = int(round(n * self.valid))
        n_train = min(n_train, n)
        n_valid = min(n_valid, n - n_train)
        n_test = n - n_train - n_valid
        return n_train, n_valid, n_test


def random_split(candidate_nodes: np.ndarray,
                 fractions: Optional[SplitFractions] = None,
                 seed: int = 0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniformly random split of ``candidate_nodes``."""
    fractions = fractions or SplitFractions()
    candidates = np.asarray(candidate_nodes, dtype=np.int64)
    rng = np.random.default_rng(seed)
    permuted = rng.permutation(candidates)
    n_train, n_valid, _ = fractions.counts(permuted.shape[0])
    return (permuted[:n_train],
            permuted[n_train:n_train + n_valid],
            permuted[n_train + n_valid:])


def community_split(candidate_nodes: np.ndarray,
                    edge_index: np.ndarray,
                    num_nodes: int,
                    fractions: Optional[SplitFractions] = None,
                    seed: int = 0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Community-based split.

    Nodes are grouped by the connected component they belong to (treating the
    graph as undirected) and whole communities are assigned to splits until
    the requested fractions are met.  This keeps communities intact, which is
    the property the paper's community-based strategy is after.
    """
    fractions = fractions or SplitFractions()
    candidates = np.asarray(candidate_nodes, dtype=np.int64)
    if candidates.size == 0:
        empty = np.asarray([], dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    edge_index = np.asarray(edge_index, dtype=np.int64).reshape(2, -1)
    adjacency = sp.coo_matrix(
        (np.ones(edge_index.shape[1]), (edge_index[0], edge_index[1])),
        shape=(num_nodes, num_nodes))
    _, labels = csgraph.connected_components(adjacency, directed=False)
    communities: Dict[int, list] = {}
    for node in candidates:
        communities.setdefault(int(labels[node]), []).append(int(node))
    rng = np.random.default_rng(seed)
    community_ids = list(communities)
    rng.shuffle(community_ids)
    n_train, n_valid, _ = fractions.counts(candidates.shape[0])
    train, valid, test = [], [], []
    for community_id in community_ids:
        members = communities[community_id]
        if len(train) < n_train:
            train.extend(members)
        elif len(valid) < n_valid:
            valid.extend(members)
        else:
            test.extend(members)
    # Guarantee non-empty valid/test when possible by borrowing from train.
    if not test and len(train) > 2:
        test = [train.pop()]
    if not valid and len(train) > 2:
        valid = [train.pop()]
    return (np.asarray(train, dtype=np.int64),
            np.asarray(valid, dtype=np.int64),
            np.asarray(test, dtype=np.int64))


def split_masks(num_nodes: int, train_idx: np.ndarray, valid_idx: np.ndarray,
                test_idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert index arrays into boolean masks of length ``num_nodes``."""
    def mask(indices: np.ndarray) -> np.ndarray:
        out = np.zeros(num_nodes, dtype=bool)
        out[np.asarray(indices, dtype=np.int64)] = True
        return out
    train_mask, valid_mask, test_mask = mask(train_idx), mask(valid_idx), mask(test_idx)
    if (train_mask & valid_mask).any() or (train_mask & test_mask).any() or \
            (valid_mask & test_mask).any():
        raise DatasetError("splits overlap")
    return train_mask, valid_mask, test_mask
