"""MorsE-style inductive knowledge-graph embedding (Chen et al., SIGIR 2022).

MorsE learns *entity-independent* meta-knowledge: entity embeddings are not
free parameters but are composed from the relational structure around the
entity, so the model transfers to entities unseen at training time and can be
meta-trained on small sampled sub-KGs — which is exactly why the paper uses
it as the edge-sampling-based link-prediction method (Fig 15).

The reproduction keeps the two MorsE ingredients that matter here:

1. **Entity initializer** — an entity's embedding is the degree-normalised sum
   of relation-direction vectors over its incident edges (one learnable vector
   per (relation, direction) pair).
2. **Meta-training over sub-KGs** — each training step samples an
   edge-induced sub-KG (:class:`~repro.gml.sampling.negative.EdgeSubKGSampler`),
   recomputes entity embeddings from structure, and optimises a DistMult (or
   TransE) decoder with negative sampling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse as sp

from repro.exceptions import TrainingError
from repro.gml.autograd import (
    Embedding,
    Tensor,
    binary_cross_entropy_with_logits,
    gather_rows,
    no_grad,
    spmm,
)
from repro.gml.kge.base import ranking_metrics
from repro.gml.nn.module import Module

__all__ = ["MorsE"]


class MorsE(Module):
    """Inductive KGE with structure-derived entity embeddings."""

    def __init__(self, num_relations: int, dim: int = 64, decoder: str = "distmult",
                 margin: float = 6.0, seed: int = 0) -> None:
        super().__init__()
        if decoder not in ("distmult", "transe"):
            raise TrainingError(f"unknown MorsE decoder {decoder!r}")
        self.num_relations = num_relations
        self.dim = dim
        self.decoder = decoder
        self.margin = margin
        rng = np.random.default_rng(seed)
        #: One initialisation vector per (relation, direction): index r is the
        #: outgoing direction, index num_relations + r the incoming direction.
        self.relation_init = Embedding(2 * num_relations, dim, rng=rng,
                                       name="morse.relation_init")
        #: Relation embeddings used by the decoder.
        self.relation_embeddings = Embedding(num_relations, dim, rng=rng,
                                             name="morse.relations")

    # ------------------------------------------------------------------
    # Entity embedding composition
    # ------------------------------------------------------------------
    def entity_incidence(self, triples: np.ndarray,
                         num_entities: int) -> Tuple[sp.csr_matrix, np.ndarray]:
        """Build the (num_entities x num_incident) incidence matrix.

        Each incident edge contributes one row-lookup into
        :attr:`relation_init`: heads see ``relation``, tails see
        ``num_relations + relation``.  The matrix averages those vectors per
        entity (degree-normalised), so composition is a single spmm.
        """
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        entity_of_slot = np.concatenate([heads, tails])
        init_index = np.concatenate([relations, relations + self.num_relations])
        slots = np.arange(entity_of_slot.shape[0])
        degree = np.bincount(entity_of_slot, minlength=num_entities).astype(np.float64)
        degree[degree == 0] = 1.0
        weights = 1.0 / degree[entity_of_slot]
        incidence = sp.coo_matrix(
            (weights, (entity_of_slot, slots)),
            shape=(num_entities, entity_of_slot.shape[0])).tocsr()
        return incidence, init_index

    def compose_entity_embeddings(self, triples: np.ndarray,
                                  num_entities: int) -> Tensor:
        """Entity embeddings derived purely from the relational structure."""
        incidence, init_index = self.entity_incidence(triples, num_entities)
        init_vectors = self.relation_init(init_index)      # (2E, dim)
        return spmm(incidence, init_vectors)                # (num_entities, dim)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, entity_embeddings: Tensor, triples: np.ndarray) -> Tensor:
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        heads = gather_rows(entity_embeddings, triples[:, 0])
        relations = self.relation_embeddings(triples[:, 1])
        tails = gather_rows(entity_embeddings, triples[:, 2])
        if self.decoder == "distmult":
            return (heads * relations * tails).sum(axis=1)
        difference = heads + relations - tails
        distance = (difference.relu() + (-difference).relu()).sum(axis=1)
        return Tensor(np.full((distance.shape[0],), self.margin)) - distance

    def loss(self, entity_embeddings: Tensor, positives: np.ndarray,
             negatives: np.ndarray) -> Tensor:
        positive_scores = self.score(entity_embeddings, positives)
        negative_scores = self.score(entity_embeddings, negatives)
        return binary_cross_entropy_with_logits(
            positive_scores, np.ones(positive_scores.shape[0])) + \
            binary_cross_entropy_with_logits(
                negative_scores, np.zeros(negative_scores.shape[0]))

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def materialise_entities(self, triples: np.ndarray, num_entities: int) -> np.ndarray:
        """Frozen entity embeddings for evaluation / the embedding store."""
        with no_grad():
            return self.compose_entity_embeddings(triples, num_entities).data.copy()

    def rank_tails(self, entity_embeddings: np.ndarray, test_triples: np.ndarray,
                   known_tails: Optional[Dict[Tuple[int, int], np.ndarray]] = None
                   ) -> np.ndarray:
        """1-based filtered ranks of true tails for each test triple."""
        relation_matrix = self.relation_embeddings.weight.data
        ranks: List[int] = []
        for head, relation, tail in np.asarray(test_triples, dtype=np.int64):
            if self.decoder == "distmult":
                scores = (entity_embeddings[head] * relation_matrix[relation]) @ \
                    entity_embeddings.T
            else:
                translated = entity_embeddings[head] + relation_matrix[relation]
                scores = self.margin - np.abs(translated[None, :] - entity_embeddings).sum(axis=1)
            true_score = scores[tail]
            if known_tails is not None:
                other_true = known_tails.get((int(head), int(relation)))
                if other_true is not None and other_true.size:
                    scores = scores.copy()
                    mask = np.zeros(scores.shape[0], dtype=bool)
                    mask[other_true] = True
                    mask[tail] = False
                    scores[mask] = -np.inf
            ranks.append(int((scores > true_score).sum()) + 1)
        return np.asarray(ranks, dtype=np.int64)

    def evaluate(self, entity_embeddings: np.ndarray, test_triples: np.ndarray,
                 all_triples: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Filtered MRR / Hits@k on ``test_triples``."""
        known: Optional[Dict[Tuple[int, int], np.ndarray]] = None
        if all_triples is not None and len(all_triples):
            known = {}
            grouped: Dict[Tuple[int, int], List[int]] = {}
            for head, relation, tail in np.asarray(all_triples, dtype=np.int64):
                grouped.setdefault((int(head), int(relation)), []).append(int(tail))
            known = {key: np.asarray(value, dtype=np.int64)
                     for key, value in grouped.items()}
        ranks = self.rank_tails(entity_embeddings, test_triples, known_tails=known)
        return ranking_metrics(ranks)
