"""Knowledge-graph embedding models: TransE, DistMult, ComplEx, RotatE, MorsE."""

from repro.gml.kge.base import KGEModel, ranking_metrics
from repro.gml.kge.models import ComplEx, DistMult, RotatE, TransE
from repro.gml.kge.morse import MorsE

__all__ = [
    "KGEModel",
    "ranking_metrics",
    "TransE",
    "DistMult",
    "ComplEx",
    "RotatE",
    "MorsE",
]
