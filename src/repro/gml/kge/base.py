"""Base class for knowledge-graph embedding (KGE) models.

A KGE model scores triples ``(head, relation, tail)``; training maximises the
scores of observed triples against negative-sampled corruptions, and link
prediction ranks candidate tails (or heads) by score.  Concrete scoring
functions: TransE, DistMult, ComplEx, RotatE (paper Fig 5, "KGE" branch).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.gml.autograd import (
    Embedding,
    Tensor,
    binary_cross_entropy_with_logits,
    no_grad,
)
from repro.gml.nn.module import Module

__all__ = ["KGEModel", "ranking_metrics"]


class KGEModel(Module):
    """Entity/relation embedding tables plus an abstract scoring function."""

    #: Set by subclasses whose embeddings are split into (real, imaginary).
    complex_embeddings = False

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 seed: int = 0) -> None:
        super().__init__()
        if dim < 2:
            raise TrainingError("embedding dimension must be >= 2")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        rng = np.random.default_rng(seed)
        self.entity_embeddings = Embedding(num_entities, dim, rng=rng,
                                           name="kge.entities")
        self.relation_embeddings = Embedding(num_relations, dim, rng=rng,
                                             name="kge.relations")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def embed_triples(self, triples: np.ndarray) -> Tuple[Tensor, Tensor, Tensor]:
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        heads = self.entity_embeddings(triples[:, 0])
        relations = self.relation_embeddings(triples[:, 1])
        tails = self.entity_embeddings(triples[:, 2])
        return heads, relations, tails

    def score(self, heads: Tensor, relations: Tensor, tails: Tensor) -> Tensor:
        """Return a (batch,) tensor of triple plausibility scores (higher = better)."""
        raise NotImplementedError

    def score_triples(self, triples: np.ndarray) -> Tensor:
        heads, relations, tails = self.embed_triples(triples)
        return self.score(heads, relations, tails)

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def loss(self, positives: np.ndarray, negatives: np.ndarray) -> Tensor:
        """Binary cross-entropy over positive and corrupted triples."""
        positive_scores = self.score_triples(positives)
        negative_scores = self.score_triples(negatives)
        positive_loss = binary_cross_entropy_with_logits(
            positive_scores, np.ones(positive_scores.shape[0]))
        negative_loss = binary_cross_entropy_with_logits(
            negative_scores, np.zeros(negative_scores.shape[0]))
        return positive_loss + negative_loss

    # ------------------------------------------------------------------
    # Ranking evaluation / prediction
    # ------------------------------------------------------------------
    def score_against_all_tails(self, head: int, relation: int) -> np.ndarray:
        """Scores of ``(head, relation, e)`` for every entity ``e``."""
        with no_grad():
            triples = np.stack([
                np.full(self.num_entities, head, dtype=np.int64),
                np.full(self.num_entities, relation, dtype=np.int64),
                np.arange(self.num_entities, dtype=np.int64),
            ], axis=1)
            return self.score_triples(triples).data.reshape(-1)

    def rank_tail(self, head: int, relation: int, tail: int,
                  filtered_tails: Optional[np.ndarray] = None) -> int:
        """1-based rank of the true tail among all candidate entities."""
        scores = self.score_against_all_tails(head, relation)
        true_score = scores[tail]
        if filtered_tails is not None and filtered_tails.size:
            mask = np.zeros(self.num_entities, dtype=bool)
            mask[filtered_tails] = True
            mask[tail] = False
            scores = scores.copy()
            scores[mask] = -np.inf
        return int((scores > true_score).sum()) + 1

    def predict_tails(self, head: int, relation: int, k: int = 10,
                      exclude: Optional[np.ndarray] = None) -> List[Tuple[int, float]]:
        """Top-``k`` (entity, score) predictions for the tail slot."""
        scores = self.score_against_all_tails(head, relation)
        if exclude is not None and len(exclude):
            scores = scores.copy()
            scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
        top = np.argsort(-scores)[:k]
        return [(int(entity), float(scores[entity])) for entity in top
                if np.isfinite(scores[entity])]

    def entity_embedding_matrix(self) -> np.ndarray:
        """The (num_entities, dim) embedding matrix (for the embedding store)."""
        return self.entity_embeddings.weight.data.copy()


def ranking_metrics(ranks: np.ndarray, ks: Tuple[int, ...] = (1, 3, 10)) -> Dict[str, float]:
    """MRR and Hits@k from an array of 1-based ranks."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return {"mrr": 0.0, **{f"hits@{k}": 0.0 for k in ks}}
    metrics = {"mrr": float((1.0 / ranks).mean())}
    for k in ks:
        metrics[f"hits@{k}"] = float((ranks <= k).mean())
    return metrics
