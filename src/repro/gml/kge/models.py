"""Concrete KGE scoring functions: TransE, DistMult, ComplEx, RotatE.

These are the translational and semantic-matching families of the paper's
method taxonomy (Fig 5).  All share the :class:`~repro.gml.kge.base.KGEModel`
training / ranking machinery and differ only in ``score``.
"""

from __future__ import annotations

import numpy as np

from repro.gml.autograd import Tensor, concatenate
from repro.gml.kge.base import KGEModel

__all__ = ["TransE", "DistMult", "ComplEx", "RotatE"]


class TransE(KGEModel):
    """Translation model: score = gamma - || h + r - t ||."""

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 margin: float = 6.0, norm: int = 1, seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, dim, seed=seed)
        self.margin = margin
        self.norm = norm

    def score(self, heads: Tensor, relations: Tensor, tails: Tensor) -> Tensor:
        difference = heads + relations - tails
        if self.norm == 1:
            # |x| = relu(x) + relu(-x) keeps the graph differentiable.
            distance = (difference.relu() + (-difference).relu()).sum(axis=1)
        else:
            distance = (difference * difference).sum(axis=1) ** 0.5
        return Tensor(np.full(distance.shape, self.margin)) - distance


class DistMult(KGEModel):
    """Bilinear-diagonal semantic matching: score = sum(h * r * t)."""

    def score(self, heads: Tensor, relations: Tensor, tails: Tensor) -> Tensor:
        return (heads * relations * tails).sum(axis=1)


class ComplEx(KGEModel):
    """Complex-valued bilinear model (Trouillon et al., 2016).

    Embedding vectors of width ``dim`` are interpreted as ``dim/2`` complex
    numbers: the first half is the real part, the second half the imaginary
    part.  score = Re(<h, r, conj(t)>).
    """

    complex_embeddings = True

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 seed: int = 0) -> None:
        if dim % 2:
            dim += 1
        super().__init__(num_entities, num_relations, dim, seed=seed)
        self.half = dim // 2

    def _split(self, embedding: Tensor):
        return embedding[:, : self.half], embedding[:, self.half:]

    def score(self, heads: Tensor, relations: Tensor, tails: Tensor) -> Tensor:
        h_re, h_im = self._split(heads)
        r_re, r_im = self._split(relations)
        t_re, t_im = self._split(tails)
        real_part = (h_re * r_re * t_re).sum(axis=1) \
            + (h_im * r_re * t_im).sum(axis=1) \
            + (h_re * r_im * t_im).sum(axis=1) \
            - (h_im * r_im * t_re).sum(axis=1)
        return real_part


class RotatE(KGEModel):
    """Rotation model (Sun et al., 2019): t ~ h ∘ r with |r_i| = 1.

    Relations act as rotations in the complex plane; the score is
    ``gamma - || h ∘ r - t ||`` where ``∘`` is element-wise complex product.
    The rotation is parameterised by the (real, imaginary) halves of the
    relation embedding normalised to unit modulus, which keeps the whole
    scoring function differentiable in this autograd engine.
    """

    complex_embeddings = True

    def __init__(self, num_entities: int, num_relations: int, dim: int = 64,
                 margin: float = 9.0, seed: int = 0) -> None:
        if dim % 2:
            dim += 1
        super().__init__(num_entities, num_relations, dim, seed=seed)
        self.half = dim // 2
        self.margin = margin

    def _split(self, embedding: Tensor):
        return embedding[:, : self.half], embedding[:, self.half:]

    def score(self, heads: Tensor, relations: Tensor, tails: Tensor) -> Tensor:
        h_re, h_im = self._split(heads)
        t_re, t_im = self._split(tails)
        # Normalise the relation's complex coordinates to unit modulus so it
        # acts as a pure rotation (|r_i| = 1) while staying differentiable.
        rel_re, rel_im = self._split(relations)
        modulus = (rel_re * rel_re + rel_im * rel_im + 1e-12) ** 0.5
        r_re = rel_re / modulus
        r_im = rel_im / modulus
        # (h ∘ r) - t in complex arithmetic.
        rotated_re = h_re * r_re - h_im * r_im
        rotated_im = h_re * r_im + h_im * r_re
        difference_re = rotated_re - t_re
        difference_im = rotated_im - t_im
        squared = difference_re * difference_re + difference_im * difference_im
        distance = (squared + 1e-12) ** 0.5
        return Tensor(np.full((distance.shape[0],), self.margin)) - distance.sum(axis=1)
