"""GraphSAGE-style layer-wise neighbour sampler.

Included for completeness of the taxonomy in paper Fig 5 (node/layer
sampling).  Each batch consists of seed nodes plus a fixed fan-out of sampled
neighbours per hop; the induced subgraph is returned like the other samplers
so the same models can train on it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.gml.data import GraphData
from repro.gml.sampling.base import SampledSubgraph, SubgraphSampler

__all__ = ["NeighborSampler"]


class NeighborSampler(SubgraphSampler):
    """Fixed fan-out neighbour sampling around seed nodes."""

    def __init__(self, data: GraphData, batch_size: int, num_batches: int,
                 fanouts: Sequence[int] = (10, 10),
                 seed_nodes: Optional[np.ndarray] = None, seed: int = 0) -> None:
        super().__init__(data, batch_size, num_batches, seed=seed)
        if not fanouts or any(f < 1 for f in fanouts):
            raise SamplingError("fanouts must be a non-empty list of positive ints")
        self.fanouts = list(fanouts)
        if seed_nodes is None:
            seed_nodes = data.labeled_nodes()
            if seed_nodes.size == 0:
                seed_nodes = np.arange(data.num_nodes)
        self.seed_nodes = np.asarray(seed_nodes, dtype=np.int64)
        # In-neighbour CSR (messages flow src -> dst, so we expand backwards).
        order = np.argsort(data.edge_index[1], kind="stable")
        self._sorted_src = data.edge_index[0, order]
        self._offsets = np.zeros(data.num_nodes + 1, dtype=np.int64)
        np.add.at(self._offsets, data.edge_index[1] + 1, 1)
        self._offsets = np.cumsum(self._offsets)

    def _in_neighbors(self, node: int) -> np.ndarray:
        return self._sorted_src[self._offsets[node]:self._offsets[node + 1]]

    def sample_nodes(self) -> np.ndarray:
        seeds = self.rng.choice(self.seed_nodes,
                                size=min(self.batch_size, self.seed_nodes.shape[0]),
                                replace=False)
        visited = set(int(s) for s in seeds)
        frontier: List[int] = [int(s) for s in seeds]
        for fanout in self.fanouts:
            next_frontier: List[int] = []
            for node in frontier:
                neighbors = self._in_neighbors(node)
                if neighbors.size > fanout:
                    neighbors = self.rng.choice(neighbors, size=fanout, replace=False)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return np.asarray(sorted(visited), dtype=np.int64)

    def sample(self) -> SampledSubgraph:
        seeds = self.rng.choice(self.seed_nodes,
                                size=min(self.batch_size, self.seed_nodes.shape[0]),
                                replace=False)
        visited = set(int(s) for s in seeds)
        frontier: List[int] = [int(s) for s in seeds]
        for fanout in self.fanouts:
            next_frontier: List[int] = []
            for node in frontier:
                neighbors = self._in_neighbors(node)
                if neighbors.size > fanout:
                    neighbors = self.rng.choice(neighbors, size=fanout, replace=False)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        nodes = np.asarray(sorted(visited), dtype=np.int64)
        sub, mapping = self.data.subgraph(nodes)
        position = {int(full): local for local, full in enumerate(mapping)}
        root_local = np.asarray([position[int(s)] for s in seeds if int(s) in position],
                                dtype=np.int64)
        return SampledSubgraph(sub, mapping, root_nodes=root_local)

    def estimated_subgraph_nodes(self) -> int:
        expansion = 1
        total = 1
        for fanout in self.fanouts:
            expansion *= fanout
            total += expansion
        return int(min(self.data.num_nodes, self.batch_size * total))

    def sampling_cost_per_batch(self) -> float:
        return float(self.batch_size * int(np.prod(self.fanouts)))
