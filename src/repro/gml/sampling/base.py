"""Common interface for graph samplers.

The paper's taxonomy (Fig 5) splits GNN training into full-propagation
methods and sampling-based (mini-batch) methods; the samplers here provide
the mini-batches for GraphSAINT, ShaDow-SAINT and the edge-based MorsE-style
training.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import SamplingError
from repro.gml.data import GraphData

__all__ = ["SubgraphSampler", "SampledSubgraph"]


class SampledSubgraph:
    """A sampled subgraph plus its mapping back to the full graph."""

    def __init__(self, data: GraphData, node_mapping: np.ndarray,
                 edge_weight: Optional[np.ndarray] = None,
                 node_weight: Optional[np.ndarray] = None,
                 root_nodes: Optional[np.ndarray] = None) -> None:
        self.data = data
        #: ``node_mapping[i]`` is the full-graph id of subgraph node ``i``.
        self.node_mapping = node_mapping
        #: GraphSAINT normalisation coefficients (loss / aggregator weights).
        self.edge_weight = edge_weight
        self.node_weight = node_weight
        #: For ShaDow-style samplers: the subgraph-local indices of the root
        #: (target) nodes the prediction is read out from.
        self.root_nodes = root_nodes

    @property
    def num_nodes(self) -> int:
        return self.data.num_nodes

    @property
    def num_edges(self) -> int:
        return self.data.num_edges

    def __repr__(self) -> str:
        return f"<SampledSubgraph nodes={self.num_nodes} edges={self.num_edges}>"


class SubgraphSampler:
    """Base class: iterate over :class:`SampledSubgraph` mini-batches."""

    def __init__(self, data: GraphData, batch_size: int, num_batches: int,
                 seed: int = 0) -> None:
        if batch_size <= 0:
            raise SamplingError("batch_size must be positive")
        if num_batches <= 0:
            raise SamplingError("num_batches must be positive")
        self.data = data
        self.batch_size = min(batch_size, data.num_nodes)
        self.num_batches = num_batches
        self.rng = np.random.default_rng(seed)

    def sample_nodes(self) -> np.ndarray:
        """Return the node ids of one sampled subgraph (subclass hook)."""
        raise NotImplementedError

    def sample(self) -> SampledSubgraph:
        nodes = self.sample_nodes()
        if nodes.size == 0:
            raise SamplingError("sampler produced an empty subgraph")
        sub, mapping = self.data.subgraph(nodes)
        return SampledSubgraph(sub, mapping)

    def __iter__(self) -> Iterator[SampledSubgraph]:
        for _ in range(self.num_batches):
            yield self.sample()

    def __len__(self) -> int:
        return self.num_batches

    # -- cost model hooks (used by the method selector) -----------------------
    def estimated_subgraph_nodes(self) -> int:
        return self.batch_size

    def sampling_cost_per_batch(self) -> float:
        """Relative cost of drawing one batch (sampling heuristic dependent)."""
        return float(self.batch_size)
