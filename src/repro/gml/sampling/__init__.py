"""Graph samplers: GraphSAINT, ShaDow, neighbour and triple/negative sampling."""

from repro.gml.sampling.base import SampledSubgraph, SubgraphSampler
from repro.gml.sampling.graphsaint import (
    GraphSAINTEdgeSampler,
    GraphSAINTNodeSampler,
    GraphSAINTRandomWalkSampler,
)
from repro.gml.sampling.shadow import ShadowKHopSampler
from repro.gml.sampling.neighbor import NeighborSampler
from repro.gml.sampling.negative import (
    EdgeSubKGSampler,
    NegativeSampler,
    TripleBatchSampler,
)

__all__ = [
    "SampledSubgraph",
    "SubgraphSampler",
    "GraphSAINTNodeSampler",
    "GraphSAINTEdgeSampler",
    "GraphSAINTRandomWalkSampler",
    "ShadowKHopSampler",
    "NeighborSampler",
    "EdgeSubKGSampler",
    "NegativeSampler",
    "TripleBatchSampler",
]
