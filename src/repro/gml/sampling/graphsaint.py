"""GraphSAINT samplers (Zeng et al., ICLR 2020).

GraphSAINT trains a GNN on small subgraphs sampled from the full graph and
corrects the induced bias with normalisation coefficients.  Three classic
samplers are provided:

* :class:`GraphSAINTNodeSampler` — uniform / degree-proportional node sampling,
* :class:`GraphSAINTEdgeSampler` — edge sampling, keeping both endpoints,
* :class:`GraphSAINTRandomWalkSampler` — roots + fixed-length random walks.

The normalisation coefficients are estimated from a warm-up set of sampled
subgraphs, following the reference implementation's counting estimator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SamplingError
from repro.gml.data import GraphData
from repro.gml.sampling.base import SampledSubgraph, SubgraphSampler

__all__ = [
    "GraphSAINTNodeSampler",
    "GraphSAINTEdgeSampler",
    "GraphSAINTRandomWalkSampler",
]


class _SaintSampler(SubgraphSampler):
    """Shared machinery: normalisation-coefficient estimation."""

    def __init__(self, data: GraphData, batch_size: int, num_batches: int,
                 seed: int = 0, warmup_samples: int = 10) -> None:
        super().__init__(data, batch_size, num_batches, seed=seed)
        self.warmup_samples = max(1, warmup_samples)
        self._node_counts: Optional[np.ndarray] = None
        self._total_samples = 0

    def _estimate_normalisation(self) -> None:
        """Count node appearances over warm-up subgraphs (alpha/lambda estimator)."""
        counts = np.zeros(self.data.num_nodes, dtype=np.float64)
        for _ in range(self.warmup_samples):
            nodes = self.sample_nodes()
            counts[nodes] += 1.0
        self._node_counts = counts
        self._total_samples = self.warmup_samples

    def node_weights(self, nodes: np.ndarray) -> np.ndarray:
        """Loss normalisation weights ~ 1 / P(node sampled)."""
        if self._node_counts is None:
            self._estimate_normalisation()
        probabilities = (self._node_counts[nodes] + 1.0) / (self._total_samples + 1.0)
        weights = 1.0 / probabilities
        return weights / weights.mean()

    def sample(self) -> SampledSubgraph:
        nodes = self.sample_nodes()
        if nodes.size == 0:
            raise SamplingError("GraphSAINT sampler produced an empty subgraph")
        sub, mapping = self.data.subgraph(nodes)
        return SampledSubgraph(sub, mapping, node_weight=self.node_weights(mapping))


class GraphSAINTNodeSampler(_SaintSampler):
    """Sample nodes with probability proportional to (degree + 1)."""

    def __init__(self, *args, degree_proportional: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.degree_proportional = degree_proportional
        degree = np.zeros(self.data.num_nodes, dtype=np.float64)
        if self.data.num_edges:
            np.add.at(degree, self.data.edge_index[0], 1.0)
            np.add.at(degree, self.data.edge_index[1], 1.0)
        self._probabilities = (degree + 1.0)
        self._probabilities /= self._probabilities.sum()

    def sample_nodes(self) -> np.ndarray:
        if self.degree_proportional:
            nodes = self.rng.choice(self.data.num_nodes, size=self.batch_size,
                                    replace=False if self.batch_size <= self.data.num_nodes else True,
                                    p=self._probabilities)
        else:
            nodes = self.rng.choice(self.data.num_nodes, size=self.batch_size,
                                    replace=False)
        return np.unique(nodes)

    def sampling_cost_per_batch(self) -> float:
        return float(self.batch_size)


class GraphSAINTEdgeSampler(_SaintSampler):
    """Sample edges uniformly and keep both endpoints of each edge."""

    def sample_nodes(self) -> np.ndarray:
        if self.data.num_edges == 0:
            return self.rng.choice(self.data.num_nodes,
                                   size=min(self.batch_size, self.data.num_nodes),
                                   replace=False)
        num_edges = min(self.batch_size, self.data.num_edges)
        edges = self.rng.choice(self.data.num_edges, size=num_edges, replace=False)
        nodes = np.concatenate([self.data.edge_index[0, edges],
                                self.data.edge_index[1, edges]])
        return np.unique(nodes)

    def sampling_cost_per_batch(self) -> float:
        return float(min(self.batch_size, max(1, self.data.num_edges)))


class GraphSAINTRandomWalkSampler(_SaintSampler):
    """Sample root nodes and walk ``walk_length`` steps from each root."""

    def __init__(self, data: GraphData, batch_size: int, num_batches: int,
                 walk_length: int = 2, seed: int = 0,
                 warmup_samples: int = 10) -> None:
        super().__init__(data, batch_size, num_batches, seed=seed,
                         warmup_samples=warmup_samples)
        if walk_length < 1:
            raise SamplingError("walk_length must be >= 1")
        self.walk_length = walk_length
        # CSR-style adjacency for fast out-neighbour lookup.
        order = np.argsort(data.edge_index[0], kind="stable")
        self._sorted_dst = data.edge_index[1, order]
        self._offsets = np.zeros(data.num_nodes + 1, dtype=np.int64)
        np.add.at(self._offsets, data.edge_index[0] + 1, 1)
        self._offsets = np.cumsum(self._offsets)

    def _neighbors(self, node: int) -> np.ndarray:
        return self._sorted_dst[self._offsets[node]:self._offsets[node + 1]]

    def sample_nodes(self) -> np.ndarray:
        num_roots = max(1, self.batch_size // (self.walk_length + 1))
        roots = self.rng.choice(self.data.num_nodes, size=min(num_roots, self.data.num_nodes),
                                replace=False)
        visited = list(roots)
        for root in roots:
            current = int(root)
            for _ in range(self.walk_length):
                neighbors = self._neighbors(current)
                if neighbors.size == 0:
                    break
                current = int(self.rng.choice(neighbors))
                visited.append(current)
        return np.unique(np.asarray(visited, dtype=np.int64))

    def sampling_cost_per_batch(self) -> float:
        num_roots = max(1, self.batch_size // (self.walk_length + 1))
        return float(num_roots * self.walk_length)
