"""Triple batching and negative sampling for KGE / link-prediction training.

Also provides the edge-subgraph sampler that MorsE-style inductive training
uses to build meta-training sub-KGs (paper Fig 5 classifies MorsE under
subgraph-sampling methods for link prediction).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import SamplingError
from repro.gml.data import TriplesData

__all__ = ["TripleBatchSampler", "NegativeSampler", "EdgeSubKGSampler"]


class NegativeSampler:
    """Corrupt heads or tails of positive triples uniformly at random."""

    def __init__(self, num_entities: int, num_negatives: int = 8,
                 corrupt_both: bool = True, seed: int = 0) -> None:
        if num_negatives < 1:
            raise SamplingError("num_negatives must be >= 1")
        self.num_entities = num_entities
        self.num_negatives = num_negatives
        self.corrupt_both = corrupt_both
        self.rng = np.random.default_rng(seed)

    def corrupt(self, triples: np.ndarray) -> np.ndarray:
        """Return ``(len(triples) * num_negatives, 3)`` corrupted triples."""
        positives = np.repeat(triples, self.num_negatives, axis=0)
        negatives = positives.copy()
        random_entities = self.rng.integers(0, self.num_entities,
                                            size=negatives.shape[0])
        if self.corrupt_both:
            corrupt_head = self.rng.random(negatives.shape[0]) < 0.5
        else:
            corrupt_head = np.zeros(negatives.shape[0], dtype=bool)
        negatives[corrupt_head, 0] = random_entities[corrupt_head]
        negatives[~corrupt_head, 2] = random_entities[~corrupt_head]
        return negatives


class TripleBatchSampler:
    """Iterate over shuffled mini-batches of positive triples with negatives."""

    def __init__(self, data: TriplesData, batch_size: int = 512,
                 num_negatives: int = 8, split: str = "train", seed: int = 0) -> None:
        if batch_size < 1:
            raise SamplingError("batch_size must be >= 1")
        self.data = data
        self.batch_size = batch_size
        self.split = split
        self.rng = np.random.default_rng(seed)
        self.negative_sampler = NegativeSampler(
            data.num_entities, num_negatives=num_negatives, seed=seed)
        self._triples = data.split(split)

    def __len__(self) -> int:
        return int(np.ceil(self._triples.shape[0] / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = self.rng.permutation(self._triples.shape[0])
        for start in range(0, order.shape[0], self.batch_size):
            batch_idx = order[start:start + self.batch_size]
            positives = self._triples[batch_idx]
            negatives = self.negative_sampler.corrupt(positives)
            yield positives, negatives


class EdgeSubKGSampler:
    """Sample edge-induced sub-KGs for MorsE-style meta-training.

    Each sampled sub-KG is a random subset of training triples re-indexed to
    its own local entity space, so the model learns entity-agnostic
    (inductive) representations from relation structure alone.
    """

    def __init__(self, data: TriplesData, triples_per_subkg: int = 2000,
                 num_subkgs: int = 10, seed: int = 0) -> None:
        if triples_per_subkg < 1 or num_subkgs < 1:
            raise SamplingError("triples_per_subkg and num_subkgs must be >= 1")
        self.data = data
        self.triples_per_subkg = triples_per_subkg
        self.num_subkgs = num_subkgs
        self.rng = np.random.default_rng(seed)
        self._train = data.split("train")

    def sample(self) -> Tuple[np.ndarray, np.ndarray, int]:
        """Return (local_triples, entity_mapping, num_local_entities)."""
        count = min(self.triples_per_subkg, self._train.shape[0])
        chosen = self.rng.choice(self._train.shape[0], size=count, replace=False)
        triples = self._train[chosen]
        entities = np.unique(np.concatenate([triples[:, 0], triples[:, 2]]))
        remap = {int(e): i for i, e in enumerate(entities)}
        local = triples.copy()
        local[:, 0] = [remap[int(h)] for h in triples[:, 0]]
        local[:, 2] = [remap[int(t)] for t in triples[:, 2]]
        return local, entities, entities.shape[0]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, int]]:
        for _ in range(self.num_subkgs):
            yield self.sample()

    def __len__(self) -> int:
        return self.num_subkgs
