"""ShaDow-GNN / Shadow-SAINT sampler (Zeng et al., 2022).

Shadow decouples GNN depth from the receptive-field scope: for every target
node a small bounded k-hop "shadow" subgraph is extracted, and an arbitrarily
deep GNN is run *inside* that subgraph, reading the prediction off the root
node.  :class:`ShadowKHopSampler` yields batches of roots together with the
union of their shadow subgraphs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.exceptions import SamplingError
from repro.gml.data import GraphData
from repro.gml.sampling.base import SampledSubgraph, SubgraphSampler

__all__ = ["ShadowKHopSampler"]


class ShadowKHopSampler(SubgraphSampler):
    """Bounded k-hop ego-subgraph sampler around target (root) nodes."""

    def __init__(self, data: GraphData, batch_size: int, num_batches: int,
                 depth: int = 2, neighbors_per_hop: int = 10,
                 target_nodes: Optional[np.ndarray] = None, seed: int = 0) -> None:
        super().__init__(data, batch_size, num_batches, seed=seed)
        if depth < 1:
            raise SamplingError("depth must be >= 1")
        if neighbors_per_hop < 1:
            raise SamplingError("neighbors_per_hop must be >= 1")
        self.depth = depth
        self.neighbors_per_hop = neighbors_per_hop
        if target_nodes is None:
            target_nodes = data.labeled_nodes()
            if target_nodes.size == 0:
                target_nodes = np.arange(data.num_nodes)
        self.target_nodes = np.asarray(target_nodes, dtype=np.int64)
        # Bidirectional CSR adjacency for neighbour expansion.
        src = np.concatenate([data.edge_index[0], data.edge_index[1]])
        dst = np.concatenate([data.edge_index[1], data.edge_index[0]])
        order = np.argsort(src, kind="stable")
        self._sorted_dst = dst[order]
        self._offsets = np.zeros(data.num_nodes + 1, dtype=np.int64)
        np.add.at(self._offsets, src + 1, 1)
        self._offsets = np.cumsum(self._offsets)
        self._cursor = 0
        self._order = self.rng.permutation(self.target_nodes)

    def _neighbors(self, node: int) -> np.ndarray:
        return self._sorted_dst[self._offsets[node]:self._offsets[node + 1]]

    def _next_roots(self) -> np.ndarray:
        """Cycle through target nodes so every root is visited across batches."""
        if self._cursor >= self._order.shape[0]:
            self._order = self.rng.permutation(self.target_nodes)
            self._cursor = 0
        roots = self._order[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return roots

    def _expand(self, roots: np.ndarray) -> np.ndarray:
        frontier = list(roots)
        visited = set(int(r) for r in roots)
        for _ in range(self.depth):
            next_frontier: List[int] = []
            for node in frontier:
                neighbors = self._neighbors(int(node))
                if neighbors.size > self.neighbors_per_hop:
                    neighbors = self.rng.choice(neighbors, size=self.neighbors_per_hop,
                                                replace=False)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        return np.asarray(sorted(visited), dtype=np.int64)

    def sample_nodes(self) -> np.ndarray:
        return self._expand(self._next_roots())

    def sample(self) -> SampledSubgraph:
        roots = self._next_roots()
        nodes = self._expand(roots)
        sub, mapping = self.data.subgraph(nodes)
        position = {int(full): local for local, full in enumerate(mapping)}
        root_local = np.asarray([position[int(r)] for r in roots if int(r) in position],
                                dtype=np.int64)
        return SampledSubgraph(sub, mapping, root_nodes=root_local)

    def estimated_subgraph_nodes(self) -> int:
        # Each root expands to at most sum_{i<=depth} neighbors_per_hop^i nodes.
        per_root = sum(self.neighbors_per_hop ** i for i in range(1, self.depth + 1)) + 1
        return int(min(self.data.num_nodes, self.batch_size * per_root))

    def sampling_cost_per_batch(self) -> float:
        return float(self.batch_size * self.neighbors_per_hop * self.depth)
