"""The Dataset Transformer: RDF graphs -> sparse-matrix training data.

This is the first stage of the automated GMLaaS pipeline (paper Fig 6): it
converts a (task-specific) RDF subgraph into the adjacency / feature matrices
a GML method consumes, while

* removing literal-valued triples (they become no graph structure),
* removing the *target class edges* so labels cannot leak into the structure,
* validating node/edge type counts and generating graph statistics,
* performing the train/validation/test split (random or community based).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.gml.data import GraphData, TriplesData, xavier_features
from repro.gml.splits import SplitFractions, community_split, random_split, split_masks
from repro.rdf.graph import Graph
from repro.rdf.stats import GraphStatistics, compute_statistics
from repro.rdf.terms import IRI, BNode, Literal, Term, RDF_TYPE

__all__ = ["TransformReport", "RDFGraphTransformer"]


@dataclass
class TransformReport:
    """What the transformer did — returned alongside the training data."""

    num_input_triples: int = 0
    num_structural_edges: int = 0
    num_literal_triples_removed: int = 0
    num_label_edges_removed: int = 0
    num_nodes: int = 0
    num_relations: int = 0
    num_target_nodes: int = 0
    num_labeled_nodes: int = 0
    num_classes: int = 0
    split_sizes: Dict[str, int] = field(default_factory=dict)
    statistics: Optional[GraphStatistics] = None

    def as_dict(self) -> Dict[str, object]:
        out = {
            "num_input_triples": self.num_input_triples,
            "num_structural_edges": self.num_structural_edges,
            "num_literal_triples_removed": self.num_literal_triples_removed,
            "num_label_edges_removed": self.num_label_edges_removed,
            "num_nodes": self.num_nodes,
            "num_relations": self.num_relations,
            "num_target_nodes": self.num_target_nodes,
            "num_labeled_nodes": self.num_labeled_nodes,
            "num_classes": self.num_classes,
        }
        out.update({f"split_{k}": v for k, v in self.split_sizes.items()})
        return out


class RDFGraphTransformer:
    """Transforms RDF graphs into :class:`GraphData` / :class:`TriplesData`."""

    def __init__(self, feature_dim: int = 64, split_strategy: str = "random",
                 split_fractions: Optional[SplitFractions] = None,
                 seed: int = 0, collect_statistics: bool = True) -> None:
        if split_strategy not in ("random", "community"):
            raise DatasetError(f"unknown split strategy {split_strategy!r}")
        self.feature_dim = feature_dim
        self.split_strategy = split_strategy
        self.split_fractions = split_fractions or SplitFractions()
        self.seed = seed
        self.collect_statistics = collect_statistics

    # ------------------------------------------------------------------
    # Node classification
    # ------------------------------------------------------------------
    def to_node_classification_data(self, graph: Graph, target_node_type: IRI,
                                    label_predicate: IRI
                                    ) -> Tuple[GraphData, TransformReport]:
        """Build a :class:`GraphData` for a node-classification task.

        ``target_node_type`` selects the nodes to classify (e.g.
        ``dblp:Publication``) and ``label_predicate`` is the edge carrying the
        class (e.g. ``dblp:publishedIn`` for paper-venue).  Label edges are
        removed from the structural graph.
        """
        report = TransformReport(num_input_triples=len(graph))
        if self.collect_statistics:
            report.statistics = compute_statistics(graph)

        # Pass 1: collect labels and structural edges.
        node_ids: Dict[Term, int] = {}
        node_terms: List[Term] = []

        def intern(term: Term) -> int:
            index = node_ids.get(term)
            if index is None:
                index = len(node_terms)
                node_ids[term] = index
                node_terms.append(term)
            return index

        relation_ids: Dict[Term, int] = {}
        relation_terms: List[Term] = []
        sources: List[int] = []
        destinations: List[int] = []
        relations: List[int] = []
        labels_by_node: Dict[Term, Term] = {}
        types_by_node: Dict[Term, Term] = {}

        for s, p, o in graph:
            if p == label_predicate:
                labels_by_node[s] = o
                report.num_label_edges_removed += 1
                continue
            if isinstance(o, Literal):
                report.num_literal_triples_removed += 1
                continue
            if p == RDF_TYPE:
                types_by_node.setdefault(s, o)
            src = intern(s)
            dst = intern(o)
            rel = relation_ids.get(p)
            if rel is None:
                rel = len(relation_terms)
                relation_ids[p] = rel
                relation_terms.append(p)
            sources.append(src)
            destinations.append(dst)
            relations.append(rel)

        target_nodes = [term for term, type_term in types_by_node.items()
                        if type_term == target_node_type]
        # Target nodes that only appear through label edges still need an index.
        for term in labels_by_node:
            if graph.value(subject=term, predicate=RDF_TYPE) == target_node_type:
                intern(term)
                if term not in target_nodes:
                    target_nodes.append(term)
        if not target_nodes:
            raise DatasetError(
                f"no nodes of type {target_node_type.n3()} found in the graph")

        num_nodes = len(node_terms)
        report.num_structural_edges = len(sources)
        report.num_nodes = num_nodes
        report.num_relations = len(relation_terms)
        report.num_target_nodes = len(target_nodes)

        # Labels: map distinct label terms to contiguous class ids.
        class_ids: Dict[Term, int] = {}
        class_terms: List[Term] = []
        labels = -np.ones(num_nodes, dtype=np.int64)
        for term, label_term in labels_by_node.items():
            index = node_ids.get(term)
            if index is None:
                continue
            class_id = class_ids.get(label_term)
            if class_id is None:
                class_id = len(class_terms)
                class_ids[label_term] = class_id
                class_terms.append(label_term)
            labels[index] = class_id
        labeled = np.flatnonzero(labels >= 0)
        if labeled.size == 0:
            raise DatasetError(
                f"no labels found via predicate {label_predicate.n3()}")
        report.num_labeled_nodes = int(labeled.size)
        report.num_classes = len(class_terms)

        edge_index = np.stack([np.asarray(sources, dtype=np.int64),
                               np.asarray(destinations, dtype=np.int64)]) \
            if sources else np.zeros((2, 0), dtype=np.int64)
        edge_type = np.asarray(relations, dtype=np.int64)

        if self.split_strategy == "community":
            train_idx, valid_idx, test_idx = community_split(
                labeled, edge_index, num_nodes,
                fractions=self.split_fractions, seed=self.seed)
        else:
            train_idx, valid_idx, test_idx = random_split(
                labeled, fractions=self.split_fractions, seed=self.seed)
        train_mask, val_mask, test_mask = split_masks(
            num_nodes, train_idx, valid_idx, test_idx)
        report.split_sizes = {"train": int(train_idx.size),
                              "valid": int(valid_idx.size),
                              "test": int(test_idx.size)}

        node_types, node_type_names = self._encode_node_types(node_terms, types_by_node)
        data = GraphData(
            num_nodes=num_nodes,
            edge_index=edge_index,
            edge_type=edge_type,
            num_relations=max(1, len(relation_terms)),
            features=xavier_features(num_nodes, self.feature_dim, seed=self.seed),
            labels=labels,
            num_classes=len(class_terms),
            train_mask=train_mask,
            val_mask=val_mask,
            test_mask=test_mask,
            node_names=[self._name(t) for t in node_terms],
            node_types=node_types,
            node_type_names=node_type_names,
            relation_names=[self._name(t) for t in relation_terms],
            class_names=[self._name(t) for t in class_terms],
        )
        return data, report

    # ------------------------------------------------------------------
    # Link prediction
    # ------------------------------------------------------------------
    def to_link_prediction_data(self, graph: Graph, target_predicate: IRI
                                ) -> Tuple[TriplesData, TransformReport]:
        """Build a :class:`TriplesData` for predicting ``target_predicate`` links.

        All non-literal triples become training structure; the triples whose
        predicate is ``target_predicate`` are split across train/valid/test,
        everything else stays in train (the standard KGE evaluation setup).
        """
        report = TransformReport(num_input_triples=len(graph))
        if self.collect_statistics:
            report.statistics = compute_statistics(graph)

        entity_ids: Dict[Term, int] = {}
        entity_terms: List[Term] = []
        relation_ids: Dict[Term, int] = {}
        relation_terms: List[Term] = []
        triples: List[Tuple[int, int, int]] = []
        target_triple_indices: List[int] = []

        def intern_entity(term: Term) -> int:
            index = entity_ids.get(term)
            if index is None:
                index = len(entity_terms)
                entity_ids[term] = index
                entity_terms.append(term)
            return index

        for s, p, o in graph:
            if isinstance(o, Literal):
                report.num_literal_triples_removed += 1
                continue
            head = intern_entity(s)
            tail = intern_entity(o)
            rel = relation_ids.get(p)
            if rel is None:
                rel = len(relation_terms)
                relation_ids[p] = rel
                relation_terms.append(p)
            if p == target_predicate:
                target_triple_indices.append(len(triples))
            triples.append((head, rel, tail))

        if not triples:
            raise DatasetError("graph has no structural (non-literal) triples")
        if not target_triple_indices:
            raise DatasetError(
                f"no triples with target predicate {target_predicate.n3()}")

        triples_array = np.asarray(triples, dtype=np.int64)
        target_idx = np.asarray(target_triple_indices, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        permuted = rng.permutation(target_idx)
        n_train, n_valid, _ = self.split_fractions.counts(permuted.shape[0])
        valid_idx = permuted[n_train:n_train + n_valid]
        test_idx = permuted[n_train + n_valid:]
        holdout = set(valid_idx.tolist()) | set(test_idx.tolist())
        train_idx = np.asarray(
            [i for i in range(triples_array.shape[0]) if i not in holdout],
            dtype=np.int64)

        report.num_structural_edges = int(triples_array.shape[0])
        report.num_nodes = len(entity_terms)
        report.num_relations = len(relation_terms)
        report.num_target_nodes = int(target_idx.size)
        report.split_sizes = {"train": int(train_idx.size),
                              "valid": int(valid_idx.size),
                              "test": int(test_idx.size)}

        data = TriplesData(
            num_entities=len(entity_terms),
            num_relations=len(relation_terms),
            triples=triples_array,
            train_idx=train_idx,
            valid_idx=valid_idx,
            test_idx=test_idx,
            entity_names=[self._name(t) for t in entity_terms],
            relation_names=[self._name(t) for t in relation_terms],
            target_relation=relation_ids[target_predicate],
        )
        return data, report

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _name(term: Term) -> str:
        if isinstance(term, IRI):
            return term.value
        if isinstance(term, BNode):
            return term.n3()
        return str(term)

    @staticmethod
    def _encode_node_types(node_terms: List[Term],
                           types_by_node: Dict[Term, Term]
                           ) -> Tuple[np.ndarray, List[str]]:
        type_ids: Dict[Term, int] = {}
        type_terms: List[Term] = []
        encoded = np.zeros(len(node_terms), dtype=np.int64)
        for index, term in enumerate(node_terms):
            type_term = types_by_node.get(term)
            if type_term is None:
                encoded[index] = -1
                continue
            type_id = type_ids.get(type_term)
            if type_id is None:
                type_id = len(type_terms)
                type_ids[type_term] = type_id
                type_terms.append(type_term)
            encoded[index] = type_id
        names = [RDFGraphTransformer._name(t) for t in type_terms]
        return encoded, names
