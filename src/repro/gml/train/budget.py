"""Task budgets and resource monitoring.

A SPARQL-ML ``INSERT`` (TrainGML) request carries a *task budget* — maximum
memory, maximum time and an optimisation priority (paper Fig 8).  The
:class:`TaskBudget` models that JSON object; :class:`ResourceMonitor`
measures what a training run actually used (wall-clock plus Python heap via
``tracemalloc``) and enforces the budget when asked to.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import BudgetExceededError, TrainingError

__all__ = ["TaskBudget", "ResourceUsage", "ResourceMonitor", "parse_budget"]

_SIZE_SUFFIXES = {"b": 1, "kb": 1024, "mb": 1024 ** 2, "gb": 1024 ** 3, "tb": 1024 ** 4}
_TIME_SUFFIXES = {"s": 1.0, "sec": 1.0, "m": 60.0, "min": 60.0, "h": 3600.0, "hr": 3600.0}


def _parse_size(value) -> Optional[float]:
    """Parse ``"50GB"`` / ``2048`` / None into bytes."""
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip().lower().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * _SIZE_SUFFIXES[suffix]
    return float(text)


def _parse_time(value) -> Optional[float]:
    """Parse ``"1h"`` / ``"30min"`` / 90 / None into seconds."""
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip().lower().replace(" ", "")
    for suffix in sorted(_TIME_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * _TIME_SUFFIXES[suffix]
    return float(text)


@dataclass
class TaskBudget:
    """Memory / time budget plus the optimisation priority.

    ``priority`` is one of ``"ModelScore"`` (maximise expected accuracy within
    the budget) or ``"Time"`` (minimise expected training time among methods
    that fit the budget), mirroring the paper's Fig 8 JSON.
    """

    max_memory_bytes: Optional[float] = None
    max_time_seconds: Optional[float] = None
    priority: str = "ModelScore"

    def __post_init__(self) -> None:
        if self.priority not in ("ModelScore", "Time", "Memory"):
            raise TrainingError(f"unknown budget priority {self.priority!r}")

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "TaskBudget":
        """Build from a TrainGML-style JSON object (case-insensitive keys)."""
        normalised = {str(key).lower().replace("_", "").replace(" ", ""): value
                      for key, value in payload.items()}
        memory = normalised.get("maxmemory", normalised.get("maxmemorybytes"))
        seconds = normalised.get("maxtime", normalised.get("maxtimeseconds"))
        return cls(
            max_memory_bytes=_parse_size(memory),
            max_time_seconds=_parse_time(seconds),
            priority=str(normalised.get("priority", "ModelScore")),
        )

    def allows_memory(self, bytes_needed: float) -> bool:
        return self.max_memory_bytes is None or bytes_needed <= self.max_memory_bytes

    def allows_time(self, seconds_needed: float) -> bool:
        return self.max_time_seconds is None or seconds_needed <= self.max_time_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_memory_bytes": self.max_memory_bytes,
            "max_time_seconds": self.max_time_seconds,
            "priority": self.priority,
        }


def parse_budget(payload: Optional[Dict[str, object]]) -> TaskBudget:
    """Convenience wrapper accepting None (=> unconstrained budget)."""
    if not payload:
        return TaskBudget()
    return TaskBudget.from_json(payload)


@dataclass
class ResourceUsage:
    """What a training run measured."""

    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    estimated_memory_bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "peak_memory_bytes": int(self.peak_memory_bytes),
            "estimated_memory_bytes": int(self.estimated_memory_bytes),
        }


class ResourceMonitor:
    """Context manager measuring wall-clock time and peak Python heap usage."""

    def __init__(self, budget: Optional[TaskBudget] = None,
                 enforce: bool = False) -> None:
        self.budget = budget or TaskBudget()
        self.enforce = enforce
        self.usage = ResourceUsage()
        self._start_time = 0.0
        self._tracing_started_here = False

    def __enter__(self) -> "ResourceMonitor":
        self._start_time = time.perf_counter()
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._tracing_started_here = True
        else:
            tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.usage.elapsed_seconds = time.perf_counter() - self._start_time
        _, peak = tracemalloc.get_traced_memory()
        self.usage.peak_memory_bytes = int(peak)
        if self._tracing_started_here:
            tracemalloc.stop()
        if self.enforce and exc_type is None:
            self.check(final=True)

    # -- explicit checks (called between epochs) ------------------------------
    def elapsed(self) -> float:
        return time.perf_counter() - self._start_time

    def check(self, final: bool = False) -> None:
        """Raise :class:`BudgetExceededError` when the budget is blown."""
        elapsed = self.usage.elapsed_seconds if final else self.elapsed()
        if not self.budget.allows_time(elapsed):
            raise BudgetExceededError(
                f"training exceeded the time budget "
                f"({elapsed:.2f}s > {self.budget.max_time_seconds:.2f}s)",
                elapsed_seconds=elapsed,
                peak_memory_bytes=self.usage.peak_memory_bytes)
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
        else:
            peak = self.usage.peak_memory_bytes
        if not self.budget.allows_memory(float(peak)):
            raise BudgetExceededError(
                f"training exceeded the memory budget "
                f"({peak} B > {self.budget.max_memory_bytes:.0f} B)",
                elapsed_seconds=elapsed, peak_memory_bytes=int(peak))
