"""Cost estimation for GML methods (memory and training time).

Paper §IV-A: *"We estimate the required memory for each method based on the
size and the number of generated sparse-matrices, as well as the training
time based on the matrix dimensions and feature aggregation approach"*.
The estimators here implement exactly that: closed-form functions of the
(sub)graph's node/edge/relation counts and the method's aggregation style.
The numbers are used for *ranking* candidate methods under a budget, not as
absolute predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.exceptions import TrainingError
from repro.gml.data import GraphData, TriplesData

__all__ = ["MethodProfile", "CostEstimate", "MethodCostEstimator", "METHOD_PROFILES"]

_FLOAT_BYTES = 8
#: Throughput constant translating "floating point operations" into seconds.
#: Calibrated for the pure-numpy engine; only relative values matter.
_SECONDS_PER_FLOP = 5e-9


@dataclass(frozen=True)
class MethodProfile:
    """Static characteristics of a GML method used by the cost model."""

    name: str
    family: str              # "gnn_full_batch", "gnn_sampling", "kge", "kge_inductive"
    relation_aware: bool
    sampler: Optional[str] = None      # "graphsaint", "shadow", "edge_subkg"
    supported_tasks: tuple = ("node_classification",)
    #: Prior on relative accuracy (used only to break ties when the budget
    #: allows several methods); roughly follows the paper's Figs 13-15.
    accuracy_prior: float = 0.5
    default_epochs: int = 30
    default_batch_size: int = 256


METHOD_PROFILES: Dict[str, MethodProfile] = {
    "rgcn": MethodProfile(
        name="rgcn", family="gnn_full_batch", relation_aware=True,
        supported_tasks=("node_classification",), accuracy_prior=0.80,
        default_epochs=40),
    "gcn": MethodProfile(
        name="gcn", family="gnn_full_batch", relation_aware=False,
        supported_tasks=("node_classification",), accuracy_prior=0.72,
        default_epochs=40),
    "gat": MethodProfile(
        name="gat", family="gnn_full_batch", relation_aware=False,
        supported_tasks=("node_classification",), accuracy_prior=0.75,
        default_epochs=40),
    "graph_saint": MethodProfile(
        name="graph_saint", family="gnn_sampling", relation_aware=True,
        sampler="graphsaint", supported_tasks=("node_classification",),
        accuracy_prior=0.82, default_epochs=20, default_batch_size=512),
    "shadow_saint": MethodProfile(
        name="shadow_saint", family="gnn_sampling", relation_aware=True,
        sampler="shadow", supported_tasks=("node_classification",),
        accuracy_prior=0.85, default_epochs=20, default_batch_size=64),
    "morse": MethodProfile(
        name="morse", family="kge_inductive", relation_aware=True,
        sampler="edge_subkg", supported_tasks=("link_prediction",),
        accuracy_prior=0.80, default_epochs=30, default_batch_size=1024),
    "complex": MethodProfile(
        name="complex", family="kge", relation_aware=True,
        supported_tasks=("link_prediction", "entity_similarity"),
        accuracy_prior=0.70, default_epochs=50, default_batch_size=1024),
    "transe": MethodProfile(
        name="transe", family="kge", relation_aware=True,
        supported_tasks=("link_prediction", "entity_similarity"),
        accuracy_prior=0.60, default_epochs=50, default_batch_size=1024),
    "distmult": MethodProfile(
        name="distmult", family="kge", relation_aware=True,
        supported_tasks=("link_prediction", "entity_similarity"),
        accuracy_prior=0.65, default_epochs=50, default_batch_size=1024),
    "rotate": MethodProfile(
        name="rotate", family="kge", relation_aware=True,
        supported_tasks=("link_prediction", "entity_similarity"),
        accuracy_prior=0.68, default_epochs=50, default_batch_size=1024),
}


@dataclass
class CostEstimate:
    """Estimated training cost for one (method, dataset) pair."""

    method: str
    memory_bytes: float
    time_seconds: float
    accuracy_prior: float
    details: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "memory_bytes": round(self.memory_bytes),
            "time_seconds": round(self.time_seconds, 4),
            "accuracy_prior": self.accuracy_prior,
            **{f"detail_{k}": round(v, 4) for k, v in self.details.items()},
        }


class MethodCostEstimator:
    """Estimates memory / time for each method on a given dataset."""

    def __init__(self, hidden_dim: int = 64, num_layers: int = 2,
                 embedding_dim: int = 64, num_negatives: int = 8) -> None:
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.embedding_dim = embedding_dim
        self.num_negatives = num_negatives

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def estimate(self, method: str, data: Union[GraphData, TriplesData],
                 epochs: Optional[int] = None,
                 batch_size: Optional[int] = None) -> CostEstimate:
        profile = METHOD_PROFILES.get(method)
        if profile is None:
            raise TrainingError(f"unknown GML method {method!r}")
        epochs = epochs or profile.default_epochs
        batch_size = batch_size or profile.default_batch_size
        if isinstance(data, GraphData):
            return self._estimate_gnn(profile, data, epochs, batch_size)
        return self._estimate_kge(profile, data, epochs, batch_size)

    # ------------------------------------------------------------------
    # GNN estimates (node classification)
    # ------------------------------------------------------------------
    def _estimate_gnn(self, profile: MethodProfile, data: GraphData,
                      epochs: int, batch_size: int) -> CostEstimate:
        nodes, edges = data.num_nodes, max(1, data.num_edges)
        feature_dim = data.feature_dim
        hidden = self.hidden_dim
        relations = data.num_relations if profile.relation_aware else 1

        if profile.family == "gnn_full_batch":
            working_nodes = nodes
            working_edges = edges
            batches_per_epoch = 1
            sampling_cost = 0.0
        else:
            if profile.sampler == "shadow":
                # Bounded per-root expansion (depth 2, fanout 10 by default).
                working_nodes = min(nodes, batch_size * 40)
            else:
                working_nodes = min(nodes, batch_size)
            density = edges / max(1, nodes)
            working_edges = max(1, int(working_nodes * density))
            labeled = max(1, int(data.labeled_nodes().size))
            batches_per_epoch = max(1, labeled // max(1, batch_size))
            sampling_cost = working_nodes * batches_per_epoch * 1e-6

        # Memory: features + activations per layer + adjacency structure(s)
        # (one matrix per relation for relation-aware methods) + weights.
        activation_bytes = working_nodes * (feature_dim + hidden * self.num_layers) * _FLOAT_BYTES
        adjacency_bytes = working_edges * 3 * _FLOAT_BYTES * relations
        weight_bytes = (feature_dim * hidden + hidden * hidden * (self.num_layers - 1)
                        + hidden * max(1, data.num_classes)) * _FLOAT_BYTES * max(1, min(relations, 8))
        # Backpropagation roughly doubles the live activations.
        memory = 2.0 * activation_bytes + adjacency_bytes + weight_bytes

        # Time: per epoch, aggregation touches every edge once per layer and
        # the dense transforms are nodes x feature x hidden.
        flops_per_epoch = (working_edges * hidden * self.num_layers * relations
                           + working_nodes * feature_dim * hidden
                           + working_nodes * hidden * hidden * (self.num_layers - 1))
        flops_per_epoch *= batches_per_epoch if profile.family == "gnn_sampling" else 1
        time_seconds = flops_per_epoch * epochs * _SECONDS_PER_FLOP + \
            sampling_cost * epochs

        return CostEstimate(
            method=profile.name,
            memory_bytes=float(memory),
            time_seconds=float(time_seconds),
            accuracy_prior=profile.accuracy_prior,
            details={
                "working_nodes": float(working_nodes),
                "working_edges": float(working_edges),
                "relations": float(relations),
                "batches_per_epoch": float(batches_per_epoch),
                "epochs": float(epochs),
            },
        )

    # ------------------------------------------------------------------
    # KGE estimates (link prediction)
    # ------------------------------------------------------------------
    def _estimate_kge(self, profile: MethodProfile, data: TriplesData,
                      epochs: int, batch_size: int) -> CostEstimate:
        entities = data.num_entities
        relations = data.num_relations
        triples = max(1, data.num_triples)
        dim = self.embedding_dim

        if profile.family == "kge_inductive":
            # MorsE keeps only relation-level tables; entity embeddings are
            # composed on the fly from sampled sub-KGs.
            table_bytes = (3 * relations) * dim * _FLOAT_BYTES
            working_triples = min(triples, batch_size)
            working_entities = min(entities, working_triples * 2)
        else:
            table_bytes = (entities + relations) * dim * _FLOAT_BYTES
            working_triples = min(triples, batch_size)
            working_entities = entities
        batch_bytes = working_triples * (1 + self.num_negatives) * 3 * dim * _FLOAT_BYTES
        memory = 2.0 * table_bytes + batch_bytes + working_entities * dim * _FLOAT_BYTES

        batches_per_epoch = max(1, triples // max(1, batch_size))
        flops_per_batch = working_triples * (1 + self.num_negatives) * dim * 6
        if profile.family == "kge_inductive":
            flops_per_batch += working_triples * dim * 4  # entity composition
            batches_per_epoch = max(1, batches_per_epoch // 4)
        time_seconds = flops_per_batch * batches_per_epoch * epochs * _SECONDS_PER_FLOP

        return CostEstimate(
            method=profile.name,
            memory_bytes=float(memory),
            time_seconds=float(time_seconds),
            accuracy_prior=profile.accuracy_prior,
            details={
                "entities": float(entities),
                "relations": float(relations),
                "triples": float(triples),
                "batches_per_epoch": float(batches_per_epoch),
                "epochs": float(epochs),
            },
        )
