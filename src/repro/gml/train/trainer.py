"""Training loops for the supported GML methods.

Three trainers cover the paper's method families:

* :class:`FullBatchNodeClassificationTrainer` — RGCN / GCN / GAT trained on
  the whole (sub)graph every epoch ("full propagation" in Fig 5),
* :class:`SamplingNodeClassificationTrainer` — GraphSAINT / ShaDow-SAINT
  mini-batch training over sampled subgraphs,
* :class:`KGETrainer` and :class:`MorsETrainer` — link-prediction training
  with negative sampling (transductive KGE and inductive MorsE).

Every trainer measures elapsed time and peak memory with
:class:`~repro.gml.train.budget.ResourceMonitor` and can enforce a
:class:`~repro.gml.train.budget.TaskBudget`, because those numbers are what
the paper's evaluation (Figs 13-15) reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import BudgetExceededError, TrainingError
from repro.gml.autograd import Tensor, cross_entropy, no_grad
from repro.gml.data import GraphData, TriplesData
from repro.gml.kge.base import KGEModel, ranking_metrics
from repro.gml.kge.morse import MorsE
from repro.gml.nn.models import NodeClassifier
from repro.gml.nn.optim import Adam, Optimizer, clip_grad_norm
from repro.gml.sampling.base import SubgraphSampler
from repro.gml.sampling.negative import EdgeSubKGSampler, TripleBatchSampler
from repro.gml.train.budget import ResourceMonitor, ResourceUsage, TaskBudget
from repro.gml.train.estimator import METHOD_PROFILES, MethodCostEstimator
from repro.gml.train.metrics import accuracy, classification_report

__all__ = [
    "TrainingResult",
    "FullBatchNodeClassificationTrainer",
    "SamplingNodeClassificationTrainer",
    "KGETrainer",
    "MorsETrainer",
]


@dataclass
class TrainingResult:
    """Everything the platform records about one training run."""

    method: str
    task_type: str
    metrics: Dict[str, float]
    usage: ResourceUsage
    num_epochs: int
    history: List[Dict[str, float]] = field(default_factory=list)
    inference_seconds: float = 0.0
    model: object = None
    stopped_early: bool = False

    @property
    def score(self) -> float:
        """The headline metric (accuracy for NC, Hits@10 for LP)."""
        for key in ("accuracy", "hits@10", "mrr", "f1_macro"):
            if key in self.metrics:
                return float(self.metrics[key])
        return 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "task_type": self.task_type,
            "num_epochs": self.num_epochs,
            "stopped_early": self.stopped_early,
            "inference_seconds": round(self.inference_seconds, 6),
            **{f"metric_{k}": round(float(v), 6) for k, v in self.metrics.items()},
            **self.usage.as_dict(),
        }


class _BaseTrainer:
    """Shared budget handling."""

    def __init__(self, budget: Optional[TaskBudget] = None,
                 enforce_budget: bool = False) -> None:
        self.budget = budget or TaskBudget()
        self.enforce_budget = enforce_budget

    def _check_budget(self, monitor: ResourceMonitor) -> bool:
        """Return True when training should stop (budget exhausted)."""
        if not self.enforce_budget:
            return False
        try:
            monitor.check()
        except BudgetExceededError:
            return True
        return False


class FullBatchNodeClassificationTrainer(_BaseTrainer):
    """Full-graph training of a :class:`NodeClassifier` (RGCN / GCN / GAT)."""

    def __init__(self, model: NodeClassifier, data: GraphData,
                 epochs: int = 40, learning_rate: float = 0.01,
                 weight_decay: float = 5e-4, grad_clip: float = 5.0,
                 budget: Optional[TaskBudget] = None,
                 enforce_budget: bool = False,
                 method_name: str = "rgcn") -> None:
        super().__init__(budget, enforce_budget)
        if data.labeled_nodes().size == 0:
            raise TrainingError("dataset has no labelled nodes")
        self.model = model
        self.data = data
        self.epochs = epochs
        self.grad_clip = grad_clip
        self.method_name = method_name
        self.optimizer: Optimizer = Adam(model.parameters(), lr=learning_rate,
                                         weight_decay=weight_decay)

    def train(self) -> TrainingResult:
        data = self.data
        train_nodes = np.flatnonzero(data.train_mask)
        history: List[Dict[str, float]] = []
        stopped_early = False
        estimator = MethodCostEstimator(hidden_dim=64)
        estimate = (estimator.estimate(self.method_name, data, epochs=self.epochs)
                    if self.method_name in METHOD_PROFILES else None)
        with ResourceMonitor(self.budget) as monitor:
            for epoch in range(self.epochs):
                self.model.train()
                self.optimizer.zero_grad()
                logits = self.model.forward(data)
                loss = cross_entropy(logits[train_nodes], data.labels[train_nodes])
                loss.backward()
                clip_grad_norm(self.optimizer.parameters, self.grad_clip)
                self.optimizer.step()
                if epoch % 5 == 0 or epoch == self.epochs - 1:
                    val_acc = self._evaluate_mask(data.val_mask)
                    history.append({"epoch": epoch, "loss": float(loss.item()),
                                    "val_accuracy": val_acc})
                if self._check_budget(monitor):
                    stopped_early = True
                    break
        metrics, inference_seconds = self._final_metrics()
        usage = monitor.usage
        if estimate is not None:
            usage.estimated_memory_bytes = int(estimate.memory_bytes)
        return TrainingResult(
            method=self.method_name, task_type="node_classification",
            metrics=metrics, usage=usage, num_epochs=self.epochs,
            history=history, inference_seconds=inference_seconds,
            model=self.model, stopped_early=stopped_early)

    def _evaluate_mask(self, mask: np.ndarray) -> float:
        nodes = np.flatnonzero(mask)
        if nodes.size == 0:
            return 0.0
        self.model.eval()
        predictions = self.model.predict(self.data, nodes)
        return accuracy(self.data.labels[nodes], predictions)

    def _final_metrics(self) -> (Dict[str, float], float):
        import time as _time
        self.model.eval()
        test_nodes = np.flatnonzero(self.data.test_mask)
        if test_nodes.size == 0:
            test_nodes = self.data.labeled_nodes()
        started = _time.perf_counter()
        predictions = self.model.predict(self.data, test_nodes)
        inference_seconds = _time.perf_counter() - started
        report = classification_report(self.data.labels[test_nodes], predictions,
                                       num_classes=self.data.num_classes)
        report["val_accuracy"] = self._evaluate_mask(self.data.val_mask)
        return report, inference_seconds


class SamplingNodeClassificationTrainer(_BaseTrainer):
    """Mini-batch training over sampled subgraphs (GraphSAINT / ShaDow)."""

    def __init__(self, model: NodeClassifier, data: GraphData,
                 sampler: SubgraphSampler, epochs: int = 20,
                 learning_rate: float = 0.01, weight_decay: float = 5e-4,
                 grad_clip: float = 5.0, budget: Optional[TaskBudget] = None,
                 enforce_budget: bool = False,
                 method_name: str = "graph_saint") -> None:
        super().__init__(budget, enforce_budget)
        self.model = model
        self.data = data
        self.sampler = sampler
        self.epochs = epochs
        self.grad_clip = grad_clip
        self.method_name = method_name
        self.optimizer: Optimizer = Adam(model.parameters(), lr=learning_rate,
                                         weight_decay=weight_decay)

    def train(self) -> TrainingResult:
        history: List[Dict[str, float]] = []
        stopped_early = False
        with ResourceMonitor(self.budget) as monitor:
            for epoch in range(self.epochs):
                self.model.train()
                epoch_loss = 0.0
                batches = 0
                for batch in self.sampler:
                    sub = batch.data
                    # Only train on labelled *training* nodes inside the batch;
                    # for ShaDow batches restrict further to the root nodes.
                    candidates = np.flatnonzero(sub.train_mask & (sub.labels >= 0))
                    if batch.root_nodes is not None:
                        roots = set(batch.root_nodes.tolist())
                        candidates = np.asarray(
                            [c for c in candidates if int(c) in roots], dtype=np.int64)
                    if candidates.size == 0:
                        continue
                    self.optimizer.zero_grad()
                    logits = self.model.forward(sub)
                    weight = None
                    if batch.node_weight is not None:
                        weight = batch.node_weight[candidates]
                    loss = cross_entropy(logits[candidates], sub.labels[candidates],
                                         weight=weight)
                    loss.backward()
                    clip_grad_norm(self.optimizer.parameters, self.grad_clip)
                    self.optimizer.step()
                    epoch_loss += float(loss.item())
                    batches += 1
                if epoch % 5 == 0 or epoch == self.epochs - 1:
                    val_acc = self._evaluate_mask(self.data.val_mask)
                    history.append({"epoch": epoch,
                                    "loss": epoch_loss / max(1, batches),
                                    "val_accuracy": val_acc})
                if self._check_budget(monitor):
                    stopped_early = True
                    break
        metrics, inference_seconds = self._final_metrics()
        return TrainingResult(
            method=self.method_name, task_type="node_classification",
            metrics=metrics, usage=monitor.usage, num_epochs=self.epochs,
            history=history, inference_seconds=inference_seconds,
            model=self.model, stopped_early=stopped_early)

    def _evaluate_mask(self, mask: np.ndarray) -> float:
        nodes = np.flatnonzero(mask)
        if nodes.size == 0:
            return 0.0
        self.model.eval()
        predictions = self.model.predict(self.data, nodes)
        return accuracy(self.data.labels[nodes], predictions)

    def _final_metrics(self):
        import time as _time
        self.model.eval()
        test_nodes = np.flatnonzero(self.data.test_mask)
        if test_nodes.size == 0:
            test_nodes = self.data.labeled_nodes()
        started = _time.perf_counter()
        predictions = self.model.predict(self.data, test_nodes)
        inference_seconds = _time.perf_counter() - started
        report = classification_report(self.data.labels[test_nodes], predictions,
                                       num_classes=self.data.num_classes)
        report["val_accuracy"] = self._evaluate_mask(self.data.val_mask)
        return report, inference_seconds


class KGETrainer(_BaseTrainer):
    """Negative-sampling training of a transductive KGE model."""

    def __init__(self, model: KGEModel, data: TriplesData, epochs: int = 50,
                 batch_size: int = 1024, num_negatives: int = 8,
                 learning_rate: float = 0.05, budget: Optional[TaskBudget] = None,
                 enforce_budget: bool = False, method_name: str = "kge",
                 seed: int = 0) -> None:
        super().__init__(budget, enforce_budget)
        self.model = model
        self.data = data
        self.epochs = epochs
        self.method_name = method_name
        self.batch_sampler = TripleBatchSampler(
            data, batch_size=batch_size, num_negatives=num_negatives, seed=seed)
        self.optimizer: Optimizer = Adam(model.parameters(), lr=learning_rate)

    def train(self) -> TrainingResult:
        history: List[Dict[str, float]] = []
        stopped_early = False
        with ResourceMonitor(self.budget) as monitor:
            for epoch in range(self.epochs):
                epoch_loss = 0.0
                batches = 0
                for positives, negatives in self.batch_sampler:
                    self.optimizer.zero_grad()
                    loss = self.model.loss(positives, negatives)
                    loss.backward()
                    self.optimizer.step()
                    epoch_loss += float(loss.item())
                    batches += 1
                if epoch % 10 == 0 or epoch == self.epochs - 1:
                    history.append({"epoch": epoch,
                                    "loss": epoch_loss / max(1, batches)})
                if self._check_budget(monitor):
                    stopped_early = True
                    break
        metrics, inference_seconds = self._final_metrics()
        return TrainingResult(
            method=self.method_name, task_type="link_prediction",
            metrics=metrics, usage=monitor.usage, num_epochs=self.epochs,
            history=history, inference_seconds=inference_seconds,
            model=self.model, stopped_early=stopped_early)

    def _final_metrics(self):
        import time as _time
        test_triples = self.data.split("test")
        if test_triples.shape[0] > 200:
            test_triples = test_triples[:200]
        started = _time.perf_counter()
        ranks = []
        all_triples = self.data.triples
        grouped: Dict[tuple, List[int]] = {}
        for head, relation, tail in all_triples:
            grouped.setdefault((int(head), int(relation)), []).append(int(tail))
        for head, relation, tail in test_triples:
            known = np.asarray(grouped.get((int(head), int(relation)), []), dtype=np.int64)
            ranks.append(self.model.rank_tail(int(head), int(relation), int(tail),
                                              filtered_tails=known))
        inference_seconds = _time.perf_counter() - started
        return ranking_metrics(np.asarray(ranks)), inference_seconds


class MorsETrainer(_BaseTrainer):
    """Meta-training of the inductive MorsE model over sampled sub-KGs."""

    def __init__(self, model: MorsE, data: TriplesData, epochs: int = 20,
                 triples_per_subkg: int = 2000, subkgs_per_epoch: int = 4,
                 num_negatives: int = 8, learning_rate: float = 0.05,
                 budget: Optional[TaskBudget] = None, enforce_budget: bool = False,
                 method_name: str = "morse", seed: int = 0) -> None:
        super().__init__(budget, enforce_budget)
        self.model = model
        self.data = data
        self.epochs = epochs
        self.method_name = method_name
        self.subkg_sampler = EdgeSubKGSampler(
            data, triples_per_subkg=triples_per_subkg,
            num_subkgs=subkgs_per_epoch, seed=seed)
        from repro.gml.sampling.negative import NegativeSampler
        self.negative_sampler_seed = seed
        self.num_negatives = num_negatives
        self.optimizer: Optimizer = Adam(model.parameters(), lr=learning_rate)

    def train(self) -> TrainingResult:
        from repro.gml.sampling.negative import NegativeSampler
        history: List[Dict[str, float]] = []
        stopped_early = False
        with ResourceMonitor(self.budget) as monitor:
            for epoch in range(self.epochs):
                epoch_loss = 0.0
                batches = 0
                for local_triples, _, num_local in self.subkg_sampler:
                    negative_sampler = NegativeSampler(
                        num_local, num_negatives=self.num_negatives,
                        seed=self.negative_sampler_seed + epoch)
                    negatives = negative_sampler.corrupt(local_triples)
                    self.optimizer.zero_grad()
                    entity_embeddings = self.model.compose_entity_embeddings(
                        local_triples, num_local)
                    loss = self.model.loss(entity_embeddings, local_triples, negatives)
                    loss.backward()
                    self.optimizer.step()
                    epoch_loss += float(loss.item())
                    batches += 1
                if epoch % 5 == 0 or epoch == self.epochs - 1:
                    history.append({"epoch": epoch,
                                    "loss": epoch_loss / max(1, batches)})
                if self._check_budget(monitor):
                    stopped_early = True
                    break
        metrics, inference_seconds = self._final_metrics()
        return TrainingResult(
            method=self.method_name, task_type="link_prediction",
            metrics=metrics, usage=monitor.usage, num_epochs=self.epochs,
            history=history, inference_seconds=inference_seconds,
            model=self.model, stopped_early=stopped_early)

    def _final_metrics(self):
        import time as _time
        train_triples = self.data.split("train")
        entity_embeddings = self.model.materialise_entities(
            train_triples, self.data.num_entities)
        test_triples = self.data.split("test")
        if test_triples.shape[0] > 200:
            test_triples = test_triples[:200]
        started = _time.perf_counter()
        metrics = self.model.evaluate(entity_embeddings, test_triples,
                                      all_triples=self.data.triples)
        inference_seconds = _time.perf_counter() - started
        return metrics, inference_seconds
