"""Evaluation metrics: classification (accuracy, F1) and ranking (MRR, Hits@k)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "accuracy",
    "f1_score",
    "confusion_matrix",
    "mean_reciprocal_rank",
    "hits_at_k",
    "classification_report",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions (0.0 on empty input)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: Optional[int] = None) -> np.ndarray:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(y_true, y_pred):
        if 0 <= true < num_classes and 0 <= pred < num_classes:
            matrix[true, pred] += 1
    return matrix


def f1_score(y_true: np.ndarray, y_pred: np.ndarray,
             average: str = "macro", num_classes: Optional[int] = None) -> float:
    """Macro- or micro-averaged F1."""
    matrix = confusion_matrix(y_true, y_pred, num_classes=num_classes)
    if average == "micro":
        true_positive = np.trace(matrix)
        total = matrix.sum()
        return float(true_positive / total) if total else 0.0
    f1_values = []
    for class_id in range(matrix.shape[0]):
        true_positive = matrix[class_id, class_id]
        false_positive = matrix[:, class_id].sum() - true_positive
        false_negative = matrix[class_id, :].sum() - true_positive
        if true_positive == 0 and false_positive == 0 and false_negative == 0:
            continue
        precision = true_positive / (true_positive + false_positive) \
            if (true_positive + false_positive) else 0.0
        recall = true_positive / (true_positive + false_negative) \
            if (true_positive + false_negative) else 0.0
        if precision + recall == 0:
            f1_values.append(0.0)
        else:
            f1_values.append(2 * precision * recall / (precision + recall))
    return float(np.mean(f1_values)) if f1_values else 0.0


def classification_report(y_true: np.ndarray, y_pred: np.ndarray,
                          num_classes: Optional[int] = None) -> Dict[str, float]:
    return {
        "accuracy": accuracy(y_true, y_pred),
        "f1_macro": f1_score(y_true, y_pred, average="macro", num_classes=num_classes),
        "f1_micro": f1_score(y_true, y_pred, average="micro", num_classes=num_classes),
    }


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    return float((1.0 / ranks).mean())


def hits_at_k(ranks: np.ndarray, k: int = 10) -> float:
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    return float((ranks <= k).mean())
