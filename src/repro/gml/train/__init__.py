"""Training utilities: budgets, cost estimators, metrics and trainers."""

from repro.gml.train.budget import (
    ResourceMonitor,
    ResourceUsage,
    TaskBudget,
    parse_budget,
)
from repro.gml.train.estimator import (
    METHOD_PROFILES,
    CostEstimate,
    MethodCostEstimator,
    MethodProfile,
)
from repro.gml.train.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    hits_at_k,
    mean_reciprocal_rank,
)
from repro.gml.train.trainer import (
    FullBatchNodeClassificationTrainer,
    KGETrainer,
    MorsETrainer,
    SamplingNodeClassificationTrainer,
    TrainingResult,
)

__all__ = [
    "ResourceMonitor",
    "ResourceUsage",
    "TaskBudget",
    "parse_budget",
    "METHOD_PROFILES",
    "CostEstimate",
    "MethodCostEstimator",
    "MethodProfile",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "hits_at_k",
    "mean_reciprocal_rank",
    "FullBatchNodeClassificationTrainer",
    "KGETrainer",
    "MorsETrainer",
    "SamplingNodeClassificationTrainer",
    "TrainingResult",
]
