"""Neural-network building blocks: modules, layers, models, optimizers."""

from repro.gml.nn.module import Module
from repro.gml.nn.init import xavier_normal, xavier_uniform, uniform, zeros_init
from repro.gml.nn.layers import GATConv, GCNConv, Linear, RGCNConv
from repro.gml.nn.models import GAT, GCN, MLPClassifier, NodeClassifier, RGCN
from repro.gml.nn.optim import SGD, Adam, Optimizer, StepLR, clip_grad_norm

__all__ = [
    "Module",
    "xavier_uniform",
    "xavier_normal",
    "uniform",
    "zeros_init",
    "Linear",
    "GCNConv",
    "RGCNConv",
    "GATConv",
    "NodeClassifier",
    "GCN",
    "RGCN",
    "GAT",
    "MLPClassifier",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
]
