"""Gradient-descent optimizers (SGD with momentum, Adam) and LR scheduling."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TrainingError
from repro.gml.autograd import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm"]


def clip_grad_norm(parameters: List[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad = parameter.grad * scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters, applies updates, zeroes gradients."""

    def __init__(self, parameters: List[Parameter], lr: float) -> None:
        if lr <= 0:
            raise TrainingError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer needs at least one parameter")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: List[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(self, parameters: List[Parameter], lr: float = 0.01,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step = 0

    def step(self) -> None:
        self._step += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m = self._m.get(id(parameter))
            v = self._v.get(id(parameter))
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(parameter)] = m
            self._v[id(parameter)] = v
            m_hat = m / (1 - self.beta1 ** self._step)
            v_hat = v / (1 - self.beta2 ** self._step)
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10,
                 gamma: float = 0.5) -> None:
        if step_size < 1:
            raise TrainingError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> float:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
