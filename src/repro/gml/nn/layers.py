"""Graph neural network layers built on the numpy autograd engine.

Layers implemented (paper Fig 5 taxonomy):

* :class:`Linear` — dense affine map,
* :class:`GCNConv` — spectral graph convolution (Kipf & Welling),
* :class:`RGCNConv` — relational GCN with basis decomposition
  (Schlichtkrull et al., the paper's full-batch baseline),
* :class:`GATConv` — attentional aggregation (Velickovic et al.).

All layers consume pre-built ``scipy.sparse`` adjacency matrices (produced by
:meth:`repro.gml.data.GraphData.adjacency`), matching the "sparse matrices"
stage of the pipeline in paper Fig 6.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse as sp

from repro.exceptions import ShapeError
from repro.gml.autograd import Parameter, Tensor, gather_rows, spmm
from repro.gml.nn.init import xavier_uniform, zeros_init
from repro.gml.nn.module import Module

__all__ = ["Linear", "GCNConv", "RGCNConv", "GATConv"]


class Linear(Module):
    """Dense layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: int = 0) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), seed=seed),
                                name="linear.weight")
        self.bias = Parameter(zeros_init((out_features,)), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(f"Linear expected {self.in_features} features, got {x.shape[-1]}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class GCNConv(Module):
    """Graph convolution: ``H' = A_hat (H W) + b`` with normalised adjacency."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: int = 0) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), seed=seed),
                                name="gcn.weight")
        self.bias = Parameter(zeros_init((out_features,)), name="gcn.bias") if bias else None

    def forward(self, adjacency: sp.spmatrix, x: Tensor) -> Tensor:
        support = x @ self.weight
        out = spmm(adjacency, support)
        if self.bias is not None:
            out = out + self.bias
        return out


class RGCNConv(Module):
    """Relational GCN layer with basis decomposition.

    ``H' = H W_self + sum_r A_r (H W_r)`` where each relation weight ``W_r``
    is a linear combination of ``num_bases`` shared basis matrices.  Basis
    decomposition keeps the parameter count manageable for KGs with many
    relation types (DBLP has 48, YAGO-4 has 98 in the paper's Table I).
    """

    def __init__(self, in_features: int, out_features: int, num_relations: int,
                 num_bases: Optional[int] = None, bias: bool = True,
                 seed: int = 0) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.num_relations = num_relations
        if num_bases is None or num_bases <= 0 or num_bases > num_relations:
            num_bases = min(num_relations, 8)
        self.num_bases = num_bases
        self.bases = Parameter(
            xavier_uniform((num_bases, in_features, out_features), seed=seed),
            name="rgcn.bases")
        self.coefficients = Parameter(
            xavier_uniform((num_relations, num_bases), seed=seed + 1),
            name="rgcn.coefficients")
        self.self_weight = Parameter(
            xavier_uniform((in_features, out_features), seed=seed + 2),
            name="rgcn.self_weight")
        self.bias = Parameter(zeros_init((out_features,)), name="rgcn.bias") if bias else None

    def relation_weight(self, relation: int) -> Tensor:
        """Compose the weight matrix for one relation from the shared bases."""
        coeff = self.coefficients[relation]  # (num_bases,)
        bases_flat = self.bases.reshape(self.num_bases,
                                        self.in_features * self.out_features)
        composed = coeff.reshape(1, self.num_bases) @ bases_flat
        return composed.reshape(self.in_features, self.out_features)

    def forward(self, relation_adjacencies: Sequence[sp.spmatrix], x: Tensor) -> Tensor:
        if len(relation_adjacencies) != self.num_relations:
            raise ShapeError(
                f"expected {self.num_relations} relation adjacencies, "
                f"got {len(relation_adjacencies)}")
        out = x @ self.self_weight
        for relation, adjacency in enumerate(relation_adjacencies):
            if adjacency.nnz == 0:
                continue
            weight = self.relation_weight(relation)
            out = out + spmm(adjacency, x @ weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class GATConv(Module):
    """Single-head graph attention layer.

    Attention logits ``e_ij = LeakyReLU(a_src . h_i + a_dst . h_j)`` are
    normalised per destination node with a segment softmax implemented with
    sparse incidence matrices, so the whole computation stays differentiable.
    """

    def __init__(self, in_features: int, out_features: int,
                 negative_slope: float = 0.2, bias: bool = True, seed: int = 0) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.negative_slope = negative_slope
        self.weight = Parameter(xavier_uniform((in_features, out_features), seed=seed),
                                name="gat.weight")
        self.attn_src = Parameter(xavier_uniform((out_features, 1), seed=seed + 1),
                                  name="gat.attn_src")
        self.attn_dst = Parameter(xavier_uniform((out_features, 1), seed=seed + 2),
                                  name="gat.attn_dst")
        self.bias = Parameter(zeros_init((out_features,)), name="gat.bias") if bias else None

    def forward(self, edge_index: np.ndarray, num_nodes: int, x: Tensor) -> Tensor:
        edge_index = np.asarray(edge_index, dtype=np.int64).reshape(2, -1)
        # Add self loops so isolated nodes keep their own representation.
        loops = np.arange(num_nodes, dtype=np.int64)
        src = np.concatenate([edge_index[0], loops])
        dst = np.concatenate([edge_index[1], loops])
        num_edges = src.shape[0]

        h = x @ self.weight                                   # (N, F')
        src_scores = (h @ self.attn_src).reshape(num_nodes)    # (N,)
        dst_scores = (h @ self.attn_dst).reshape(num_nodes)
        edge_logits = gather_rows(src_scores.reshape(num_nodes, 1), src) + \
            gather_rows(dst_scores.reshape(num_nodes, 1), dst)  # (E, 1)
        edge_logits = edge_logits.leaky_relu(self.negative_slope)

        # Numerical stabilisation constant (no gradient needed).
        max_per_dst = np.full(num_nodes, -np.inf)
        np.maximum.at(max_per_dst, dst, edge_logits.data.reshape(-1))
        max_per_dst[~np.isfinite(max_per_dst)] = 0.0
        stabiliser = Tensor(max_per_dst[dst].reshape(num_edges, 1))
        exp_logits = (edge_logits - stabiliser).exp()          # (E, 1)

        # Segment sums via the destination incidence matrix (N x E).
        incidence = sp.coo_matrix(
            (np.ones(num_edges), (dst, np.arange(num_edges))),
            shape=(num_nodes, num_edges)).tocsr()
        denom = spmm(incidence, exp_logits)                    # (N, 1)
        denom_per_edge = gather_rows(denom, dst)               # (E, 1)
        alpha = exp_logits / (denom_per_edge + 1e-12)          # (E, 1)

        messages = gather_rows(h, src) * alpha                 # (E, F')
        out = spmm(incidence, messages)                        # (N, F')
        if self.bias is not None:
            out = out + self.bias
        return out
