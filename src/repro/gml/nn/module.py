"""Minimal module / parameter-container abstraction.

:class:`Module` mirrors the small slice of ``torch.nn.Module`` the framework
needs: automatic parameter discovery (attributes that are
:class:`~repro.gml.autograd.Parameter`, :class:`~repro.gml.autograd.Embedding`
or nested :class:`Module` / lists thereof), train/eval switching, parameter
counting and state-dict save/load for the model store.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.gml.autograd import Embedding, Parameter

__all__ = ["Module"]


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        self.training = True

    # -- forward ------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter management --------------------------------------------------
    def parameters(self) -> List[Parameter]:
        parameters: List[Parameter] = []
        seen = set()

        def collect(obj) -> None:
            if isinstance(obj, Parameter):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    parameters.append(obj)
            elif isinstance(obj, Embedding):
                collect(obj.weight)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)
            elif isinstance(obj, dict):
                for item in obj.values():
                    collect(item)

        for value in vars(self).values():
            collect(value)
        return parameters

    def named_parameters(self) -> Iterator[tuple]:
        for index, parameter in enumerate(self.parameters()):
            name = parameter.name or f"param_{index}"
            yield name, parameter

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def parameter_bytes(self) -> int:
        return int(sum(p.data.nbytes for p in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialisation -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        parameters = self.parameters()
        for index, parameter in enumerate(parameters):
            key = f"param_{index}"
            if key not in state:
                raise KeyError(f"missing parameter {key} in state dict")
            if state[key].shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{state[key].shape} vs {parameter.data.shape}")
            parameter.data = state[key].copy()
