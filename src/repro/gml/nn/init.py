"""Weight initialisation utilities (Xavier/Glorot, uniform, zeros)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "uniform", "zeros_init"]


def xavier_uniform(shape, gain: float = 1.0, seed: int = 0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    rng = np.random.default_rng(seed)
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, gain: float = 1.0, seed: int = 0) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    rng = np.random.default_rng(seed)
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform(shape, low: float = -0.1, high: float = 0.1, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=shape)


def zeros_init(shape) -> np.ndarray:
    return np.zeros(shape)
