"""GNN models for node classification.

Each model consumes a :class:`~repro.gml.data.GraphData` and produces logits
for every node.  The same model classes are used for full-batch training
(RGCN/GCN/GAT on the whole graph) and for mini-batch training on sampled
subgraphs (GraphSAINT / ShaDow-SAINT) — the trainer decides which graph the
forward pass sees, exactly as in the paper's pipeline where the GNN method
and the sampler are independent choices.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from scipy import sparse as sp

from repro.exceptions import TrainingError
from repro.gml.autograd import Tensor, dropout, log_softmax, no_grad
from repro.gml.data import GraphData
from repro.gml.nn.layers import GATConv, GCNConv, Linear, RGCNConv
from repro.gml.nn.module import Module

__all__ = ["NodeClassifier", "GCN", "RGCN", "GAT", "MLPClassifier"]


class NodeClassifier(Module):
    """Base class: logits for every node of a :class:`GraphData`."""

    def forward(self, data: GraphData, features: Optional[Tensor] = None) -> Tensor:
        raise NotImplementedError

    def predict(self, data: GraphData, nodes: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted class ids (optionally restricted to ``nodes``)."""
        with no_grad():
            logits = self.forward(data)
        predictions = np.argmax(logits.data, axis=1)
        if nodes is not None:
            return predictions[np.asarray(nodes, dtype=np.int64)]
        return predictions

    def predict_proba(self, data: GraphData,
                      nodes: Optional[np.ndarray] = None) -> np.ndarray:
        with no_grad():
            logits = self.forward(data)
            probs = np.exp(log_softmax(logits, axis=-1).data)
        if nodes is not None:
            return probs[np.asarray(nodes, dtype=np.int64)]
        return probs


class GCN(NodeClassifier):
    """Multi-layer graph convolutional network (relation-agnostic)."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 num_layers: int = 2, dropout_p: float = 0.3, seed: int = 0) -> None:
        super().__init__()
        if num_layers < 1:
            raise TrainingError("GCN needs at least one layer")
        self.dropout_p = dropout_p
        self._rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers = [GCNConv(dims[i], dims[i + 1], seed=seed + i)
                       for i in range(num_layers)]

    def forward(self, data: GraphData, features: Optional[Tensor] = None) -> Tensor:
        adjacency = data.cached_adjacency()
        h = features if features is not None else Tensor(data.features)
        for index, layer in enumerate(self.layers):
            h = layer(adjacency, h)
            if index < len(self.layers) - 1:
                h = h.relu()
                h = dropout(h, self.dropout_p, training=self.training, rng=self._rng)
        return h


class RGCN(NodeClassifier):
    """Relational GCN — the paper's full-batch ("full propagation") method."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 num_relations: int, num_layers: int = 2, num_bases: Optional[int] = None,
                 dropout_p: float = 0.3, seed: int = 0) -> None:
        super().__init__()
        if num_layers < 1:
            raise TrainingError("RGCN needs at least one layer")
        self.dropout_p = dropout_p
        self.num_relations = num_relations
        self._rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers = [RGCNConv(dims[i], dims[i + 1], num_relations,
                                num_bases=num_bases, seed=seed + i)
                       for i in range(num_layers)]

    def forward(self, data: GraphData, features: Optional[Tensor] = None) -> Tensor:
        if data.num_relations != self.num_relations:
            raise TrainingError(
                f"model was built for {self.num_relations} relations, "
                f"data has {data.num_relations}")
        adjacencies = data.cached_relation_adjacencies()
        h = features if features is not None else Tensor(data.features)
        for index, layer in enumerate(self.layers):
            h = layer(adjacencies, h)
            if index < len(self.layers) - 1:
                h = h.relu()
                h = dropout(h, self.dropout_p, training=self.training, rng=self._rng)
        return h


class GAT(NodeClassifier):
    """Graph attention network (single head per layer)."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 num_layers: int = 2, dropout_p: float = 0.3, seed: int = 0) -> None:
        super().__init__()
        if num_layers < 1:
            raise TrainingError("GAT needs at least one layer")
        self.dropout_p = dropout_p
        self._rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers = [GATConv(dims[i], dims[i + 1], seed=seed + i)
                       for i in range(num_layers)]

    def forward(self, data: GraphData, features: Optional[Tensor] = None) -> Tensor:
        h = features if features is not None else Tensor(data.features)
        for index, layer in enumerate(self.layers):
            h = layer(data.edge_index, data.num_nodes, h)
            if index < len(self.layers) - 1:
                h = h.relu()
                h = dropout(h, self.dropout_p, training=self.training, rng=self._rng)
        return h


class MLPClassifier(NodeClassifier):
    """Structure-free baseline: an MLP over node features only.

    Useful as a sanity baseline in tests and ablations (a GNN should beat it
    whenever the graph structure carries signal).
    """

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 dropout_p: float = 0.3, seed: int = 0) -> None:
        super().__init__()
        self.dropout_p = dropout_p
        self._rng = np.random.default_rng(seed)
        self.layer1 = Linear(in_features, hidden_features, seed=seed)
        self.layer2 = Linear(hidden_features, num_classes, seed=seed + 1)

    def forward(self, data: GraphData, features: Optional[Tensor] = None) -> Tensor:
        h = features if features is not None else Tensor(data.features)
        h = self.layer1(h).relu()
        h = dropout(h, self.dropout_p, training=self.training, rng=self._rng)
        return self.layer2(h)
