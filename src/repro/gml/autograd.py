"""A small reverse-mode automatic differentiation engine over numpy arrays.

This module is the computational core of the GML framework substrate.  The
paper's pipelines rely on PyTorch (through PyG/DGL); since the reproduction
is pure-Python, :class:`Tensor` provides the minimal set of differentiable
operations the GNN layers and KGE models need:

* element-wise arithmetic with broadcasting,
* dense ``matmul`` and *sparse* ``spmm`` (a constant ``scipy.sparse`` matrix
  times a dense tensor — the workhorse of message passing),
* activations (ReLU, sigmoid, tanh, leaky ReLU), softmax / log-softmax,
* reductions (sum, mean), indexing (gather rows), concatenation, dropout,
* an :class:`Embedding` table with scatter-add gradients.

Gradients are accumulated with standard reverse-mode topological traversal.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import AutogradError, ShapeError

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "zeros",
    "ones",
    "tensor",
    "spmm",
    "concatenate",
    "stack",
    "gather_rows",
    "dropout",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "Embedding",
]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling gradient tracking (used for inference)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return data.astype(np.float64, copy=False)
    return np.asarray(data, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure."""

    __array_priority__ = 100  # numpy should defer to Tensor operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 children: Tuple["Tensor", ...] = (),
                 backward_fn: Optional[Callable[[np.ndarray], None]] = None,
                 name: str = "") -> None:
        self.data = _as_array(data)
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._children = children
        self._backward_fn = backward_fn
        self.name = name

    # -- basic properties ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    # -- autograd machinery ----------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise AutogradError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def build(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for child in node._children:
                build(child)
            topo.append(node)

        build(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward_fn is None:
                continue
            child_grads = node._backward_fn(node_grad)
            if child_grads is None:
                continue
            for child, child_grad in zip(node._children, child_grads):
                if child_grad is None:
                    continue
                if not (child.requires_grad or child._backward_fn is not None or child._children):
                    continue
                existing = grads.get(id(child))
                grads[id(child)] = child_grad if existing is None else existing + child_grad

    # -- helpers to build result tensors ---------------------------------------
    @staticmethod
    def _result(data: np.ndarray, children: Tuple["Tensor", ...],
                backward_fn: Callable[[np.ndarray], Optional[Tuple]]) -> "Tensor":
        needs_grad = _GRAD_ENABLED and any(
            c.requires_grad or c._backward_fn is not None or c._children for c in children
        )
        if not needs_grad:
            return Tensor(data)
        return Tensor(data, requires_grad=False, children=children, backward_fn=backward_fn)

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.data.shape),
                    _unbroadcast(grad, other_t.data.shape))

        return Tensor._result(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)
        return Tensor._result(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.data.shape),
                    _unbroadcast(-grad, other_t.data.shape))

        return Tensor._result(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad * other_t.data, self.data.shape),
                    _unbroadcast(grad * self.data, other_t.data.shape))

        return Tensor._result(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad / other_t.data, self.data.shape),
                    _unbroadcast(-grad * self.data / (other_t.data ** 2),
                                 other_t.data.shape))

        return Tensor._result(out_data, (self, other_t), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._result(out_data, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(other)
        if self.data.shape[-1] != other.data.shape[0]:
            raise ShapeError(
                f"matmul shape mismatch: {self.data.shape} @ {other.data.shape}")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray):
            return (grad @ other.data.T, self.data.T @ grad)

        return Tensor._result(out_data, (self, other), backward)

    __matmul__ = matmul

    # -- shaping ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._result(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad.T,)
        return Tensor._result(self.data.T, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._result(out_data, (self,), backward)

    # -- reductions ----------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad_arr = np.asarray(grad)
            if axis is not None and not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis=axis)
            return (np.broadcast_to(grad_arr, self.data.shape).copy(),)

        return Tensor._result(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- element-wise functions -------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._result(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._result(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._result(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._result(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60, 60))

        def backward(grad: np.ndarray):
            return (grad * out_data,)

        return Tensor._result(out_data, (self,), backward)

    def log(self, eps: float = 1e-12) -> "Tensor":
        out_data = np.log(self.data + eps)

        def backward(grad: np.ndarray):
            return (grad / (self.data + eps),)

        return Tensor._result(out_data, (self,), backward)

    def clip_norm(self, max_norm: float) -> "Tensor":
        """L2-normalise rows whose norm exceeds ``max_norm`` (no gradient path)."""
        norms = np.linalg.norm(self.data, axis=-1, keepdims=True)
        scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
        return Tensor(self.data * scale)


class Parameter(Tensor):
    """A tensor that is always a leaf requiring gradients (model weights)."""

    def __init__(self, data: ArrayLike, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)
        self.requires_grad = True  # Parameters track gradients even under no_grad()


# ---------------------------------------------------------------------------
# Free functions
# ---------------------------------------------------------------------------

def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor (A @ X).

    The sparse matrix carries no gradient; the gradient w.r.t. ``dense`` is
    ``A.T @ grad``.  This is the message-passing primitive used by every GNN
    layer in the framework.
    """
    if not sp.issparse(matrix):
        raise AutogradError("spmm expects a scipy sparse matrix")
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray):
        return (csr.T @ grad,)

    return Tensor._result(out_data, (dense,), backward)


def gather_rows(source: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows of ``source`` (gradient scatters back with ``np.add.at``)."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = source.data[indices]

    def backward(grad: np.ndarray):
        full = np.zeros_like(source.data)
        np.add.at(full, indices, grad)
        return (full,)

    return Tensor._result(out_data, (source,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    arrays = [t.data for t in tensors]
    out_data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]

    def backward(grad: np.ndarray):
        pieces = np.split(grad, np.cumsum(sizes)[:-1], axis=axis)
        return tuple(pieces)

    return Tensor._result(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(p.squeeze(axis) for p in pieces)

    return Tensor._result(out_data, tuple(tensors), backward)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.data.shape) >= p).astype(np.float64) / (1.0 - p)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor._result(x.data * mask, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (grad - dot),)

    return Tensor._result(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    probs = np.exp(out_data)

    def backward(grad: np.ndarray):
        return (grad - probs * grad.sum(axis=axis, keepdims=True),)

    return Tensor._result(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weight: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (N x C) and integer ``targets`` (N,)."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ShapeError("cross_entropy expects 2-D logits")
    n = logits.shape[0]
    if n == 0:
        return Tensor(0.0)
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(n), targets]
    if weight is not None:
        picked = picked * Tensor(weight)
        return -(picked.sum() / float(weight.sum()))
    return -(picked.mean())


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE over arbitrary-shaped logits."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    x = logits
    # Stable formulation: log(1 + exp(-|x|)) + max(x, 0) - x * y,
    # with |x| = relu(x) + relu(-x) and max(x, 0) = relu(x) so the whole
    # expression stays differentiable through the autograd graph.
    relu_x = x.relu()
    abs_x = relu_x + (-x).relu()
    softplus = (Tensor(1.0) + (-abs_x).exp()).log()
    loss = softplus + relu_x - x * targets_t
    return loss.mean()


class Embedding:
    """A learnable lookup table (entities / relations in KGE models)."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None,
                 scale: Optional[float] = None, name: str = "embedding") -> None:
        rng = rng or np.random.default_rng(0)
        if scale is None:
            scale = 6.0 / np.sqrt(dim)
        data = rng.uniform(-scale, scale, size=(num_embeddings, dim))
        self.weight = Parameter(data, name=name)
        self.num_embeddings = num_embeddings
        self.dim = dim

    def __call__(self, indices: np.ndarray) -> Tensor:
        return gather_rows(self.weight, indices)

    def parameters(self) -> List[Parameter]:
        return [self.weight]

    def normalize_(self, max_norm: float = 1.0) -> None:
        """In-place row L2 normalisation (TransE-style constraint)."""
        norms = np.linalg.norm(self.weight.data, axis=1, keepdims=True)
        norms = np.maximum(norms, 1e-12)
        self.weight.data = self.weight.data / norms * np.minimum(norms, max_norm)
