"""KGNet reproduction: a GML-enabled knowledge graph platform.

Reproduction of "Towards a GML-Enabled Knowledge Graph Platform"
(Abdallah & Mansour, ICDE 2023).  The package is organised as:

* :mod:`repro.rdf` -- in-memory RDF store (the Virtuoso stand-in),
* :mod:`repro.sparql` -- SPARQL parser/evaluator/endpoint with UDF support,
* :mod:`repro.gml` -- numpy-based graph machine learning framework
  (the PyG/DGL/OGB stand-in): autograd, GNN layers, samplers, KGE models,
  trainers, metrics and cost estimators,
* :mod:`repro.kgnet` -- the paper's contribution: meta-sampler, GMLaaS,
  KGMeta governor, SPARQL-ML service, and the KGNet facade,
* :mod:`repro.concurrency` -- serving-layer primitives: atomic counters,
  a bounded worker pool, and in-flight inference batching (snapshot
  isolation itself lives on :class:`repro.rdf.Graph` / ``Dataset``),
* :mod:`repro.server` -- the network service layer: a stdlib HTTP server
  speaking the W3C SPARQL 1.1 Protocol and the kgnet/v1 envelope API, with
  streaming content-negotiated results and a pure-stdlib ``RemoteClient``,
* :mod:`repro.replication` -- scale-out serving: WAL log-shipping read
  replicas (``ReplicaEngine``) and the replica-aware ``ReplicaSetClient``
  router with per-session read-your-writes,
* :mod:`repro.datasets` -- synthetic DBLP-like and YAGO4-like KG generators
  and task definitions.
"""

__version__ = "0.3.0"

from repro.concurrency import AtomicCounter, InflightBatcher, WorkerPool
from repro.gml.tasks import TaskSpec, TaskType
from repro.gml.train.budget import TaskBudget
from repro.kgnet.api import (
    API_VERSION,
    APIClient,
    APIRequest,
    APIResponse,
    APIRouter,
)
from repro.kgnet.kgmeta.governor import ModelMetadata
from repro.kgnet.meta_sampler import MetaSamplingConfig
from repro.kgnet.platform import KGNet
from repro.kgnet.sparqlml.service import DeleteReport, SelectReport, TrainReport
from repro.replication import ReplicaEngine, ReplicaSetClient
from repro.server import KGNetHTTPServer, RemoteClient, serve
from repro.storage import StorageEngine

__all__ = [
    "__version__",
    "API_VERSION",
    "APIClient",
    "APIRequest",
    "APIResponse",
    "APIRouter",
    "AtomicCounter",
    "DeleteReport",
    "InflightBatcher",
    "KGNet",
    "KGNetHTTPServer",
    "RemoteClient",
    "serve",
    "MetaSamplingConfig",
    "ModelMetadata",
    "ReplicaEngine",
    "ReplicaSetClient",
    "SelectReport",
    "StorageEngine",
    "TaskBudget",
    "TaskSpec",
    "TaskType",
    "TrainReport",
    "WorkerPool",
]
