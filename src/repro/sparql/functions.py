"""Expression evaluation: SPARQL built-in functions and operators.

The evaluator delegates every expression node to :func:`evaluate_expression`.
User-defined functions (the paper's ``sql:UDFS.getNodeClass`` and
``sql:UDFS.getKeyValue``) are resolved through a :class:`UDFRegistry` owned by
the endpoint, which is how KGNet interfaces trained models with the RDF
engine (paper §III-B and §IV-B.3).
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, List, Optional

from repro.exceptions import QueryError, UDFError
from repro.rdf.terms import (
    IRI,
    BNode,
    Literal,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from repro.sparql.ast import (
    Aggregate,
    BinaryOp,
    ConstantExpr,
    ExistsExpr,
    Expression,
    FunctionCall,
    InExpr,
    UnaryOp,
    VariableExpr,
)
from repro.sparql.results import Solution

__all__ = [
    "UDFRegistry",
    "EvaluationContext",
    "OpaqueValue",
    "evaluate_expression",
    "effective_boolean_value",
    "term_to_number",
    "TRUE",
    "FALSE",
]

TRUE = Literal("true", datatype=XSD_BOOLEAN)
FALSE = Literal("false", datatype=XSD_BOOLEAN)


class OpaqueValue(Term):
    """A non-RDF Python value flowing through a query as a binding.

    Virtuoso lets UDFs return SQL values (e.g. the dictionary of predicted
    venues built by the inner sub-select of paper Fig 12).  ``OpaqueValue``
    is the equivalent here: it wraps an arbitrary Python object so a later
    UDF (``sql:UDFS.getKeyValue``) can consume it.
    """

    __slots__ = ("value",)
    _sort_rank = 4

    def __init__(self, value: object) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("OpaqueValue is immutable")

    def n3(self) -> str:
        return f'"<opaque:{type(self.value).__name__}>"'

    def __repr__(self) -> str:
        return f"OpaqueValue({type(self.value).__name__})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OpaqueValue) and other.value is self.value

    def __hash__(self) -> int:
        return hash(("OpaqueValue", id(self.value)))

    def __reduce__(self):
        return (OpaqueValue, (self.value,))

    def __deepcopy__(self, memo):
        return self

    def __copy__(self):
        return self


class UDFRegistry:
    """Registry of user-defined functions callable from SPARQL expressions.

    Functions are registered under one or more names (their prefixed form,
    e.g. ``sql:UDFS.getNodeClass``, and optionally a bare local name).  Each
    call is counted so the SPARQL-ML query-plan experiments can report the
    number of UDF/HTTP calls each execution plan makes (paper Figs 11-12).
    """

    def __init__(self) -> None:
        self._functions: Dict[str, Callable[..., object]] = {}
        self.call_counts: Dict[str, int] = {}
        # Concurrent queries share one registry through the endpoint; the
        # count increment is read-modify-write and needs the lock.
        self._counts_lock = threading.Lock()

    def register(self, name: str, function: Callable[..., object],
                 aliases: Optional[List[str]] = None) -> None:
        for key in [name] + list(aliases or []):
            self._functions[self._normalise(key)] = function

    def unregister(self, name: str) -> None:
        self._functions.pop(self._normalise(name), None)

    @staticmethod
    def _normalise(name: str) -> str:
        return name.strip().lower()

    def lookup(self, name: str) -> Optional[Callable[..., object]]:
        return self._functions.get(self._normalise(name))

    def __contains__(self, name: str) -> bool:
        return self._normalise(name) in self._functions

    def call(self, name: str, *args: object) -> object:
        function = self.lookup(name)
        if function is None:
            raise UDFError(f"unknown user-defined function {name!r}")
        key = self._normalise(name)
        with self._counts_lock:
            self.call_counts[key] = self.call_counts.get(key, 0) + 1
        return function(*args)

    def total_calls(self, name: Optional[str] = None) -> int:
        if name is not None:
            return self.call_counts.get(self._normalise(name), 0)
        return sum(self.call_counts.values())

    def reset_counts(self) -> None:
        with self._counts_lock:
            self.call_counts.clear()


class EvaluationContext:
    """Everything an expression may need at evaluation time."""

    def __init__(self, udfs: Optional[UDFRegistry] = None,
                 exists_evaluator: Optional[Callable] = None) -> None:
        self.udfs = udfs or UDFRegistry()
        #: Callback used to evaluate EXISTS { ... } sub-patterns; injected by
        #: the query evaluator to avoid a circular import.
        self.exists_evaluator = exists_evaluator


# ---------------------------------------------------------------------------
# Value conversions
# ---------------------------------------------------------------------------

def term_to_number(term: Optional[Term]) -> float:
    if isinstance(term, Literal):
        try:
            return float(term.lexical)
        except ValueError as exc:
            raise QueryError(f"literal {term.lexical!r} is not numeric") from exc
    raise QueryError(f"cannot convert {term!r} to a number")


def _make_numeric_literal(value: float) -> Literal:
    if float(value).is_integer():
        return Literal(str(int(value)), datatype=XSD_INTEGER)
    return Literal(repr(float(value)), datatype=XSD_DOUBLE)


def effective_boolean_value(term: Optional[Term]) -> bool:
    """SPARQL effective boolean value (EBV) rules, simplified."""
    if term is None:
        return False
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.lexical in ("true", "1")
        if term.is_numeric():
            try:
                return float(term.lexical) != 0.0
            except ValueError:
                return False
        return bool(term.lexical)
    # IRIs / blank nodes are errors per spec; treating them as true is the
    # most useful behaviour for this engine.
    return True


def _boolean(value: bool) -> Literal:
    return TRUE if value else FALSE


def _compare(op: str, left: Term, right: Term) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal) and \
            left.is_numeric() and right.is_numeric():
        lv, rv = float(left.lexical), float(right.lexical)
    elif isinstance(left, Literal) and isinstance(right, Literal):
        lv, rv = left.lexical, right.lexical
    else:
        lv, rv = (left.n3() if left is not None else ""), (right.n3() if right is not None else "")
    if op == "=":
        if isinstance(left, Literal) and isinstance(right, Literal) and \
                left.is_numeric() and right.is_numeric():
            return float(left.lexical) == float(right.lexical)
        return left == right
    if op == "!=":
        return not _compare("=", left, right)
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise QueryError(f"unknown comparison operator {op!r}")


# ---------------------------------------------------------------------------
# Built-in function implementations
# ---------------------------------------------------------------------------

def _builtin_str(args: List[Optional[Term]]) -> Term:
    term = args[0]
    if isinstance(term, Literal):
        return Literal(term.lexical)
    if isinstance(term, IRI):
        return Literal(term.value)
    if term is None:
        raise QueryError("STR() of an unbound value")
    return Literal(term.n3())


def _builtin_regex(args: List[Optional[Term]]) -> Term:
    text = args[0]
    pattern = args[1]
    flags_term = args[2] if len(args) > 2 else None
    if not isinstance(text, Literal) or not isinstance(pattern, Literal):
        return FALSE
    flags = 0
    if isinstance(flags_term, Literal) and "i" in flags_term.lexical:
        flags |= re.IGNORECASE
    return _boolean(re.search(pattern.lexical, text.lexical, flags) is not None)


_BUILTINS: Dict[str, Callable[[List[Optional[Term]]], Term]] = {
    "STR": _builtin_str,
    "REGEX": _builtin_regex,
    "UCASE": lambda args: Literal(str(args[0]).upper()),
    "LCASE": lambda args: Literal(str(args[0]).lower()),
    "STRLEN": lambda args: Literal(len(str(args[0]))),
    "CONTAINS": lambda args: _boolean(str(args[1]) in str(args[0])),
    "STRSTARTS": lambda args: _boolean(str(args[0]).startswith(str(args[1]))),
    "STRENDS": lambda args: _boolean(str(args[0]).endswith(str(args[1]))),
    "CONCAT": lambda args: Literal("".join(str(a) for a in args)),
    "ABS": lambda args: _make_numeric_literal(abs(term_to_number(args[0]))),
    "CEIL": lambda args: _make_numeric_literal(float(__import__("math").ceil(term_to_number(args[0])))),
    "FLOOR": lambda args: _make_numeric_literal(float(__import__("math").floor(term_to_number(args[0])))),
    "ROUND": lambda args: _make_numeric_literal(float(round(term_to_number(args[0])))),
    "ISIRI": lambda args: _boolean(isinstance(args[0], IRI)),
    "ISURI": lambda args: _boolean(isinstance(args[0], IRI)),
    "ISLITERAL": lambda args: _boolean(isinstance(args[0], Literal)),
    "ISBLANK": lambda args: _boolean(isinstance(args[0], BNode)),
    "ISNUMERIC": lambda args: _boolean(isinstance(args[0], Literal) and args[0].is_numeric()),
    "DATATYPE": lambda args: args[0].datatype if isinstance(args[0], Literal) else IRI("urn:error"),
    "LANG": lambda args: Literal(args[0].language or "") if isinstance(args[0], Literal) else Literal(""),
    "IRI": lambda args: IRI(str(args[0])),
    "URI": lambda args: IRI(str(args[0])),
    "XSD_INTEGER_CAST": lambda args: Literal(int(float(str(args[0])))),
}


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

def evaluate_expression(expr: Expression, solution: Solution,
                        context: Optional[EvaluationContext] = None) -> Optional[Term]:
    """Evaluate ``expr`` against ``solution``; returns None for unbound errors."""
    context = context or EvaluationContext()

    if isinstance(expr, ConstantExpr):
        return expr.value

    if isinstance(expr, VariableExpr):
        return solution.get(expr.variable)

    if isinstance(expr, UnaryOp):
        value = evaluate_expression(expr.operand, solution, context)
        if expr.op == "!":
            return _boolean(not effective_boolean_value(value))
        number = term_to_number(value)
        return _make_numeric_literal(-number if expr.op == "-" else number)

    if isinstance(expr, BinaryOp):
        if expr.op == "&&":
            left = evaluate_expression(expr.left, solution, context)
            if not effective_boolean_value(left):
                return FALSE
            right = evaluate_expression(expr.right, solution, context)
            return _boolean(effective_boolean_value(right))
        if expr.op == "||":
            left = evaluate_expression(expr.left, solution, context)
            if effective_boolean_value(left):
                return TRUE
            right = evaluate_expression(expr.right, solution, context)
            return _boolean(effective_boolean_value(right))
        left = evaluate_expression(expr.left, solution, context)
        right = evaluate_expression(expr.right, solution, context)
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            if left is None or right is None:
                return FALSE
            return _boolean(_compare(expr.op, left, right))
        lv, rv = term_to_number(left), term_to_number(right)
        if expr.op == "+":
            return _make_numeric_literal(lv + rv)
        if expr.op == "-":
            return _make_numeric_literal(lv - rv)
        if expr.op == "*":
            return _make_numeric_literal(lv * rv)
        if expr.op == "/":
            if rv == 0:
                raise QueryError("division by zero in FILTER expression")
            return _make_numeric_literal(lv / rv)
        raise QueryError(f"unknown operator {expr.op!r}")

    if isinstance(expr, InExpr):
        value = evaluate_expression(expr.operand, solution, context)
        members = [evaluate_expression(choice, solution, context) for choice in expr.choices]
        found = any(value is not None and member is not None and
                    _compare("=", value, member) for member in members)
        return _boolean(found != expr.negated)

    if isinstance(expr, ExistsExpr):
        if context.exists_evaluator is None:
            raise QueryError("EXISTS is not available in this context")
        exists = context.exists_evaluator(expr.pattern, solution)
        return _boolean(exists != expr.negated)

    if isinstance(expr, Aggregate):
        raise QueryError("aggregate used outside GROUP BY evaluation")

    if isinstance(expr, FunctionCall):
        name = expr.name.upper()
        if name == "BOUND":
            inner = expr.args[0]
            if not isinstance(inner, VariableExpr):
                raise QueryError("BOUND expects a variable")
            return _boolean(inner.variable in solution)
        if name in ("IF",):
            condition = evaluate_expression(expr.args[0], solution, context)
            branch = expr.args[1] if effective_boolean_value(condition) else expr.args[2]
            return evaluate_expression(branch, solution, context)
        if name == "COALESCE":
            for arg in expr.args:
                value = evaluate_expression(arg, solution, context)
                if value is not None:
                    return value
            return None
        args = [evaluate_expression(arg, solution, context) for arg in expr.args]
        if name in _BUILTINS:
            return _BUILTINS[name](args)
        # Fall back to user-defined functions registered with the endpoint.
        if expr.name in context.udfs:
            result = context.udfs.call(expr.name, *args)
            return _coerce_udf_result(result)
        raise UDFError(f"unknown function {expr.name!r}")

    raise QueryError(f"cannot evaluate expression node {type(expr).__name__}")


def _coerce_udf_result(result: object) -> Optional[Term]:
    """Coerce a UDF return value into an RDF term (dicts become literals)."""
    if result is None:
        return None
    if isinstance(result, Term):
        return result
    if isinstance(result, bool):
        return _boolean(result)
    if isinstance(result, (int, float)):
        return _make_numeric_literal(float(result))
    if isinstance(result, str):
        if result.startswith(("http://", "https://", "urn:")):
            try:
                return IRI(result)
            except Exception:
                # Not a single well-formed IRI (e.g. a comma-joined top-k
                # list from getTopKLinks): keep it as a plain literal.
                return Literal(result)
        return Literal(result)
    if isinstance(result, (dict, list, tuple, set)):
        # Dictionaries (e.g. the venue dictionary of Fig 12) flow through the
        # query as opaque values so a later UDF (getKeyValue) can consume them.
        return OpaqueValue(result)
    return Literal(str(result))
