"""A Virtuoso-style SPARQL endpoint facade.

The paper runs an unmodified Virtuoso endpoint hosting the data KG and the
KGMeta graph, and KGNet's services talk to it with SPARQL queries plus
registered UDFs that issue HTTP calls to the GML inference manager.  The
:class:`SPARQLEndpoint` plays that role here:

* it owns a :class:`~repro.rdf.dataset.Dataset` (default graph = the data KG,
  named graphs for KGMeta and anything else),
* it parses and evaluates SPARQL queries and updates,
* it keeps an LRU *parse + plan* cache (:class:`PlanCache`) keyed by query
  text: repeated queries skip the parser entirely and reuse their compiled
  id-space join plans; any graph mutation bumps the dataset epoch, which
  transparently invalidates cached plans (never cached results — the
  evaluator always runs against the current snapshot),
* it caches the materialised union graph between mutations (via
  :meth:`Dataset.snapshot <repro.rdf.dataset.Dataset.snapshot>`), so mixed
  KGMeta + data queries stop paying a full union rebuild per request,
* it exposes a UDF registry; every UDF invocation is counted so experiments
  can report the number of "HTTP calls" an execution plan makes,
* it keeps simple per-query execution statistics (including whether the
  plan cache was hit and how many index lookups the join pipeline made).

Concurrency: the endpoint is safe to share across serving threads.  Every
query evaluates against a pinned snapshot (:class:`GraphSnapshot
<repro.rdf.graph.GraphSnapshot>` / :class:`DatasetSnapshot
<repro.rdf.dataset.DatasetSnapshot>`), so readers never observe a torn
in-flight update; updates take the dataset's write lock for their whole
batch, so multi-operation requests commit atomically.  The plan cache and
all statistics counters are lock-protected — counter increments are
read-modify-write and would silently lose updates otherwise (the contention
suite under ``tests/concurrency`` enforces this).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import QueryError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import IRI, Triple
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BindPattern,
    ClosurePattern,
    ConstructQuery,
    FilterPattern,
    GroupPattern,
    MinusPattern,
    NegatedPathPattern,
    OptionalPattern,
    PathPattern,
    Query,
    SelectQuery,
    SubSelectPattern,
    UnionPattern,
    Update,
    ValuesPattern,
)
from repro.sparql.evaluator import QueryEvaluator, QueryPlan
from repro.sparql.execution import ExecutionContext, StreamingResult
from repro.sparql.functions import UDFRegistry
from repro.sparql.optimizer import (
    element_variables,
    estimate_element_cardinality,
    explain_bgp_levels,
    reorder_group_elements,
)
from repro.sparql.parser import SPARQLParser
from repro.sparql.paths import rewrite_path_pattern
from repro.sparql.results import ResultSet, Solution
from repro.sparql.serializer import (
    serialize_expression,
    serialize_path,
    serialize_term,
)

__all__ = ["QueryStatistics", "PlanCache", "SPARQLEndpoint", "explain_group"]


def _explain_triple(pattern) -> str:
    return (f"{serialize_term(pattern.subject)} "
            f"{serialize_term(pattern.predicate)} "
            f"{serialize_term(pattern.object)}")


def _explain_path_endpoints(pattern) -> Dict[str, str]:
    return {
        "subject": serialize_term(pattern.subject),
        "object": serialize_term(pattern.object),
    }


def explain_group(group: GroupPattern, graph: Optional[Graph] = None,
                  optimize_joins: bool = True,
                  bound: Optional[set] = None,
                  analyze: Optional[Callable[[List], int]] = None
                  ) -> List[Dict[str, object]]:
    """Render a WHERE group as a list of explain-plan nodes.

    Each node is a plain dict (JSON-serialisable).  When ``graph`` is given
    and ``optimize_joins`` is set, the nodes appear in the *cost-based*
    order the evaluator runs them (contiguous join runs reordered, barriers
    in place), BGPs show their triple patterns in the chosen join order
    with per-level estimated cardinalities (``levels``), and every join
    element carries its ``estimated_cardinality`` under the variables bound
    so far.  Property-path patterns show both the original path expression
    and the lowered plan it rewrites to — including the streaming closure /
    negated-property-set iterator nodes, which is how callers see that
    ``p+`` became a BFS closure rather than a join.

    ``bound`` seeds the variables considered already bound (nested calls).
    ``analyze`` is an optional callback mapping a triple-pattern prefix to
    its *actual* row count; when provided, each BGP level also reports
    ``actual`` — the measured cardinality after joining the levels so far —
    next to its estimate (``EXPLAIN ANALYZE``).
    """
    nodes: List[Dict[str, object]] = []
    bound = set(bound or ())
    elements = list(group.elements)
    costed = graph is not None and optimize_joins
    if costed and len(elements) > 1:
        elements = reorder_group_elements(graph, elements)
    for element in elements:
        if isinstance(element, BGP):
            patterns = list(element.triples)
            optimized = costed and len(patterns) > 1
            node: Dict[str, object] = {"node": "bgp"}
            if costed:
                levels = explain_bgp_levels(graph, patterns, bound)
                patterns = [pattern for pattern, _ in levels]
                level_nodes: List[Dict[str, object]] = []
                for depth, (pattern, estimate) in enumerate(levels):
                    level: Dict[str, object] = {
                        "pattern": _explain_triple(pattern),
                        "estimated": round(estimate, 3),
                    }
                    if analyze is not None:
                        level["actual"] = analyze(patterns[:depth + 1])
                    level_nodes.append(level)
                node["levels"] = level_nodes
                node["estimated_cardinality"] = round(
                    estimate_element_cardinality(graph, element, bound), 3)
            node["patterns"] = [_explain_triple(p) for p in patterns]
            node["join_order_optimized"] = optimized
            nodes.append(node)
        elif isinstance(element, PathPattern):
            rewritten, fresh = rewrite_path_pattern(element)
            node = {
                "node": "path",
                "path": serialize_path(element.path),
            }
            node.update(_explain_path_endpoints(element))
            if costed:
                node["estimated_cardinality"] = round(
                    estimate_element_cardinality(graph, element, bound), 3)
            node["fresh_variables"] = sorted(v.name for v in fresh)
            node["rewritten"] = explain_group(rewritten, graph, optimize_joins,
                                              bound=bound, analyze=analyze)
            nodes.append(node)
        elif isinstance(element, ClosurePattern):
            node = {
                "node": "closure",
                "iterator": "bfs-closure",
                "modifier": element.modifier,
                "path": serialize_path(element.path),
            }
            node.update(_explain_path_endpoints(element))
            if costed:
                node["estimated_cardinality"] = round(
                    estimate_element_cardinality(graph, element, bound), 3)
            nodes.append(node)
        elif isinstance(element, NegatedPathPattern):
            node = {
                "node": "negated-property-set",
                "path": serialize_path(element.path),
            }
            node.update(_explain_path_endpoints(element))
            if costed:
                node["estimated_cardinality"] = round(
                    estimate_element_cardinality(graph, element, bound), 3)
            nodes.append(node)
        elif isinstance(element, FilterPattern):
            nodes.append({
                "node": "filter",
                "expression": serialize_expression(element.expression),
            })
        elif isinstance(element, OptionalPattern):
            nodes.append({
                "node": "optional",
                "children": explain_group(element.pattern, graph,
                                          optimize_joins, bound=bound,
                                          analyze=analyze),
            })
        elif isinstance(element, MinusPattern):
            nodes.append({
                "node": "minus",
                "children": explain_group(element.pattern, graph,
                                          optimize_joins, bound=bound,
                                          analyze=analyze),
            })
        elif isinstance(element, UnionPattern):
            nodes.append({
                "node": "union",
                "branches": [explain_group(branch, graph, optimize_joins,
                                           bound=bound, analyze=analyze)
                             for branch in element.alternatives],
            })
        elif isinstance(element, BindPattern):
            nodes.append({
                "node": "bind",
                "variable": element.variable.n3(),
                "expression": serialize_expression(element.expression),
            })
        elif isinstance(element, ValuesPattern):
            nodes.append({
                "node": "values",
                "variables": [v.n3() for v in element.variables],
                "rows": len(element.rows),
            })
        elif isinstance(element, SubSelectPattern):
            nodes.append({
                "node": "subselect",
                "children": explain_group(element.query.where, graph,
                                          optimize_joins),
            })
        else:  # pragma: no cover - defensive
            nodes.append({"node": type(element).__name__})
        bound.update(element_variables(element))
    return nodes


@dataclass
class QueryStatistics:
    """Execution statistics for one query/update request."""

    query: str
    kind: str
    elapsed_seconds: float
    num_results: int
    pattern_lookups: int
    udf_calls: int = 0
    plan_cache_hit: bool = False


class _CacheEntry:
    __slots__ = ("parsed", "plan", "epoch")

    def __init__(self, parsed, plan: Optional[QueryPlan], epoch) -> None:
        self.parsed = parsed
        self.plan = plan
        self.epoch = epoch


class PlanCache:
    """An LRU cache of parsed queries and their compiled join plans.

    Keys are ``(query text, namespace fingerprint)``; values hold the parsed
    AST plus a :class:`~repro.sparql.evaluator.QueryPlan`.  A lookup whose
    stored epoch no longer matches the dataset's counts as an *invalidation*:
    the parse is still reused (parsing does not depend on graph content) but
    the plan recompiles against the current graph, so a cache hit can never
    serve stale ids, join orders or results after a mutation.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        #: One lock covers the LRU order and every counter: lookups/stores
        #: from serving threads interleave, and both the ``move_to_end``
        #: bookkeeping and the ``hits += 1`` increments are read-modify-write.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def lookup(self, key: Tuple, epoch) -> Tuple[Optional[_CacheEntry], bool]:
        """Return ``(entry, fresh)``; entry is None on a miss.

        ``fresh`` is False when the entry predates the current epoch (its
        plan will recompile; only the parse is reused).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, False
            self._entries.move_to_end(key)
            if entry.epoch != epoch:
                entry.epoch = epoch
                self.invalidations += 1
                return entry, False
            self.hits += 1
            return entry, True

    def store(self, key: Tuple, parsed, plan: Optional[QueryPlan], epoch) -> _CacheEntry:
        entry = _CacheEntry(parsed, plan, epoch)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses + self.invalidations
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hit_rate": round(self.hits / total, 6) if total else 0.0,
            }


class _ResultCacheEntry:
    __slots__ = ("epoch", "media_type", "body")

    def __init__(self, epoch, media_type: str, body: bytes) -> None:
        self.epoch = epoch
        self.media_type = media_type
        self.body = body


class ResultCache:
    """An epoch-invalidated LRU of fully serialized query responses.

    Sits *above* the plan cache: where a plan-cache hit skips parsing and
    compilation, a result-cache hit skips evaluation **and** serialization —
    the stored value is the complete pre-encoded response body, ready to
    write to a socket in one call.  Keys are
    ``(query text, default-graph set, media type)``; each entry remembers
    the dataset epoch it was computed under, and a lookup at any other epoch
    counts as an *invalidation* and evicts the entry, so a mutation can
    never leak a stale body.  Entries above ``max_entry_bytes`` are not
    cached (a giant dump would evict the whole working set for one client);
    ``max_bytes`` bounds the total held memory.
    """

    def __init__(self, maxsize: int = 256,
                 max_entry_bytes: int = 1 << 20,
                 max_bytes: int = 32 << 20) -> None:
        self.maxsize = maxsize
        self.max_entry_bytes = max_entry_bytes
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, _ResultCacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def lookup(self, key: Tuple, epoch) -> Optional[_ResultCacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != epoch:
                # The dataset mutated since this body was serialized; drop
                # the entry so the fresh store replaces it.
                del self._entries[key]
                self.total_bytes -= len(entry.body)
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: Tuple, epoch, media_type: str, body: bytes) -> None:
        if len(body) > self.max_entry_bytes:
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.total_bytes -= len(previous.body)
            self._entries[key] = _ResultCacheEntry(epoch, media_type, body)
            self.total_bytes += len(body)
            while (len(self._entries) > self.maxsize
                   or self.total_bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self.total_bytes -= len(evicted.body)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses + self.invalidations
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "total_bytes": self.total_bytes,
                "hit_rate": round(self.hits / total, 6) if total else 0.0,
            }


class SPARQLEndpoint:
    """In-process SPARQL endpoint over an RDF dataset."""

    def __init__(self, dataset: Optional[Dataset] = None,
                 namespaces: Optional[NamespaceManager] = None,
                 optimize_joins: bool = True) -> None:
        # `dataset or ...` would discard an *empty* dataset (len() == 0 is
        # falsy) — fatal for the storage engine, which hands over a freshly
        # recovered, possibly empty dataset whose identity must be kept.
        self.dataset = dataset if dataset is not None else Dataset(namespaces=namespaces)
        self.namespaces = self.dataset.namespaces
        self.udfs = UDFRegistry()
        self.optimize_joins = optimize_joins
        self.history: List[QueryStatistics] = []
        self.plan_cache = PlanCache()
        self.result_cache = ResultCache()
        #: Total triple-pattern index lookups across all executed queries.
        #: Plain int for backwards compatibility; increments happen under
        #: ``_stats_lock`` (``+=`` is read-modify-write and loses updates
        #: under contention otherwise).
        self.total_pattern_lookups = 0
        self._stats_lock = threading.Lock()
        # Per-thread copy of the last record, so a serving thread can read
        # *its own* request's statistics without racing `history[-1]`
        # against neighbouring requests.
        self._thread_stats = threading.local()

    # ------------------------------------------------------------------
    # Data management
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The default graph (the data knowledge graph)."""
        return self.dataset.default_graph

    def load(self, triples, graph_iri: Optional[Union[str, IRI]] = None) -> int:
        """Bulk-load triples into the default or a named graph."""
        graph = self.dataset.graph(graph_iri) if graph_iri else self.graph
        return graph.add_all(triples)

    def named_graph(self, graph_iri: Union[str, IRI]) -> Graph:
        return self.dataset.graph(graph_iri)

    def replace_dataset(self, dataset: Dataset) -> None:
        """Swap in a different dataset (the storage engine's restore path).

        Every compiled plan and cached union belongs to the old dataset's
        graphs and epoch tokens, so the plan cache is cleared wholesale —
        the new dataset's epoch counters restart and could otherwise collide
        with cached tokens.  Parses are cheap to redo; stale ids are not.
        """
        self.dataset = dataset
        self.namespaces = dataset.namespaces
        self.plan_cache.clear()
        self.result_cache.clear()

    def register_udf(self, name: str, function: Callable[..., object],
                     aliases: Optional[List[str]] = None) -> None:
        """Register a user-defined function callable from SPARQL expressions."""
        self.udfs.register(name, function, aliases=aliases)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _evaluation_graph(self, query: Query) -> Graph:
        """Pick the *snapshot* a query runs against.

        ``FROM <g>`` selects a named graph; multiple FROM clauses (or none)
        use the union/default graph, matching how the platform stores KGMeta
        alongside the data KG.  Every path returns a pinned point-in-time
        view, so a concurrent writer can never tear an in-flight query.  The
        no-FROM union graph is materialised once per dataset epoch (cached
        on the :class:`~repro.rdf.dataset.DatasetSnapshot`), so the common
        mixed KGMeta + data query path does not pay a union rebuild per
        request — and its identity is stable between mutations, which keeps
        compiled plans reusable across readers.
        """
        from_graphs = getattr(query, "from_graphs", [])
        if from_graphs:
            snapshot = self.dataset.snapshot()
            if len(from_graphs) == 1 and snapshot.has_graph(from_graphs[0]):
                return snapshot.graph(from_graphs[0])
            union = Graph(namespaces=self.namespaces.copy())
            for graph_iri in from_graphs:
                if snapshot.has_graph(graph_iri):
                    union.add_all(snapshot.graph(graph_iri))
            return union
        if any(True for _ in self.dataset.named_graphs()):
            # Default behaviour: query the union of default + named graphs so
            # KGMeta triple patterns and data triple patterns can be mixed in
            # one query (paper Fig 2 relies on this).
            return self.dataset.snapshot().union()
        return self.graph.snapshot()

    def parse(self, text: str):
        return SPARQLParser(text, namespaces=self.namespaces).parse()

    def _cached_parse(self, text: str):
        """Parse through the LRU cache.

        Returns ``(parsed, plan, cache_hit)``.  ``plan`` is None for update
        requests (updates have no reusable join plan).
        """
        epoch = self.dataset.epoch()
        key = (text, self.namespaces.version)
        entry, fresh = self.plan_cache.lookup(key, epoch)
        if entry is not None:
            return entry.parsed, entry.plan, fresh
        parsed = self.parse(text)
        plan = None if isinstance(parsed, list) else QueryPlan()
        self.plan_cache.store(key, parsed, plan, epoch)
        return parsed, plan, False

    def execute(self, text: str,
                default_graph_iris: Optional[List[Union[str, IRI]]] = None,
                require: Optional[str] = None,
                context: Optional[ExecutionContext] = None,
                named_graph_iris: Optional[List[Union[str, IRI]]] = None):
        """Parse once and route a query *or* an update from the AST.

        Unlike :meth:`query` / :meth:`update`, which require the caller to
        know the request kind up front, ``execute`` lets the parser decide:
        SELECT / ASK / CONSTRUCT requests return their evaluation result,
        update requests return the number of affected triples.

        ``default_graph_iris`` / ``named_graph_iris`` are the SPARQL 1.1
        *Protocol* dataset override (``default-graph-uri=`` /
        ``named-graph-uri=``): when either is given, the query evaluates
        against the union of exactly the listed graphs (overriding any
        ``FROM`` / ``FROM NAMED`` clause, as the protocol prescribes; the
        evaluator merges GRAPH scoping into one view, so both parameters
        restrict the same union).  They never apply to updates.

        ``require`` pins the request kind before anything executes: pass
        ``"query"`` or ``"update"`` to reject the other kind with a
        :class:`~repro.exceptions.QueryError` — the HTTP protocol endpoint
        must not let an update smuggled into ``query=`` mutate the store.

        ``context`` attaches a per-query
        :class:`~repro.sparql.execution.ExecutionContext` so a deadline,
        cancellation event, or work budget can stop the evaluation with a
        typed :class:`~repro.exceptions.QueryInterrupted` subclass.
        """
        parsed, plan, cache_hit = self._cached_parse(text)
        if isinstance(parsed, list):
            if require == "query":
                raise QueryError(
                    "the request is a SPARQL update, not a query; "
                    "send it through the update operation")
            if default_graph_iris or named_graph_iris:
                raise QueryError(
                    "protocol dataset selection (default-graph-uri / "
                    "named-graph-uri) does not apply to updates; use "
                    "USING / WITH in the request")
            return self._run_updates(parsed, text, cache_hit=cache_hit,
                                     context=context)
        if require == "update":
            raise QueryError(
                "the request is a SPARQL query, not an update; "
                "send it through the query operation")
        return self._run_query(parsed, text, graph_iri=None, plan=plan,
                               cache_hit=cache_hit,
                               default_graph_iris=default_graph_iris,
                               named_graph_iris=named_graph_iris,
                               context=context)

    def is_update(self, text: str) -> bool:
        """Whether ``text`` parses as a SPARQL update (vs a query).

        Uses the parse cache, so classifying before :meth:`execute` /
        :meth:`execute_stream` costs one cache hit, not a reparse — this is
        how a scheduler-backed router decides to time-slice a request whose
        kind the client did not pin.  Syntax errors raise
        :class:`~repro.exceptions.QueryError` exactly as execution would.
        """
        parsed, _plan, _cache_hit = self._cached_parse(text)
        return isinstance(parsed, list)

    def execute_stream(self, text: str,
                       default_graph_iris: Optional[List[Union[str, IRI]]] = None,
                       context: Optional[ExecutionContext] = None,
                       on_stats: Optional[Callable[[QueryStatistics], None]] = None,
                       named_graph_iris: Optional[List[Union[str, IRI]]] = None):
        """Evaluate a protocol *query* request lazily.

        SELECT queries return a :class:`~repro.sparql.execution.StreamingResult`
        whose row iterator is unconsumed — the scheduler's suspension point
        for time-sliced execution.  Query statistics are recorded when the
        consumer finishes the iterator and calls ``finish(rows)``; since
        that may happen on a different thread than this call,
        ``on_stats`` delivers the record to the caller explicitly (the
        thread-local :meth:`thread_statistics` is also set on the finishing
        thread).

        ASK and CONSTRUCT cannot stream; they evaluate eagerly here — still
        under ``context``'s checkpoints — and return their plain result.
        Updates are rejected with :class:`~repro.exceptions.QueryError`.
        """
        parsed, plan, cache_hit = self._cached_parse(text)
        if isinstance(parsed, list):
            raise QueryError(
                "the request is a SPARQL update, not a query; "
                "updates cannot be streamed")
        if default_graph_iris or named_graph_iris:
            graph = self._protocol_graph(default_graph_iris, named_graph_iris)
        else:
            graph = self._evaluation_graph(parsed)
        evaluator = QueryEvaluator(graph, udfs=self.udfs,
                                   optimize_joins=self.optimize_joins,
                                   plan=plan, execution=context)
        udf_calls_before = self.udfs.total_calls()
        started = time.perf_counter()

        def record(kind: str, count: int) -> QueryStatistics:
            statistics = QueryStatistics(
                query=text, kind=kind,
                elapsed_seconds=time.perf_counter() - started,
                num_results=count,
                pattern_lookups=evaluator.pattern_lookups,
                udf_calls=self.udfs.total_calls() - udf_calls_before,
                plan_cache_hit=cache_hit,
            )
            with self._stats_lock:
                self.total_pattern_lookups += evaluator.pattern_lookups
                self.history.append(statistics)
            self._thread_stats.last = statistics
            if on_stats is not None:
                on_stats(statistics)
            return statistics

        if not isinstance(parsed, SelectQuery):
            result = evaluator.evaluate(parsed)
            if isinstance(result, Graph):
                record("CONSTRUCT", len(result))
            else:
                record("ASK", int(bool(result)))
            return result
        variables, solutions = evaluator.stream_select(parsed)
        return StreamingResult(variables, solutions,
                               lambda rows: record("SELECT", rows))

    def query(self, text: str, graph_iri: Optional[Union[str, IRI]] = None):
        """Parse and evaluate a SELECT / ASK / CONSTRUCT query.

        Returns a :class:`ResultSet` (SELECT), ``bool`` (ASK) or
        :class:`Graph` (CONSTRUCT).
        """
        parsed, plan, cache_hit = self._cached_parse(text)
        if isinstance(parsed, list):
            # The request is an update; surface the canonical parser error.
            SPARQLParser(text, namespaces=self.namespaces).parse_query()
            raise QueryError("update request passed to query()")
        return self._run_query(parsed, text, graph_iri=graph_iri, plan=plan,
                               cache_hit=cache_hit)

    def _protocol_graph(self, graph_iris: Optional[List[Union[str, IRI]]],
                        named_graph_iris: Optional[List[Union[str, IRI]]] = None):
        """Pin the dataset a protocol ``default-graph-uri`` /
        ``named-graph-uri`` request names.

        Delegates to :meth:`DatasetSnapshot.union_of
        <repro.rdf.dataset.DatasetSnapshot.union_of>`: a logical, pinned,
        per-epoch-cached view — never a per-request copy, and
        identity-stable so repeated protocol queries reuse their compiled
        plans.  Graph IRIs the dataset does not hold contribute nothing —
        per the protocol the service composes the dataset from the
        documents it can resolve, and an unknown one is empty here.

        The parser flattens ``GRAPH <g> { ... }`` scoping into the enclosing
        group (queries always evaluate against one merged view), so the
        default-graph and named-graph selections collapse into a single
        restricted union: what ``named-graph-uri`` *restricts* here is which
        graphs are visible at all — triples of any graph not listed in
        either parameter cannot match.
        """
        iris = [IRI(g) if isinstance(g, str) else g
                for g in (graph_iris or ())]
        iris.extend(IRI(g) if isinstance(g, str) else g
                    for g in (named_graph_iris or ()))
        return self.dataset.snapshot().union_of(tuple(dict.fromkeys(iris)))

    def _run_query(self, query: Query, text: str,
                   graph_iri: Optional[Union[str, IRI]] = None,
                   plan: Optional[QueryPlan] = None,
                   cache_hit: bool = False,
                   default_graph_iris: Optional[List[Union[str, IRI]]] = None,
                   context: Optional[ExecutionContext] = None,
                   named_graph_iris: Optional[List[Union[str, IRI]]] = None):
        """Evaluate an already-parsed query, recording statistics."""
        if default_graph_iris or named_graph_iris:
            graph = self._protocol_graph(default_graph_iris, named_graph_iris)
        elif graph_iri is not None:
            # Pin like every other path: a concurrent writer must not mutate
            # the buckets this query's join pipeline is iterating.
            graph = self.dataset.graph(graph_iri).snapshot()
        else:
            graph = self._evaluation_graph(query)
        evaluator = QueryEvaluator(graph, udfs=self.udfs,
                                   optimize_joins=self.optimize_joins,
                                   plan=plan, execution=context)
        udf_calls_before = self.udfs.total_calls()
        started = time.perf_counter()
        result = evaluator.evaluate(query)
        elapsed = time.perf_counter() - started
        if isinstance(result, ResultSet):
            count = len(result)
            kind = "SELECT"
        elif isinstance(result, Graph):
            count = len(result)
            kind = "CONSTRUCT"
        else:
            count = int(bool(result))
            kind = "ASK"
        statistics = QueryStatistics(
            query=text, kind=kind, elapsed_seconds=elapsed, num_results=count,
            pattern_lookups=evaluator.pattern_lookups,
            udf_calls=self.udfs.total_calls() - udf_calls_before,
            plan_cache_hit=cache_hit,
        )
        with self._stats_lock:
            self.total_pattern_lookups += evaluator.pattern_lookups
            self.history.append(statistics)
        self._thread_stats.last = statistics
        return result

    def select(self, text: str, **kwargs) -> ResultSet:
        result = self.query(text, **kwargs)
        if not isinstance(result, ResultSet):
            raise QueryError("query did not produce a SELECT result set")
        return result

    def ask(self, text: str, **kwargs) -> bool:
        result = self.query(text, **kwargs)
        if isinstance(result, bool):
            return result
        raise QueryError("query did not produce an ASK result")

    def update(self, text: str) -> int:
        """Parse and apply a SPARQL UPDATE request; returns affected triples."""
        parsed, _, cache_hit = self._cached_parse(text)
        if not isinstance(parsed, list):
            # The request is a query; surface the canonical parser error.
            SPARQLParser(text, namespaces=self.namespaces).parse_update()
            raise QueryError("query request passed to update()")
        return self._run_updates(parsed, text, cache_hit=cache_hit)

    def _run_updates(self, updates: List[Update], text: str,
                     cache_hit: bool = False,
                     context: Optional[ExecutionContext] = None) -> int:
        """Apply already-parsed updates, recording statistics.

        The whole batch runs under the dataset's write lock: a request with
        several operations commits atomically — no reader snapshot can
        observe a half-applied request, and two concurrent update requests
        serialise instead of interleaving their operations.  An execution
        context can interrupt an operation only *before* it starts mutating
        (the evaluator checkpoints after WHERE materialisation and never
        mid-mutation), so an interrupted request aborts between whole
        operations, leaving every applied one complete.
        """
        started = time.perf_counter()
        affected = 0
        with self.dataset.write_lock:
            for update in updates:
                affected += self.apply_update(update, context=context)
        elapsed = time.perf_counter() - started
        statistics = QueryStatistics(
            query=text, kind="UPDATE", elapsed_seconds=elapsed,
            num_results=affected, pattern_lookups=0,
            plan_cache_hit=cache_hit,
        )
        with self._stats_lock:
            self.history.append(statistics)
        self._thread_stats.last = statistics
        return affected

    def apply_update(self, update: Update,
                     context: Optional[ExecutionContext] = None) -> int:
        # WHERE clauses evaluate against the pinned union snapshot;
        # mutations go to the live dataset graphs.
        evaluator = QueryEvaluator(self.dataset.snapshot().union(),
                                   udfs=self.udfs,
                                   optimize_joins=self.optimize_joins,
                                   execution=context)
        return evaluator.apply_update(update, dataset=self.dataset)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, text: str, analyze: bool = False) -> Dict[str, object]:
        """Describe how a query would execute, without executing it.

        Returns a JSON-serialisable dict with the query ``kind``, a
        ``statistics`` block, and a ``plan`` tree of the WHERE group: BGP
        nodes list their triple patterns in the optimizer's chosen join
        order together with per-level estimated cardinalities (``levels``),
        every join element carries its ``estimated_cardinality``, and
        property-path patterns additionally expose the lowered plan
        (``rewritten``) the evaluator streams — fresh-variable join chains,
        union branches for alternatives, and ``closure`` /
        ``negated-property-set`` iterator nodes for ``*``/``+``/``?`` and
        ``!(...)``.

        ``statistics`` reports how the plan interacts with the caches: the
        parse/plan-cache outcome for this text (``plan_cache_hit``) plus the
        dataset epoch and the evaluation graph's statistics epoch — the keys
        under which the compiled join orders are cached, so two ``explain``
        calls with equal epochs are guaranteed to describe the same cached
        plan.

        With ``analyze=True`` each BGP level also executes its pattern
        prefix (in the chosen order, reordering disabled) and reports the
        *actual* cardinality next to the estimate — the plan-quality
        contract the optimizer tests pin.  Plain ``explain`` touches no
        data beyond the cardinality counters the optimizer reads.
        """
        parsed, _plan, cache_hit = self._cached_parse(text)
        if isinstance(parsed, list):
            return {
                "kind": "UPDATE",
                "operations": [type(op).__name__ for op in parsed],
            }
        if isinstance(parsed, SelectQuery):
            kind = "SELECT"
        elif isinstance(parsed, AskQuery):
            kind = "ASK"
        elif isinstance(parsed, ConstructQuery):
            kind = "CONSTRUCT"
        else:  # pragma: no cover - defensive
            kind = type(parsed).__name__
        graph = self._evaluation_graph(parsed)
        counter = None
        if analyze:
            def counter(patterns: List) -> int:
                # The prefix arrives already in the optimizer's chosen
                # order; evaluate it verbatim so the actuals line up with
                # the per-level estimates.
                evaluator = QueryEvaluator(graph, udfs=self.udfs,
                                           optimize_joins=False)
                prefix = GroupPattern([BGP(triples=list(patterns))])
                return sum(1 for _ in evaluator._evaluate_group(
                    prefix, iter((Solution(),))))
        return {
            "kind": kind,
            "optimize_joins": self.optimize_joins,
            "statistics": {
                "plan_cache_hit": cache_hit,
                "dataset_epoch": self.dataset.epoch(),
                "stats_epoch": getattr(graph, "stats_epoch", None),
                "num_triples": len(graph),
            },
            "plan": explain_group(parsed.where, graph, self.optimize_joins,
                                  analyze=counter),
        }

    def last_statistics(self) -> Optional[QueryStatistics]:
        return self.history[-1] if self.history else None

    def thread_statistics(self) -> Optional[QueryStatistics]:
        """Statistics of the last request *this thread* executed.

        Under concurrent serving ``last_statistics()`` may belong to a
        neighbouring thread's request; metrics that attribute an outcome to
        a specific request (the router's per-route cache hit/miss split)
        must use this accessor.
        """
        return getattr(self._thread_stats, "last", None)

    def total_udf_calls(self, name: Optional[str] = None) -> int:
        return self.udfs.total_calls(name)

    def cache_info(self) -> Dict[str, object]:
        """Plan-cache and hot-path counters for monitoring/benchmarks."""
        info = dict(self.plan_cache.stats())
        info["pattern_lookups"] = self.total_pattern_lookups
        return info

    def reset_counters(self) -> None:
        self.udfs.reset_counts()
        self.plan_cache.reset_counters()
        self.result_cache.reset_counters()
        with self._stats_lock:
            self.history.clear()
            self.total_pattern_lookups = 0

    def __repr__(self) -> str:
        return (f"<SPARQLEndpoint default={len(self.graph)} triples, "
                f"{sum(1 for _ in self.dataset.named_graphs())} named graphs>")
