"""A Virtuoso-style SPARQL endpoint facade.

The paper runs an unmodified Virtuoso endpoint hosting the data KG and the
KGMeta graph, and KGNet's services talk to it with SPARQL queries plus
registered UDFs that issue HTTP calls to the GML inference manager.  The
:class:`SPARQLEndpoint` plays that role here:

* it owns a :class:`~repro.rdf.dataset.Dataset` (default graph = the data KG,
  named graphs for KGMeta and anything else),
* it parses and evaluates SPARQL queries and updates,
* it exposes a UDF registry; every UDF invocation is counted so experiments
  can report the number of "HTTP calls" an execution plan makes,
* it keeps simple per-query execution statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import QueryError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import IRI, Triple
from repro.sparql.ast import (
    AskQuery,
    ConstructQuery,
    Query,
    SelectQuery,
    Update,
)
from repro.sparql.evaluator import QueryEvaluator
from repro.sparql.functions import UDFRegistry
from repro.sparql.parser import SPARQLParser
from repro.sparql.results import ResultSet

__all__ = ["QueryStatistics", "SPARQLEndpoint"]


@dataclass
class QueryStatistics:
    """Execution statistics for one query/update request."""

    query: str
    kind: str
    elapsed_seconds: float
    num_results: int
    pattern_lookups: int
    udf_calls: int = 0


class SPARQLEndpoint:
    """In-process SPARQL endpoint over an RDF dataset."""

    def __init__(self, dataset: Optional[Dataset] = None,
                 namespaces: Optional[NamespaceManager] = None,
                 optimize_joins: bool = True) -> None:
        self.dataset = dataset or Dataset(namespaces=namespaces)
        self.namespaces = self.dataset.namespaces
        self.udfs = UDFRegistry()
        self.optimize_joins = optimize_joins
        self.history: List[QueryStatistics] = []

    # ------------------------------------------------------------------
    # Data management
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The default graph (the data knowledge graph)."""
        return self.dataset.default_graph

    def load(self, triples, graph_iri: Optional[Union[str, IRI]] = None) -> int:
        """Bulk-load triples into the default or a named graph."""
        graph = self.dataset.graph(graph_iri) if graph_iri else self.graph
        return graph.add_all(triples)

    def named_graph(self, graph_iri: Union[str, IRI]) -> Graph:
        return self.dataset.graph(graph_iri)

    def register_udf(self, name: str, function: Callable[..., object],
                     aliases: Optional[List[str]] = None) -> None:
        """Register a user-defined function callable from SPARQL expressions."""
        self.udfs.register(name, function, aliases=aliases)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _evaluation_graph(self, query: Query) -> Graph:
        """Pick the graph a query runs against.

        ``FROM <g>`` selects a named graph; multiple FROM clauses (or none)
        use the union/default graph, matching how the platform stores KGMeta
        alongside the data KG.
        """
        from_graphs = getattr(query, "from_graphs", [])
        if len(from_graphs) == 1 and self.dataset.has_graph(from_graphs[0]):
            return self.dataset.graph(from_graphs[0])
        if from_graphs:
            union = Graph(namespaces=self.namespaces.copy())
            for graph_iri in from_graphs:
                if self.dataset.has_graph(graph_iri):
                    union.add_all(self.dataset.graph(graph_iri))
            return union
        if self.dataset.named_graphs():
            # Default behaviour: query the union of default + named graphs so
            # KGMeta triple patterns and data triple patterns can be mixed in
            # one query (paper Fig 2 relies on this).
            has_named = any(True for _ in self.dataset.named_graphs())
            if has_named:
                return self.dataset.union_graph()
        return self.graph

    def parse(self, text: str):
        return SPARQLParser(text, namespaces=self.namespaces).parse()

    def execute(self, text: str):
        """Parse once and route a query *or* an update from the AST.

        Unlike :meth:`query` / :meth:`update`, which require the caller to
        know the request kind up front, ``execute`` lets the parser decide:
        SELECT / ASK / CONSTRUCT requests return their evaluation result,
        update requests return the number of affected triples.
        """
        parsed = self.parse(text)
        if isinstance(parsed, list):
            return self._run_updates(parsed, text)
        return self._run_query(parsed, text, graph_iri=None)

    def query(self, text: str, graph_iri: Optional[Union[str, IRI]] = None):
        """Parse and evaluate a SELECT / ASK / CONSTRUCT query.

        Returns a :class:`ResultSet` (SELECT), ``bool`` (ASK) or
        :class:`Graph` (CONSTRUCT).
        """
        parser = SPARQLParser(text, namespaces=self.namespaces)
        return self._run_query(parser.parse_query(), text, graph_iri=graph_iri)

    def _run_query(self, query: Query, text: str,
                   graph_iri: Optional[Union[str, IRI]] = None):
        """Evaluate an already-parsed query, recording statistics."""
        if graph_iri is not None:
            graph = self.dataset.graph(graph_iri)
        else:
            graph = self._evaluation_graph(query)
        evaluator = QueryEvaluator(graph, udfs=self.udfs,
                                   optimize_joins=self.optimize_joins)
        udf_calls_before = self.udfs.total_calls()
        started = time.perf_counter()
        result = evaluator.evaluate(query)
        elapsed = time.perf_counter() - started
        if isinstance(result, ResultSet):
            count = len(result)
            kind = "SELECT"
        elif isinstance(result, Graph):
            count = len(result)
            kind = "CONSTRUCT"
        else:
            count = int(bool(result))
            kind = "ASK"
        self.history.append(QueryStatistics(
            query=text, kind=kind, elapsed_seconds=elapsed, num_results=count,
            pattern_lookups=evaluator.pattern_lookups,
            udf_calls=self.udfs.total_calls() - udf_calls_before,
        ))
        return result

    def select(self, text: str, **kwargs) -> ResultSet:
        result = self.query(text, **kwargs)
        if not isinstance(result, ResultSet):
            raise QueryError("query did not produce a SELECT result set")
        return result

    def ask(self, text: str, **kwargs) -> bool:
        result = self.query(text, **kwargs)
        if isinstance(result, bool):
            return result
        raise QueryError("query did not produce an ASK result")

    def update(self, text: str) -> int:
        """Parse and apply a SPARQL UPDATE request; returns affected triples."""
        parser = SPARQLParser(text, namespaces=self.namespaces)
        return self._run_updates(parser.parse_update(), text)

    def _run_updates(self, updates: List[Update], text: str) -> int:
        """Apply already-parsed updates, recording statistics."""
        started = time.perf_counter()
        affected = 0
        for update in updates:
            affected += self.apply_update(update)
        elapsed = time.perf_counter() - started
        self.history.append(QueryStatistics(
            query=text, kind="UPDATE", elapsed_seconds=elapsed,
            num_results=affected, pattern_lookups=0,
        ))
        return affected

    def apply_update(self, update: Update) -> int:
        evaluator = QueryEvaluator(self.dataset.union_graph(), udfs=self.udfs,
                                   optimize_joins=self.optimize_joins)
        return evaluator.apply_update(update, dataset=self.dataset)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def last_statistics(self) -> Optional[QueryStatistics]:
        return self.history[-1] if self.history else None

    def total_udf_calls(self, name: Optional[str] = None) -> int:
        return self.udfs.total_calls(name)

    def reset_counters(self) -> None:
        self.udfs.reset_counts()
        self.history.clear()

    def __repr__(self) -> str:
        return (f"<SPARQLEndpoint default={len(self.graph)} triples, "
                f"{sum(1 for _ in self.dataset.named_graphs())} named graphs>")
