"""Tokenizer for the SPARQL subset used by the KGNet reproduction.

The tokenizer produces a flat list of :class:`Token` objects consumed by the
recursive-descent parser in :mod:`repro.sparql.parser`.  It understands the
lexical forms needed for both plain SPARQL and the SPARQL-ML surface syntax
(prefixed names with dots such as ``sql:UDFS.getNodeClass``, ``$``-variables,
JSON-ish braces inside ``TrainGML`` calls are handled at a higher level).
"""

from __future__ import annotations

import re
from typing import Iterator, List

from repro.exceptions import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Keywords recognised case-insensitively.  Stored upper-case.
KEYWORDS = {
    "SELECT", "DISTINCT", "REDUCED", "WHERE", "FROM", "NAMED", "PREFIX", "BASE",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "GROUP", "HAVING", "AS",
    "OPTIONAL", "FILTER", "UNION", "MINUS", "BIND", "VALUES", "UNDEF",
    "ASK", "CONSTRUCT", "DESCRIBE",
    "INSERT", "DELETE", "DATA", "INTO", "WITH", "USING", "GRAPH", "CLEAR",
    "DROP", "CREATE", "LOAD", "SILENT", "ALL", "DEFAULT",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT", "SEPARATOR",
    "NOT", "IN", "EXISTS", "A",
    "TRUE", "FALSE",
}


class Token:
    """A single lexical token."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>\s]*>)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<bnode>_:[A-Za-z0-9_.-]+)
  | (?P<langtag>@[a-zA-Z][a-zA-Z0-9-]*)
  | (?P<double_caret>\^\^)
  | (?P<number>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
    # Local names may contain '/' (KGNet-style IRIs like dblp:paper/1), but a
    # '/' that starts another prefixed name is a property-path sequence
    # operator (ex:p/ex:q), so it must not be swallowed into the local name.
  | (?P<qname>[A-Za-z_][A-Za-z0-9_-]*:[A-Za-z0-9_](?:[A-Za-z0-9_\-%]
                                                   |/(?=[A-Za-z0-9_%\-/])(?!(?:[A-Za-z_][A-Za-z0-9_-]*)?:)
                                                   |\.(?=[A-Za-z0-9_\-/%]))*
              |[A-Za-z_][A-Za-z0-9_-]*:
              |:[A-Za-z0-9_](?:[A-Za-z0-9_\-%]
                             |/(?=[A-Za-z0-9_%\-/])(?!(?:[A-Za-z_][A-Za-z0-9_-]*)?:)
                             |\.(?=[A-Za-z0-9_\-/%]))*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|&&|\|\||[=<>!+\-*/^|?])
  | (?P<punct>[{}()\[\].,;])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize SPARQL ``text``; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line=line,
                             column=column)
        kind = match.lastgroup or ""
        value = match.group(0)
        column = pos - line_start + 1
        newlines = value.count("\n")
        if kind not in ("ws", "comment"):
            if kind == "name":
                upper = value.upper()
                if upper in KEYWORDS:
                    tokens.append(Token("KEYWORD", upper, line, column))
                else:
                    tokens.append(Token("NAME", value, line, column))
            else:
                tokens.append(Token(kind.upper(), value, line, column))
        if newlines:
            line += newlines
            line_start = match.end() - (len(value) - value.rfind("\n") - 1)
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens


def iter_tokens(text: str) -> Iterator[Token]:
    """Convenience generator form of :func:`tokenize`."""
    yield from tokenize(text)
