"""Query solutions and result sets.

A *solution* is an immutable-ish mapping from :class:`Variable` to RDF terms.
A :class:`ResultSet` is the ordered collection of solutions a SELECT query
returns, with helpers to convert to plain-Python rows, to tabular text and to
the (variable -> value) dictionaries the KGNet inference manager consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.rdf.terms import Term, Variable, python_from_term

__all__ = ["Solution", "ResultSet"]


class Solution(dict):
    """A single variable binding row (Variable -> Term)."""

    def merged(self, other: "Solution") -> Optional["Solution"]:
        """Join-compatible merge: returns None when shared variables clash."""
        for key, value in other.items():
            if key in self and self[key] != value:
                return None
        result = Solution(self)
        result.update(other)
        return result

    def project(self, variables: Sequence[Variable]) -> "Solution":
        return Solution({v: self[v] for v in variables if v in self})

    def get_value(self, name: str) -> Optional[Term]:
        """Look up a binding by bare variable name (without ``?``)."""
        return self.get(Variable(name))

    def to_python(self) -> Dict[str, object]:
        return {var.name: python_from_term(term) for var, term in self.items()}

    def __hash__(self) -> int:  # needed for DISTINCT
        return hash(frozenset(self.items()))


class ResultSet:
    """The result of a SELECT query."""

    def __init__(self, variables: Sequence[Variable],
                 solutions: Iterable[Solution]) -> None:
        self.variables: List[Variable] = list(variables)
        self.solutions: List[Solution] = list(solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.solutions)

    def __bool__(self) -> bool:
        return bool(self.solutions)

    def __getitem__(self, index: int) -> Solution:
        return self.solutions[index]

    def rows(self) -> List[List[Optional[Term]]]:
        """Return solutions as rows aligned with :attr:`variables`."""
        return [[sol.get(var) for var in self.variables] for sol in self.solutions]

    def to_python(self) -> List[Dict[str, object]]:
        """Plain-Python dictionaries (IRIs as strings, literals as values)."""
        return [sol.to_python() for sol in self.solutions]

    def column(self, name: str) -> List[Optional[Term]]:
        var = Variable(name)
        return [sol.get(var) for sol in self.solutions]

    def distinct_values(self, name: str) -> List[Term]:
        seen: List[Term] = []
        seen_set = set()
        for term in self.column(name):
            if term is not None and term not in seen_set:
                seen_set.add(term)
                seen.append(term)
        return seen

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Render the result set as an aligned text table for demos/examples."""
        headers = [f"?{var.name}" for var in self.variables]
        body = []
        for sol in self.solutions[: max_rows if max_rows is not None else len(self.solutions)]:
            body.append([
                (sol.get(var).n3() if sol.get(var) is not None else "") for var in self.variables
            ])
        widths = [len(h) for h in headers]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if max_rows is not None and len(self.solutions) > max_rows:
            lines.append(f"... ({len(self.solutions) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ResultSet {len(self.solutions)} rows x {len(self.variables)} vars>"
