"""Parsing SPARQL 1.1 result documents back into bindings.

The inverse of :mod:`repro.sparql.results.serialize`, used by the network
client: whatever format content negotiation landed on — JSON, XML, CSV or
TSV — :func:`parse_select_bindings` recovers the same shape the JSON format
carries natively, a list of ``{var: {"type": ..., "value": ...}}`` binding
objects.  That one canonical shape is what
:class:`~repro.server.client.RemoteClient` and the replica-set router hand
back regardless of the wire format, so callers never branch on media type.

Fidelity varies by format, exactly mirroring what each serialization can
express:

* **JSON / XML** round-trip losslessly (types, datatypes, language tags),
* **TSV** carries full SPARQL term syntax and round-trips everything except
  the distinction between an unbound variable and one bound to ``""`` —
  both serialize as an empty field (the W3C note's own ambiguity),
* **CSV** is lossy by design: the note writes raw lexical forms, so this
  parser applies the standard heuristic inverse (``_:`` prefix → bnode,
  ``scheme://`` shape → uri, everything else → plain literal) and all
  datatype/language information is gone.  Tests and callers that need exact
  terms should negotiate JSON, XML or TSV.
"""

from __future__ import annotations

import json
import re
import xml.etree.ElementTree as ET
from typing import Dict, List

from repro.exceptions import APIError
from repro.rdf.io import _unescape
from repro.sparql.results.serialize import (
    MEDIA_CSV,
    MEDIA_JSON,
    MEDIA_TSV,
    MEDIA_XML,
)

__all__ = ["parse_select_bindings", "parse_ask"]

Binding = Dict[str, Dict[str, str]]

_XMLNS = "http://www.w3.org/2005/sparql-results#"

#: ``scheme ":" "//"`` — the shape the CSV heuristic promotes to a uri.
_URI_SHAPE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*://")

#: One TSV term: IRI, quoted literal (+lang/datatype), bnode, or bare token.
_TSV_LITERAL = re.compile(
    r'^"((?:[^"\\]|\\.)*)"'            # quoted body with escapes
    r"(?:@([A-Za-z0-9-]+)|\^\^<([^>]*)>)?$")

_XSD = "http://www.w3.org/2001/XMLSchema#"


def _media_key(media_type: str) -> str:
    return media_type.split(";", 1)[0].strip().lower()


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def _parse_json_select(text: str) -> List[Binding]:
    document = json.loads(text)
    bindings = document.get("results", {}).get("bindings", [])
    if not isinstance(bindings, list):
        raise APIError("malformed SPARQL JSON results: bindings is not a list")
    return bindings


# ---------------------------------------------------------------------------
# XML
# ---------------------------------------------------------------------------

def _parse_xml_select(text: str) -> List[Binding]:
    root = ET.fromstring(text)
    rows: List[Binding] = []
    for result in root.iter(f"{{{_XMLNS}}}result"):
        row: Binding = {}
        for binding in result.findall(f"{{{_XMLNS}}}binding"):
            name = binding.get("name")
            if name is None:
                continue
            uri = binding.find(f"{{{_XMLNS}}}uri")
            bnode = binding.find(f"{{{_XMLNS}}}bnode")
            literal = binding.find(f"{{{_XMLNS}}}literal")
            if uri is not None:
                row[name] = {"type": "uri", "value": uri.text or ""}
            elif bnode is not None:
                row[name] = {"type": "bnode", "value": bnode.text or ""}
            elif literal is not None:
                obj = {"type": "literal", "value": literal.text or ""}
                lang = literal.get("{http://www.w3.org/XML/1998/namespace}lang")
                datatype = literal.get("datatype")
                if lang:
                    obj["xml:lang"] = lang
                elif datatype:
                    obj["datatype"] = datatype
                row[name] = obj
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# CSV / TSV
# ---------------------------------------------------------------------------

def _split_csv_line(line: str) -> List[str]:
    """RFC 4180 field split (the subset the results note uses)."""
    fields: List[str] = []
    buffer: List[str] = []
    quoted = False
    index = 0
    while index < len(line):
        char = line[index]
        if quoted:
            if char == '"':
                if index + 1 < len(line) and line[index + 1] == '"':
                    buffer.append('"')
                    index += 1
                else:
                    quoted = False
            else:
                buffer.append(char)
        elif char == '"':
            quoted = True
        elif char == ",":
            fields.append("".join(buffer))
            buffer = []
        else:
            buffer.append(char)
        index += 1
    fields.append("".join(buffer))
    return fields


def _csv_binding(value: str) -> Dict[str, str]:
    if value.startswith("_:"):
        return {"type": "bnode", "value": value[2:]}
    if _URI_SHAPE.match(value):
        return {"type": "uri", "value": value}
    return {"type": "literal", "value": value}


def _parse_csv_select(text: str) -> List[Binding]:
    lines = text.split("\r\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        return []
    variables = _split_csv_line(lines[0])
    rows: List[Binding] = []
    for line in lines[1:]:
        values = _split_csv_line(line)
        row: Binding = {}
        for name, value in zip(variables, values):
            if value == "":
                continue  # unbound and "" are indistinguishable in CSV
            row[name] = _csv_binding(value)
        rows.append(row)
    return rows


def _tsv_binding(value: str) -> Dict[str, str]:
    if value.startswith("<") and value.endswith(">"):
        return {"type": "uri", "value": value[1:-1]}
    if value.startswith("_:"):
        return {"type": "bnode", "value": value[2:]}
    match = _TSV_LITERAL.match(value)
    if match is not None:
        body, lang, datatype = match.groups()
        obj = {"type": "literal", "value": _unescape(body)}
        if lang:
            obj["xml:lang"] = lang
        elif datatype and datatype != _XSD + "string":
            obj["datatype"] = datatype
        return obj
    raise APIError(f"unparseable TSV results term: {value!r}")


def _parse_tsv_select(text: str) -> List[Binding]:
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        return []
    variables = [name[1:] if name.startswith("?") else name
                 for name in lines[0].split("\t")]
    rows: List[Binding] = []
    for line in lines[1:]:
        row: Binding = {}
        for name, value in zip(variables, line.split("\t")):
            if value == "":
                continue
            row[name] = _tsv_binding(value)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Partial-document salvage (truncated streams)
# ---------------------------------------------------------------------------

def _salvage_json_select(text: str) -> List[Binding]:
    """Recover complete binding objects from a truncated JSON document.

    The serializer emits ``"bindings":[`` followed by one compact object per
    row; a cut stream ends mid-object or mid-array.  Decode row objects one
    at a time with ``raw_decode`` and stop at the first undecodable tail.
    """
    marker = text.find('"bindings"')
    if marker < 0:
        return []
    start = text.find("[", marker)
    if start < 0:
        return []
    decoder = json.JSONDecoder()
    rows: List[Binding] = []
    index = start + 1
    length = len(text)
    while index < length:
        while index < length and text[index] in ", \t\r\n":
            index += 1
        if index >= length or text[index] != "{":
            break
        try:
            row, index = decoder.raw_decode(text, index)
        except ValueError:
            break
        if isinstance(row, dict):
            rows.append(row)
    return rows


def _salvage_xml_select(text: str) -> List[Binding]:
    """Recover complete ``<result>`` elements from truncated XML."""
    end = text.rfind("</result>")
    if end < 0:
        return []
    repaired = text[:end + len("</result>")] + "</results></sparql>"
    try:
        return _parse_xml_select(repaired)
    except ET.ParseError:
        return []


def _salvage_lines(text: str, newline: str) -> str:
    """Drop the trailing incomplete line of a cut CSV/TSV stream."""
    end = text.rfind(newline)
    if end < 0:
        return ""
    return text[:end + len(newline)]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

_SELECT_PARSERS = {
    _media_key(MEDIA_JSON): _parse_json_select,
    "application/json": _parse_json_select,
    _media_key(MEDIA_XML): _parse_xml_select,
    _media_key(MEDIA_CSV): _parse_csv_select,
    _media_key(MEDIA_TSV): _parse_tsv_select,
}

_SELECT_SALVAGERS = {
    _media_key(MEDIA_JSON): _salvage_json_select,
    "application/json": _salvage_json_select,
    _media_key(MEDIA_XML): _salvage_xml_select,
    _media_key(MEDIA_CSV): lambda text: _parse_csv_select(
        _salvage_lines(text, "\r\n")),
    _media_key(MEDIA_TSV): lambda text: _parse_tsv_select(
        _salvage_lines(text, "\n")),
}


def parse_select_bindings(text: str, media_type: str,
                          partial: bool = False) -> List[Binding]:
    """Parse a SELECT results document into JSON-shaped binding objects.

    ``partial=True`` parses a *truncated* document — the salvageable prefix
    of a result stream the server cut mid-transfer (see
    :class:`~repro.exceptions.ResultStreamCut`).  Every complete row in the
    prefix is returned; the torn tail is dropped instead of raising.
    """
    key = _media_key(media_type)
    if partial:
        salvager = _SELECT_SALVAGERS.get(key)
        if salvager is None:
            raise APIError(
                f"cannot parse SPARQL results of media type {media_type!r}")
        return salvager(text)
    parser = _SELECT_PARSERS.get(key)
    if parser is None:
        raise APIError(
            f"cannot parse SPARQL results of media type {media_type!r}")
    return parser(text)


def parse_ask(text: str, media_type: str) -> bool:
    """Parse an ASK results document (JSON or XML) into its boolean."""
    key = _media_key(media_type)
    if key in (_media_key(MEDIA_JSON), "application/json"):
        return bool(json.loads(text).get("boolean"))
    if key == _media_key(MEDIA_XML):
        root = ET.fromstring(text)
        node = root.find(f"{{{_XMLNS}}}boolean")
        if node is None:
            raise APIError("SPARQL XML results document has no <boolean>")
        return (node.text or "").strip().lower() == "true"
    raise APIError(f"cannot parse an ASK result of media type {media_type!r}")
