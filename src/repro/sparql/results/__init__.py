"""Query solutions, result sets, and their wire serializations.

``repro.sparql.results`` started life as the in-memory result model
(:class:`Solution`, :class:`ResultSet` — now :mod:`~repro.sparql.results.core`)
and grew into the service boundary's serialization layer when the platform
gained a real SPARQL endpoint over HTTP:
:mod:`~repro.sparql.results.serialize` holds *streaming* writers for the four
standard SPARQL 1.1 result formats (``application/sparql-results+json``,
``…+xml``, ``text/csv``, ``text/tab-separated-values``), RDF graph writers
for CONSTRUCT results, and the ``Accept``-header content negotiation that
picks between them.  Every writer is a row-at-a-time generator, so an HTTP
transport can stream a large result set with chunked transfer encoding
instead of buffering the full serialization.
"""

from repro.sparql.results.core import ResultSet, Solution
from repro.sparql.results.serialize import (
    GRAPH_MEDIA_TYPES,
    MEDIA_CSV,
    MEDIA_JSON,
    MEDIA_NTRIPLES,
    MEDIA_TSV,
    MEDIA_TURTLE,
    MEDIA_XML,
    RESULT_MEDIA_TYPES,
    NotAcceptable,
    negotiate_media_type,
    parse_accept,
    serialize_result,
)

__all__ = [
    "ResultSet",
    "Solution",
    "GRAPH_MEDIA_TYPES",
    "MEDIA_CSV",
    "MEDIA_JSON",
    "MEDIA_NTRIPLES",
    "MEDIA_TSV",
    "MEDIA_TURTLE",
    "MEDIA_XML",
    "RESULT_MEDIA_TYPES",
    "NotAcceptable",
    "negotiate_media_type",
    "parse_accept",
    "serialize_result",
]
