"""Streaming SPARQL 1.1 result serialization and content negotiation.

This module is the wire half of the results API: it turns the in-memory
evaluation results (:class:`~repro.sparql.results.core.ResultSet`, the ASK
``bool``, the CONSTRUCT :class:`~repro.rdf.graph.Graph`) into the standard
SPARQL 1.1 response formats a stock client understands:

* ``application/sparql-results+json``  (SPARQL 1.1 Query Results JSON),
* ``application/sparql-results+xml``   (SPARQL Query Results XML),
* ``text/csv`` / ``text/tab-separated-values`` (SELECT only, per the W3C
  CSV/TSV results note),
* ``application/n-triples`` / ``text/turtle`` for CONSTRUCT graphs.

Every writer is a generator yielding **bytes** fragments — header first,
then one fragment per solution row — so an HTTP transport can stream an
arbitrarily large result with chunked transfer encoding while holding only
one row's serialization in memory, and write each fragment to the socket
without a second str→bytes copy.  Term encodings are memoized on the term
dictionary: the :class:`~repro.rdf.dictionary.TermDictionary` interns every
decoded term (one object per id for the dataset's lifetime), so the bounded
module-level memos below are exactly ids → encoded-fragments tables shared
by *every* stream — a predicate or subject that appears in ten thousand
rows across ten thousand requests is escaped and UTF-8-encoded once, not
once per request.
:func:`negotiate_media_type` implements ``Accept``-header negotiation
(q-values, ``type/*`` and ``*/*`` ranges) over the formats applicable to a
given result kind and raises :class:`NotAcceptable` when the client's
preferences cannot be met.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape as _xml_escape
from xml.sax.saxutils import quoteattr as _xml_attr

from repro.exceptions import APIError, QueryError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal, Term, Variable, XSD_STRING
from repro.sparql.execution import StreamingResult
from repro.sparql.results.core import ResultSet, Solution

__all__ = [
    "MEDIA_JSON",
    "MEDIA_XML",
    "MEDIA_CSV",
    "MEDIA_TSV",
    "MEDIA_NTRIPLES",
    "MEDIA_TURTLE",
    "RESULT_MEDIA_TYPES",
    "BOOLEAN_MEDIA_TYPES",
    "GRAPH_MEDIA_TYPES",
    "NotAcceptable",
    "parse_accept",
    "negotiate",
    "negotiate_media_type",
    "binding_json",
    "serialize_result",
]

MEDIA_JSON = "application/sparql-results+json"
MEDIA_XML = "application/sparql-results+xml"
MEDIA_CSV = "text/csv"
MEDIA_TSV = "text/tab-separated-values"
MEDIA_NTRIPLES = "application/n-triples"
MEDIA_TURTLE = "text/turtle"

#: Formats offered for SELECT results, in server preference order (the first
#: acceptable one wins ties).  ``application/json`` is a courtesy alias many
#: generic HTTP clients send; it serves the SPARQL JSON format.
RESULT_MEDIA_TYPES: Tuple[str, ...] = (
    MEDIA_JSON, MEDIA_XML, MEDIA_CSV, MEDIA_TSV, "application/json")

#: Formats offered for ASK results (the CSV/TSV note covers SELECT only).
BOOLEAN_MEDIA_TYPES: Tuple[str, ...] = (MEDIA_JSON, MEDIA_XML, "application/json")

#: Formats offered for CONSTRUCT graphs.
GRAPH_MEDIA_TYPES: Tuple[str, ...] = (MEDIA_NTRIPLES, MEDIA_TURTLE, "text/plain")

#: Every media type some result kind can serialize to — the cheap pre-check
#: a server runs BEFORE executing a query, so a hopeless ``Accept`` header
#: costs a 406, not a full evaluation (exact per-kind negotiation still
#: happens on the result).
ALL_MEDIA_TYPES: Tuple[str, ...] = tuple(dict.fromkeys(
    RESULT_MEDIA_TYPES + BOOLEAN_MEDIA_TYPES + GRAPH_MEDIA_TYPES))

_XMLNS = "http://www.w3.org/2005/sparql-results#"


class NotAcceptable(APIError):
    """No offered media type satisfies the request's ``Accept`` header."""

    def __init__(self, accept: str, offered: Sequence[str]) -> None:
        self.accept = accept
        self.offered = tuple(offered)
        super().__init__(
            f"no acceptable result format for Accept: {accept!r}; "
            f"supported: {', '.join(offered)}")


# ---------------------------------------------------------------------------
# Content negotiation
# ---------------------------------------------------------------------------

def parse_accept(header: Optional[str]) -> List[Tuple[str, float]]:
    """Parse an ``Accept`` header into ``(media_range, q)`` pairs.

    Pairs come back in client preference order: descending q, then more
    specific ranges before wildcards, then header order.  Malformed entries
    (bad q-values, empty ranges) are skipped rather than rejected — the
    header is advisory and a sloppy client should still get an answer.
    """
    if not header:
        return []
    entries: List[Tuple[str, float, int, int]] = []
    for index, part in enumerate(header.split(",")):
        pieces = part.strip().split(";")
        media = pieces[0].strip().lower()
        if not media or "/" not in media:
            continue
        quality = 1.0
        for param in pieces[1:]:
            name, _, value = param.strip().partition("=")
            if name.strip().lower() == "q":
                try:
                    quality = float(value.strip())
                except ValueError:
                    quality = 1.0
                quality = min(max(quality, 0.0), 1.0)
        if media == "*/*":
            specificity = 0
        elif media.endswith("/*"):
            specificity = 1
        else:
            specificity = 2
        entries.append((media, quality, specificity, index))
    entries.sort(key=lambda e: (-e[1], -e[2], e[3]))
    return [(media, quality) for media, quality, _, _ in entries]


def _range_matches(media_range: str, offered: str) -> bool:
    if media_range == "*/*":
        return True
    if media_range.endswith("/*"):
        return offered.split("/", 1)[0] == media_range.split("/", 1)[0]
    return media_range == offered


#: Memo for :func:`negotiate`: real clients send a handful of distinct
#: ``Accept`` headers against a handful of offer tuples, so the hot path is
#: one dict probe.  Bounded against hostile header churn; cleared, not
#: evicted, on overflow (negotiation is pure, so entries never go stale).
_NEGOTIATE_MEMO: dict = {}
_NEGOTIATE_MEMO_LIMIT = 1024


def negotiate(accept: Optional[str], offered: Sequence[str]) -> Optional[str]:
    """Pick the best of ``offered`` for an ``Accept`` header.

    No header (or an empty one) means "anything": the server's first offer
    wins.  Per RFC 9110 each offered type's effective quality comes from the
    *most specific* matching range — so ``type;q=0, */*`` excludes ``type``
    while still accepting everything else (a plain first-match walk would
    hand back exactly the format the client vetoed).  Ties in quality break
    toward the server's offer order.  Returns None when nothing survives.
    """
    key = (accept, tuple(offered))
    try:
        return _NEGOTIATE_MEMO[key]
    except (KeyError, TypeError):
        pass
    best = _negotiate_uncached(accept, offered)
    try:
        if len(_NEGOTIATE_MEMO) >= _NEGOTIATE_MEMO_LIMIT:
            _NEGOTIATE_MEMO.clear()
        _NEGOTIATE_MEMO[key] = best
    except TypeError:
        pass  # unhashable accept value; just skip the memo
    return best


def _negotiate_uncached(accept: Optional[str],
                        offered: Sequence[str]) -> Optional[str]:
    ranges = parse_accept(accept)
    if not ranges:
        return offered[0] if offered else None
    best: Optional[str] = None
    best_quality = 0.0
    for candidate in offered:
        quality = 0.0
        specificity = -1
        for media_range, range_quality in ranges:
            if not _range_matches(media_range, candidate):
                continue
            if media_range == "*/*":
                range_spec = 0
            elif media_range.endswith("/*"):
                range_spec = 1
            else:
                range_spec = 2
            # parse_accept sorts by descending q, so the first match at the
            # highest specificity carries that specificity's best q.
            if range_spec > specificity:
                specificity = range_spec
                quality = range_quality
        if quality > best_quality:
            best = candidate
            best_quality = quality
    return best


def negotiate_media_type(accept: Optional[str], result: object) -> str:
    """Negotiate the response format for one evaluation result.

    ``result`` decides the offer: :class:`ResultSet` offers the four SELECT
    formats, ``bool`` the JSON/XML boolean formats, :class:`Graph` the RDF
    serializations.  Raises :class:`NotAcceptable` when negotiation fails.
    """
    if isinstance(result, (ResultSet, StreamingResult)):
        offered: Sequence[str] = RESULT_MEDIA_TYPES
    elif isinstance(result, bool):
        offered = BOOLEAN_MEDIA_TYPES
    elif isinstance(result, Graph):
        offered = GRAPH_MEDIA_TYPES
    else:
        raise QueryError(
            f"no media types exist for result type {type(result).__name__}")
    chosen = negotiate(accept, offered)
    if chosen is None:
        raise NotAcceptable(accept or "", offered)
    return chosen


# ---------------------------------------------------------------------------
# Term encodings
# ---------------------------------------------------------------------------

def binding_json(term: Term) -> dict:
    """One RDF term as a SPARQL JSON results binding object."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.id}
    if isinstance(term, Literal):
        obj = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            obj["xml:lang"] = term.language
        elif term.datatype != XSD_STRING:
            obj["datatype"] = term.datatype.value
        return obj
    raise QueryError(f"cannot serialize term type {type(term).__name__}")


#: Code points XML 1.0 cannot carry at all — not even as character
#: references.  Literals may legitimately hold them (the Turtle parser
#: accepts the ``\u0001`` escape); emitting them raw would make every conformant
#: client's XML parser reject the whole response, so they degrade to
#: U+FFFD in this one format (JSON/CSV/TSV represent them losslessly).
_XML_UNREPRESENTABLE = re.compile(r"[\x00-\x08\x0B\x0C\x0E-\x1F]")


def _xml_text(text: str) -> str:
    return _xml_escape(_XML_UNREPRESENTABLE.sub("�", text))


def _binding_xml(name: str, term: Term) -> str:
    if isinstance(term, IRI):
        body = f"<uri>{_xml_text(term.value)}</uri>"
    elif isinstance(term, BNode):
        body = f"<bnode>{_xml_text(term.id)}</bnode>"
    elif isinstance(term, Literal):
        text = _xml_text(term.lexical)
        if term.language is not None:
            body = f"<literal xml:lang={_xml_attr(term.language)}>{text}</literal>"
        elif term.datatype != XSD_STRING:
            body = (f"<literal datatype={_xml_attr(term.datatype.value)}>"
                    f"{text}</literal>")
        else:
            body = f"<literal>{text}</literal>"
    else:
        raise QueryError(f"cannot serialize term type {type(term).__name__}")
    return f"<binding name={_xml_attr(name)}>{body}</binding>"


def _csv_value(term: Optional[Term]) -> str:
    """W3C CSV results encoding: raw lexical forms, RFC 4180 quoting."""
    if term is None:
        return ""
    if isinstance(term, BNode):
        value = f"_:{term.id}"
    elif isinstance(term, IRI):
        value = term.value
    else:
        value = term.lexical  # type: ignore[union-attr]
    if any(ch in value for ch in (",", '"', "\n", "\r")):
        return '"' + value.replace('"', '""') + '"'
    return value


def _tsv_value(term: Optional[Term]) -> str:
    """W3C TSV results encoding: full SPARQL term syntax, empty if unbound."""
    return "" if term is None else term.n3()


# ---------------------------------------------------------------------------
# Persistent encoding memos
# ---------------------------------------------------------------------------
#
# One bounded module-level table per wire encoding, keyed on the (interned)
# term object.  Encoding is a pure function of the term's value, so entries
# never go stale across datasets or epochs; on overflow a table is simply
# cleared and re-fills (worst case: re-encode, never a wrong fragment).
# Plain dict get/set is atomic under the GIL, so concurrent request threads
# share the tables without a lock — a race costs one duplicate encode.

_TERM_MEMO_LIMIT = 1 << 16

_JSON_KEY_MEMO: dict = {}   # Variable -> b'"name":'
_JSON_TERM_MEMO: dict = {}  # Term -> compact binding-object JSON bytes
_XML_TERM_MEMO: dict = {}   # (Variable, Term) -> <binding> element bytes
_CSV_TERM_MEMO: dict = {}   # Term|None -> RFC 4180 field bytes
_TSV_TERM_MEMO: dict = {}   # Term|None -> SPARQL term syntax bytes
_N3_TERM_MEMO: dict = {}    # Term -> N-Triples term bytes


# ---------------------------------------------------------------------------
# Streaming writers (generators of bytes fragments)
# ---------------------------------------------------------------------------

def write_select_json(variables: Sequence[Variable],
                      solutions: Iterable[Solution]) -> Iterator[bytes]:
    head = json.dumps({"head": {"vars": [v.name for v in variables]}},
                      separators=(",", ":"))
    yield (head[:-1] + ',"results":{"bindings":[').encode("utf-8")
    term_memo = _JSON_TERM_MEMO
    key_memo = _JSON_KEY_MEMO
    first = True
    for solution in solutions:
        parts = []
        for var, term in solution.items():
            key = key_memo.get(var)
            if key is None:
                if len(key_memo) >= _TERM_MEMO_LIMIT:
                    key_memo.clear()
                key = key_memo[var] = (json.dumps(var.name) + ":").encode("utf-8")
            encoded = term_memo.get(term)
            if encoded is None:
                if len(term_memo) >= _TERM_MEMO_LIMIT:
                    term_memo.clear()
                encoded = term_memo[term] = json.dumps(
                    binding_json(term), separators=(",", ":")).encode("utf-8")
            parts.append(key + encoded)
        fragment = b"{" + b",".join(parts) + b"}"
        yield fragment if first else b"," + fragment
        first = False
    yield b"]}}"


def write_ask_json(value: bool) -> Iterator[bytes]:
    yield json.dumps({"head": {}, "boolean": bool(value)},
                     separators=(",", ":")).encode("utf-8")


def write_select_xml(variables: Sequence[Variable],
                     solutions: Iterable[Solution]) -> Iterator[bytes]:
    head = "".join(f'<variable name={_xml_attr(v.name)}/>' for v in variables)
    yield (f'<?xml version="1.0"?>\n<sparql xmlns="{_XMLNS}">'
           f"<head>{head}</head><results>").encode("utf-8")
    # Keyed by (variable, term): the XML binding element embeds the name.
    memo = _XML_TERM_MEMO
    for solution in solutions:
        parts = [b"<result>"]
        for var in variables:
            term = solution.get(var)
            if term is None:
                continue
            key = (var, term)
            encoded = memo.get(key)
            if encoded is None:
                if len(memo) >= _TERM_MEMO_LIMIT:
                    memo.clear()
                encoded = memo[key] = _binding_xml(
                    var.name, term).encode("utf-8")
            parts.append(encoded)
        parts.append(b"</result>")
        yield b"".join(parts)
    yield b"</results></sparql>"


def write_ask_xml(value: bool) -> Iterator[bytes]:
    yield (f'<?xml version="1.0"?>\n<sparql xmlns="{_XMLNS}">'
           f"<head></head><boolean>{'true' if value else 'false'}</boolean>"
           "</sparql>").encode("utf-8")


def write_select_csv(variables: Sequence[Variable],
                     solutions: Iterable[Solution]) -> Iterator[bytes]:
    yield (",".join(v.name for v in variables) + "\r\n").encode("utf-8")
    memo = _CSV_TERM_MEMO
    for solution in solutions:
        parts = []
        for var in variables:
            term = solution.get(var)
            encoded = memo.get(term)
            if encoded is None:
                if len(memo) >= _TERM_MEMO_LIMIT:
                    memo.clear()
                encoded = memo[term] = _csv_value(term).encode("utf-8")
            parts.append(encoded)
        yield b",".join(parts) + b"\r\n"


def write_select_tsv(variables: Sequence[Variable],
                     solutions: Iterable[Solution]) -> Iterator[bytes]:
    yield ("\t".join(f"?{v.name}" for v in variables) + "\n").encode("utf-8")
    memo = _TSV_TERM_MEMO
    for solution in solutions:
        parts = []
        for var in variables:
            term = solution.get(var)
            encoded = memo.get(term)
            if encoded is None:
                if len(memo) >= _TERM_MEMO_LIMIT:
                    memo.clear()
                encoded = memo[term] = _tsv_value(term).encode("utf-8")
            parts.append(encoded)
        yield b"\t".join(parts) + b"\n"


def write_graph_ntriples(graph: Graph) -> Iterator[bytes]:
    memo = _N3_TERM_MEMO
    for triple in graph:
        parts = []
        for term in triple:
            encoded = memo.get(term)
            if encoded is None:
                if len(memo) >= _TERM_MEMO_LIMIT:
                    memo.clear()
                encoded = memo[term] = term.n3().encode("utf-8")
            parts.append(encoded)
        yield b" ".join(parts) + b" .\n"


def write_graph_turtle(graph: Graph) -> Iterator[bytes]:
    # Turtle groups statements by subject, which needs the whole graph in
    # hand anyway; reuse the canonical writer and yield it in one fragment.
    from repro.rdf.io import serialize_turtle
    yield serialize_turtle(graph).encode("utf-8")


_SELECT_WRITERS = {
    MEDIA_JSON: write_select_json,
    "application/json": write_select_json,
    MEDIA_XML: write_select_xml,
    MEDIA_CSV: write_select_csv,
    MEDIA_TSV: write_select_tsv,
}

_BOOLEAN_WRITERS = {
    MEDIA_JSON: write_ask_json,
    "application/json": write_ask_json,
    MEDIA_XML: write_ask_xml,
}

_GRAPH_WRITERS = {
    MEDIA_NTRIPLES: write_graph_ntriples,
    "text/plain": write_graph_ntriples,
    MEDIA_TURTLE: write_graph_turtle,
}


def _finishing_rows(result: StreamingResult) -> Iterator[Solution]:
    """Drain a lazy SELECT, reporting the row count on clean exhaustion.

    A mid-stream :class:`~repro.exceptions.QueryInterrupted` propagates out
    through the writer (the transport turns it into a cut stream); ``finish``
    only fires for complete results, so statistics never describe a partial
    drain as a full one.
    """
    rows = 0
    for solution in result.solutions:
        rows += 1
        yield solution
    result.finish(rows)


def serialize_result(result: object, media_type: str) -> Iterator[bytes]:
    """Serialize one evaluation result in ``media_type`` as a bytes stream.

    ``media_type`` must have come from :func:`negotiate_media_type` (or be
    one of the constants above); an inapplicable combination — CSV for an
    ASK, JSON for a graph — raises :class:`~repro.exceptions.QueryError`.
    A :class:`~repro.sparql.execution.StreamingResult` serializes row by row
    as the lazy pipeline produces them, which keeps the execution context's
    deadline and cancellation live for the whole transfer.
    """
    if isinstance(result, ResultSet):
        writer = _SELECT_WRITERS.get(media_type)
        if writer is not None:
            return writer(result.variables, iter(result))
    elif isinstance(result, StreamingResult):
        writer = _SELECT_WRITERS.get(media_type)
        if writer is not None:
            return writer(result.variables, _finishing_rows(result))
    elif isinstance(result, bool):
        writer = _BOOLEAN_WRITERS.get(media_type)
        if writer is not None:
            return writer(result)
    elif isinstance(result, Graph):
        writer = _GRAPH_WRITERS.get(media_type)
        if writer is not None:
            return writer(result)
    raise QueryError(
        f"cannot serialize a {type(result).__name__} result as {media_type!r}")
