"""Cooperative interruption for the streaming SPARQL pipeline.

The evaluator's operators are plain Python generators; nothing external can
stop one mid-flight.  :class:`ExecutionContext` closes that gap with a
*cooperative* protocol: every operator calls :meth:`~ExecutionContext.checkpoint`
once per unit of work (a join-loop iteration, a row through a filter), and the
context raises a typed :class:`~repro.exceptions.QueryInterrupted` subclass as
soon as a limit trips:

* a **deadline** (``timeout`` seconds, measured on the monotonic clock)
  raises :class:`~repro.exceptions.QueryTimeout`,
* a **cancellation event** (set by the server when the client disconnects)
  raises :class:`~repro.exceptions.QueryCancelled`,
* a hard **work budget** (``max_work`` checkpoint ticks) raises
  :class:`~repro.exceptions.QueryPreempted`.

Each exception carries partial-progress statistics (elapsed time, work units,
rows emitted) so callers and the wire protocol can report how far the query
got before it was stopped.

Time-sliced scheduling does **not** use the work budget: raising an exception
through a running generator destroys its cursor state, so the scheduler in
:mod:`repro.concurrency.scheduler` instead *suspends consumption* of the lazy
iterator returned by ``QueryEvaluator.stream_select`` when
:meth:`~ExecutionContext.quantum_expired` reports the slice is over — the
generator stays alive, parked exactly where it was, and resumes on the next
slice.  ``checkpoint`` stays cheap for that reason too: the hot join loop
amortises it behind a bitmask so preemptability costs the happy path almost
nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, List, Optional

from repro.exceptions import QueryCancelled, QueryPreempted, QueryTimeout

__all__ = ["ExecutionContext", "StreamingResult"]


class ExecutionContext:
    """Per-query interruption state threaded through the evaluator.

    Parameters
    ----------
    timeout:
        Wall-clock budget in seconds; ``None`` disables the deadline.  The
        clock starts when the context is constructed (monotonic).
    cancel:
        A :class:`threading.Event`-like object with ``is_set()``; when set,
        the next checkpoint raises :class:`QueryCancelled`.  ``None``
        allocates a private event so :meth:`cancel` always works.
    max_work:
        Hard budget of checkpoint ticks; ``None`` disables it.  Exceeding it
        raises :class:`QueryPreempted` — use only when the caller wants a
        fatal cap, not for time-slicing (see module docstring).
    quantum_work, quantum_seconds:
        Soft per-slice budgets consulted by :meth:`quantum_expired`.  They
        never raise; the scheduler polls them between rows to decide when to
        suspend.  ``None`` disables each bound.
    """

    __slots__ = ("deadline", "timeout", "_cancel", "max_work",
                 "quantum_work", "quantum_seconds", "work_units",
                 "rows_emitted", "started_at", "_slice_started",
                 "_slice_work", "interrupted")

    def __init__(self, timeout: Optional[float] = None,
                 cancel: Optional[threading.Event] = None,
                 max_work: Optional[int] = None,
                 quantum_work: Optional[int] = None,
                 quantum_seconds: Optional[float] = None) -> None:
        now = time.monotonic()
        self.started_at = now
        self.timeout = timeout
        self.deadline = now + timeout if timeout is not None else None
        self._cancel = cancel if cancel is not None else threading.Event()
        self.max_work = max_work
        self.quantum_work = quantum_work
        self.quantum_seconds = quantum_seconds
        #: Total checkpoint ticks over the query's whole life (all slices).
        self.work_units = 0
        #: Result rows the consumer has accounted (see :meth:`count_row`).
        self.rows_emitted = 0
        self._slice_started = now
        self._slice_work = 0
        #: The terminal exception, once one has been raised (for stats).
        self.interrupted: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def checkpoint(self, work: int = 1) -> None:
        """Account ``work`` ticks and raise if any hard limit has tripped.

        Hot operators amortise the call (e.g. once per 256 iterations with
        ``work=256``); cool operators call it per row with the default.
        """
        self.work_units += work
        self._slice_work += work
        if self._cancel.is_set():
            self._raise(QueryCancelled("query cancelled"))
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._raise(QueryTimeout(
                f"query exceeded its {self.timeout:g}s timeout"))
        if self.max_work is not None and self.work_units > self.max_work:
            self._raise(QueryPreempted(
                f"query exceeded its work budget of {self.max_work} units"))

    def _raise(self, exc: QueryTimeout) -> None:
        exc.elapsed_seconds = self.elapsed()
        exc.work_units = self.work_units
        exc.rows_emitted = self.rows_emitted
        self.interrupted = exc
        raise exc

    # ------------------------------------------------------------------
    # Scheduler slice protocol (never raises)
    # ------------------------------------------------------------------
    def begin_slice(self) -> None:
        """Reset the per-slice budgets at the start of a scheduler slice."""
        self._slice_started = time.monotonic()
        self._slice_work = 0

    def quantum_expired(self) -> bool:
        """Has the current slice used up its row or time quantum?"""
        if (self.quantum_work is not None
                and self._slice_work >= self.quantum_work):
            return True
        if (self.quantum_seconds is not None
                and time.monotonic() - self._slice_started
                >= self.quantum_seconds):
            return True
        return False

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def count_row(self) -> None:
        """Record one emitted result row (called by the consuming layer)."""
        self.rows_emitted += 1

    def cancel(self) -> None:
        """Request cancellation; the next checkpoint raises."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` without one."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ExecutionContext timeout={self.timeout} "
                f"work={self.work_units} rows={self.rows_emitted}>")


class StreamingResult:
    """A lazily evaluated SELECT: variables plus an unconsumed row iterator.

    ``QueryEvaluator.stream_select`` / ``SparqlEndpoint.execute_stream``
    return one of these instead of a materialised
    :class:`~repro.sparql.results.ResultSet`.  The consumer (normally the
    scheduler) pulls ``solutions`` in quanta and calls :meth:`finish` once
    with the final row count so the endpoint can record query statistics on
    whatever thread drove the iterator.
    """

    __slots__ = ("variables", "solutions", "finish")

    def __init__(self, variables: List[str], solutions: Iterator,
                 finish: Optional[Callable[[int], None]] = None) -> None:
        self.variables = variables
        self.solutions = solutions
        self.finish = finish if finish is not None else (lambda rows: None)

    def materialize(self, context: Optional[ExecutionContext] = None):
        """Drain the iterator into a ResultSet (convenience, no slicing)."""
        from repro.sparql.results import ResultSet

        rows = []
        for solution in self.solutions:
            rows.append(solution)
            if context is not None:
                context.count_row()
        self.finish(len(rows))
        return ResultSet(self.variables, rows)
