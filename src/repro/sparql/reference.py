"""The seed (pre-pipeline) SPARQL evaluator, kept as a frozen reference.

:class:`ReferenceQueryEvaluator` is the original materialize-per-pattern
nested-loop evaluator the repository shipped with before the streaming
id-space pipeline replaced it in :mod:`repro.sparql.evaluator`.  It is kept
verbatim for two jobs:

* **equivalence testing** — the property suite generates random graphs and
  queries and asserts the streaming evaluator returns exactly this
  evaluator's solution multisets,
* **benchmarking** — ``benchmarks/bench_query_pipeline.py`` reports the
  streaming pipeline's BGP-join throughput as a speedup over this baseline.

It only touches the public term-level :class:`~repro.rdf.graph.Graph` API
(``triples`` / ``count`` / ``nodes``), so it keeps working unchanged on top
of the dictionary-encoded store.  Do not optimise this module; its value is
that it does not change.

One deliberate extension: a *naive fixed-point property-path evaluator*
(:meth:`ReferenceQueryEvaluator._path_pairs`) serving as the differential
oracle for the streaming closure iterators.  It evaluates paths entirely in
term space by materialising endpoint-pair bags (sets for ``*``/``+``/``?``,
per the SPARQL 1.1 ALP distinct-pair semantics) — a completely different
code path from the id-space BFS rewrite in the streaming evaluator, which is
exactly what makes the differential suite meaningful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, Triple, Variable, XSD_DOUBLE, XSD_INTEGER
from repro.sparql.ast import (
    Aggregate,
    AlternativePath,
    AskQuery,
    BGP,
    BindPattern,
    ConstructQuery,
    FilterPattern,
    GroupPattern,
    InversePath,
    LinkPath,
    MinusPattern,
    MulPath,
    NegatedPath,
    OptionalPattern,
    PathExpr,
    PathPattern,
    Query,
    SelectQuery,
    SequencePath,
    SubSelectPattern,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VariableExpr,
)
from repro.sparql.functions import (
    EvaluationContext,
    UDFRegistry,
    effective_boolean_value,
    evaluate_expression,
)
from repro.sparql.results import ResultSet, Solution

__all__ = ["ReferenceQueryEvaluator"]


def _reference_estimate(graph: Graph, pattern: TriplePattern,
                        bound: Optional[set] = None) -> float:
    """The seed cardinality estimator (exact index counts, /10 per bound var)."""
    bound = bound or set()
    s = pattern.subject if not isinstance(pattern.subject, Variable) else None
    p = pattern.predicate if not isinstance(pattern.predicate, Variable) else None
    o = pattern.object if not isinstance(pattern.object, Variable) else None
    estimate = float(graph.count(s, p, o))
    if estimate == 0:
        return 0.0
    for term in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(term, Variable) and term in bound:
            estimate = max(1.0, estimate / 10.0)
    return estimate


def _reference_reorder(graph: Graph,
                       patterns: Sequence[TriplePattern]) -> List[TriplePattern]:
    """The seed greedy join-order optimization."""
    remaining = list(patterns)
    ordered: List[TriplePattern] = []
    bound: set = set()
    while remaining:
        best_index = 0
        best_score = None
        for index, pattern in enumerate(remaining):
            cardinality = _reference_estimate(graph, pattern, bound)
            connected = bool(bound) and any(
                isinstance(t, Variable) and t in bound for t in pattern
            )
            score = (0 if connected or not bound else 1, cardinality)
            if best_score is None or score < best_score:
                best_score = score
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        for term in chosen:
            if isinstance(term, Variable):
                bound.add(term)
    return ordered


class ReferenceQueryEvaluator:
    """The seed evaluator: list-of-Solutions materialized after each pattern."""

    def __init__(self, graph: Graph, udfs: Optional[UDFRegistry] = None,
                 optimize_joins: bool = True) -> None:
        self.graph = graph
        self.udfs = udfs or UDFRegistry()
        self.optimize_joins = optimize_joins
        self.context = EvaluationContext(udfs=self.udfs,
                                         exists_evaluator=self._evaluate_exists)
        self.pattern_lookups = 0

    # -- public API ---------------------------------------------------------
    def evaluate(self, query: Query):
        if isinstance(query, SelectQuery):
            return self.evaluate_select(query)
        if isinstance(query, AskQuery):
            return self.evaluate_ask(query)
        if isinstance(query, ConstructQuery):
            return self.evaluate_construct(query)
        raise QueryError(f"unsupported query type {type(query).__name__}")

    def evaluate_select(self, query: SelectQuery) -> ResultSet:
        solutions = self._evaluate_group(query.where, [Solution()])
        solutions = self._apply_grouping(query, solutions)
        solutions = self._apply_order(query, solutions)
        variables, solutions = self._apply_projection(query, solutions)
        if query.distinct or query.reduced:
            solutions = self._distinct(solutions)
        solutions = self._apply_slice(query, solutions)
        return ResultSet(variables, solutions)

    def evaluate_ask(self, query: AskQuery) -> bool:
        solutions = self._evaluate_group(query.where, [Solution()])
        return bool(solutions)

    def evaluate_construct(self, query: ConstructQuery) -> Graph:
        solutions = self._evaluate_group(query.where, [Solution()])
        if query.limit is not None:
            solutions = solutions[: query.limit]
        result = Graph(namespaces=self.graph.namespaces.copy())
        for solution in solutions:
            for template in query.template:
                triple = _instantiate(template, solution)
                if triple is not None and triple.is_ground():
                    result.add(triple)
        return result

    # -- group pattern evaluation -------------------------------------------
    def _evaluate_group(self, group: GroupPattern,
                        solutions: List[Solution]) -> List[Solution]:
        for element in group.elements:
            if isinstance(element, BGP):
                solutions = self._evaluate_bgp(element, solutions)
            elif isinstance(element, PathPattern):
                solutions = self._evaluate_path_pattern(element, solutions)
            elif isinstance(element, FilterPattern):
                solutions = [
                    sol for sol in solutions
                    if effective_boolean_value(
                        evaluate_expression(element.expression, sol, self.context))
                ]
            elif isinstance(element, OptionalPattern):
                solutions = self._evaluate_optional(element, solutions)
            elif isinstance(element, UnionPattern):
                merged: List[Solution] = []
                for alternative in element.alternatives:
                    merged.extend(self._evaluate_group(alternative, list(solutions)))
                solutions = merged
            elif isinstance(element, MinusPattern):
                solutions = self._evaluate_minus(element, solutions)
            elif isinstance(element, BindPattern):
                new_solutions = []
                for sol in solutions:
                    value = evaluate_expression(element.expression, sol, self.context)
                    extended = Solution(sol)
                    if value is not None:
                        if element.variable in extended and extended[element.variable] != value:
                            continue
                        extended[element.variable] = value
                    new_solutions.append(extended)
                solutions = new_solutions
            elif isinstance(element, ValuesPattern):
                solutions = self._evaluate_values(element, solutions)
            elif isinstance(element, SubSelectPattern):
                sub_result = self.evaluate_select(element.query)
                joined: List[Solution] = []
                for sol in solutions:
                    for sub_sol in sub_result.solutions:
                        merged_sol = sol.merged(sub_sol)
                        if merged_sol is not None:
                            joined.append(merged_sol)
                solutions = joined
            else:  # pragma: no cover - defensive
                raise QueryError(f"unsupported pattern element {type(element).__name__}")
            if not solutions:
                return []
        return solutions

    def _evaluate_bgp(self, bgp: BGP, solutions: List[Solution]) -> List[Solution]:
        patterns = list(bgp.triples)
        if self.optimize_joins:
            patterns = _reference_reorder(self.graph, patterns)
        for pattern in patterns:
            solutions = self._join_pattern(pattern, solutions)
            if not solutions:
                break
        return solutions

    def _join_pattern(self, pattern: TriplePattern,
                      solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in solutions:
            s = _resolve(pattern.subject, solution)
            p = _resolve(pattern.predicate, solution)
            o = _resolve(pattern.object, solution)
            self.pattern_lookups += 1
            for triple in self.graph.triples(s, p, o):
                extended = _bind(pattern, triple, solution)
                if extended is not None:
                    results.append(extended)
        return results

    # -- property paths (naive fixed-point oracle) ---------------------------
    def _evaluate_path_pattern(self, pattern: PathPattern,
                               solutions: List[Solution]) -> List[Solution]:
        """Join a property-path pattern by materialising endpoint pairs."""
        results: List[Solution] = []
        for solution in solutions:
            s = _resolve(pattern.subject, solution)
            o = _resolve(pattern.object, solution)
            for x, y in self._path_pairs(pattern.path, s, o):
                extended = Solution(solution)
                compatible = True
                for term, value in ((pattern.subject, x), (pattern.object, y)):
                    if isinstance(term, Variable):
                        existing = extended.get(term)
                        if existing is not None and existing != value:
                            compatible = False
                            break
                        extended[term] = value
                    elif term != value:
                        compatible = False
                        break
                if compatible:
                    results.append(extended)
        return results

    def _path_pairs(self, path: PathExpr, s: Optional[Term],
                    o: Optional[Term]) -> List[Tuple[Term, Term]]:
        """All ``(subject, object)`` pairs matching ``path``.

        Bag semantics for ``seq``/``alt``/``inv``/``!(...)`` (one entry per
        derivation), set semantics for ``*``/``+``/``?`` closures.  ``s``/``o``
        anchor the search when bound; ``None`` leaves the endpoint free.
        """
        graph = self.graph
        if isinstance(path, LinkPath):
            return [(t.subject, t.object)
                    for t in graph.triples(s, path.iri, o)]
        if isinstance(path, InversePath):
            return [(y, x) for (x, y) in self._path_pairs(path.path, o, s)]
        if isinstance(path, SequencePath):
            steps = path.steps
            last_index = len(steps) - 1
            pairs = self._path_pairs(steps[0], s, o if last_index == 0 else None)
            for index in range(1, len(steps)):
                target = o if index == last_index else None
                joined: List[Tuple[Term, Term]] = []
                for x, mid in pairs:
                    for _, y in self._path_pairs(steps[index], mid, target):
                        joined.append((x, y))
                pairs = joined
                if not pairs:
                    break
            return pairs
        if isinstance(path, AlternativePath):
            out: List[Tuple[Term, Term]] = []
            for alternative in path.alternatives:
                out.extend(self._path_pairs(alternative, s, o))
            return out
        if isinstance(path, MulPath):
            return self._closure_pairs(path, s, o)
        if isinstance(path, NegatedPath):
            out = []
            if path.match_forward:
                for t in graph.triples(s, None, o):
                    if t.predicate not in path.forward:
                        out.append((t.subject, t.object))
            if path.match_inverse:
                for t in graph.triples(o, None, s):
                    if t.predicate not in path.inverse:
                        out.append((t.object, t.subject))
            return out
        raise QueryError(f"unsupported path expression {type(path).__name__}")

    def _closure_pairs(self, path: MulPath, s: Optional[Term],
                       o: Optional[Term]) -> List[Tuple[Term, Term]]:
        """Fixed-point evaluation of ``*``/``+``/``?`` (distinct pairs)."""
        modifier = path.modifier
        inner = path.path
        if s is not None:
            starts = [s]
        else:
            starts = list(self.graph.nodes())
            if o is not None and o not in starts:
                # A zero-length path can match an object term that never
                # occurs in the graph.
                starts.append(o)
        pairs = set()
        for start in starts:
            if modifier in ("*", "?"):
                pairs.add((start, start))
            if modifier == "?":
                for _, y in self._path_pairs(inner, start, None):
                    pairs.add((start, y))
                continue
            visited = set()
            frontier = [start]
            while frontier:
                next_frontier = []
                for node in frontier:
                    for _, y in self._path_pairs(inner, node, None):
                        if y not in visited:
                            visited.add(y)
                            next_frontier.append(y)
                frontier = next_frontier
            for y in visited:
                pairs.add((start, y))
        return [(x, y) for (x, y) in pairs
                if (s is None or x == s) and (o is None or y == o)]

    def _evaluate_optional(self, element: OptionalPattern,
                           solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in solutions:
            extended = self._evaluate_group(element.pattern, [solution])
            if extended:
                results.extend(extended)
            else:
                results.append(solution)
        return results

    def _evaluate_minus(self, element: MinusPattern,
                        solutions: List[Solution]) -> List[Solution]:
        excluded = self._evaluate_group(element.pattern, [Solution()])
        kept: List[Solution] = []
        for solution in solutions:
            remove = False
            for other in excluded:
                shared = set(solution) & set(other)
                if shared and all(solution[v] == other[v] for v in shared):
                    remove = True
                    break
            kept.append(solution) if not remove else None
        return kept

    def _evaluate_values(self, element: ValuesPattern,
                         solutions: List[Solution]) -> List[Solution]:
        value_solutions: List[Solution] = []
        for row in element.rows:
            sol = Solution()
            for var, term in zip(element.variables, row):
                if term is not None:
                    sol[var] = term
            value_solutions.append(sol)
        joined: List[Solution] = []
        for solution in solutions:
            for value_sol in value_solutions:
                merged = solution.merged(value_sol)
                if merged is not None:
                    joined.append(merged)
        return joined

    def _evaluate_exists(self, pattern: GroupPattern, solution: Solution) -> bool:
        return bool(self._evaluate_group(pattern, [Solution(solution)]))

    # -- grouping / aggregation ----------------------------------------------
    def _apply_grouping(self, query: SelectQuery,
                        solutions: List[Solution]) -> List[Solution]:
        has_aggregate = any(
            isinstance(item.expression, Aggregate) for item in query.select_items
        )
        if not query.group_by and not has_aggregate:
            return solutions
        groups: Dict[Tuple, List[Solution]] = {}
        for solution in solutions:
            key = tuple(
                evaluate_expression(expr, solution, self.context)
                for expr in query.group_by
            )
            groups.setdefault(key, []).append(solution)
        if not solutions and not query.group_by:
            groups[()] = []
        aggregated: List[Solution] = []
        for key, members in groups.items():
            row = Solution()
            for expr, value in zip(query.group_by, key):
                if isinstance(expr, VariableExpr) and value is not None:
                    row[expr.variable] = value
            for item in query.select_items:
                if isinstance(item.expression, Aggregate):
                    target = item.alias or Variable(f"agg_{len(row)}")
                    value = self._compute_aggregate(item.expression, members)
                    if value is not None:
                        row[target] = value
            aggregated.append(row)
        return aggregated

    def _compute_aggregate(self, aggregate: Aggregate,
                           members: List[Solution]) -> Optional[Term]:
        values: List[Term] = []
        if aggregate.expr is None:
            values = [Literal(1)] * len(members)
        else:
            for member in members:
                value = evaluate_expression(aggregate.expr, member, self.context)
                if value is not None:
                    values.append(value)
        if aggregate.distinct:
            unique: List[Term] = []
            seen = set()
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        name = aggregate.name
        if name == "COUNT":
            return Literal(len(values), datatype=XSD_INTEGER)
        if not values:
            return None
        if name == "SAMPLE":
            return values[0]
        if name == "GROUP_CONCAT":
            return Literal(aggregate.separator.join(str(v) for v in values))
        if name in ("MIN", "MAX"):
            keyed = sorted(values, key=lambda t: (t.sort_key()
                           if not (isinstance(t, Literal) and t.is_numeric())
                           else (2, float(t.lexical))))
            numeric = [v for v in values if isinstance(v, Literal) and v.is_numeric()]
            if numeric and len(numeric) == len(values):
                chosen = min(numeric, key=lambda t: float(t.lexical)) if name == "MIN" \
                    else max(numeric, key=lambda t: float(t.lexical))
                return chosen
            return keyed[0] if name == "MIN" else keyed[-1]
        numbers = [float(v.lexical) for v in values
                   if isinstance(v, Literal) and v.is_numeric()]
        if not numbers:
            return None
        if name == "SUM":
            total = sum(numbers)
            return Literal(int(total)) if float(total).is_integer() else Literal(total)
        if name == "AVG":
            return Literal(sum(numbers) / len(numbers), datatype=XSD_DOUBLE)
        raise QueryError(f"unsupported aggregate {name!r}")

    # -- projection / modifiers ----------------------------------------------
    def _apply_projection(self, query: SelectQuery,
                          solutions: List[Solution]) -> Tuple[List[Variable], List[Solution]]:
        if query.select_all:
            variables: List[Variable] = []
            for solution in solutions:
                for var in solution:
                    if var not in variables:
                        variables.append(var)
            if not variables:
                variables = query.projected_variables()
            return variables, solutions
        has_aggregate = any(isinstance(item.expression, Aggregate)
                            for item in query.select_items)
        variables = []
        for item in query.select_items:
            try:
                variables.append(item.output_variable)
            except ValueError:
                variables.append(Variable(f"expr{len(variables)}"))
        projected: List[Solution] = []
        for solution in solutions:
            row = Solution()
            for variable, item in zip(variables, query.select_items):
                if isinstance(item.expression, Aggregate):
                    if variable in solution:
                        row[variable] = solution[variable]
                    continue
                if isinstance(item.expression, VariableExpr) and item.alias is None:
                    value = solution.get(item.expression.variable)
                else:
                    value = evaluate_expression(item.expression, solution, self.context)
                if value is not None:
                    row[variable] = value
            projected.append(row)
        if has_aggregate and not query.group_by and not projected:
            projected = [Solution()]
        return variables, projected

    def _apply_order(self, query: SelectQuery,
                     solutions: List[Solution]) -> List[Solution]:
        if not query.order_by:
            return solutions

        def sort_key(solution: Solution):
            keys = []
            for condition in query.order_by:
                value = evaluate_expression(condition.expression, solution, self.context)
                if value is None:
                    key: Tuple = (0, "")
                elif isinstance(value, Literal) and value.is_numeric():
                    key = (1, float(value.lexical))
                else:
                    key = (2, value.n3())
                keys.append(key)
            return tuple(keys)

        ordered = sorted(solutions, key=sort_key)
        for index in reversed(range(len(query.order_by))):
            condition = query.order_by[index]
            if condition.descending:
                def single_key(solution: Solution, _c=condition):
                    value = evaluate_expression(_c.expression, solution, self.context)
                    if value is None:
                        return (0, "")
                    if isinstance(value, Literal) and value.is_numeric():
                        return (1, float(value.lexical))
                    return (2, value.n3())
                ordered = sorted(ordered, key=single_key, reverse=True)
        return ordered

    def _distinct(self, solutions: List[Solution]) -> List[Solution]:
        seen = set()
        unique: List[Solution] = []
        for solution in solutions:
            key = frozenset(solution.items())
            if key not in seen:
                seen.add(key)
                unique.append(solution)
        return unique

    def _apply_slice(self, query: SelectQuery,
                     solutions: List[Solution]) -> List[Solution]:
        start = query.offset or 0
        end = start + query.limit if query.limit is not None else None
        return solutions[start:end]


# ---------------------------------------------------------------------------
# Helpers (frozen copies of the seed helpers)
# ---------------------------------------------------------------------------

def _resolve(term: Term, solution: Solution) -> Optional[Term]:
    if isinstance(term, Variable):
        return solution.get(term)
    return term


def _bind(pattern: TriplePattern, triple: Triple,
          solution: Solution) -> Optional[Solution]:
    extended = Solution(solution)
    for pattern_term, value in zip(pattern, triple):
        if isinstance(pattern_term, Variable):
            existing = extended.get(pattern_term)
            if existing is not None and existing != value:
                return None
            extended[pattern_term] = value
        elif pattern_term != value:
            return None
    return extended


def _instantiate(pattern: TriplePattern, solution: Solution) -> Optional[Triple]:
    terms = []
    for term in pattern:
        if isinstance(term, Variable):
            value = solution.get(term)
            if value is None:
                return None
            terms.append(value)
        else:
            terms.append(term)
    return Triple(*terms)
