"""SPARQL query and update evaluation over :class:`repro.rdf.graph.Graph`.

The evaluator runs basic graph patterns as a *streaming, dictionary-encoded
pipeline*: every BGP is compiled once (constants interned to integer ids,
variables assigned dense slots, patterns greedily reordered by maintained
cardinality statistics) and then evaluated as a chain of index-nested-loop
scan/join generators over id-space bindings — the shape of the Sage engine's
``ScanIterator`` / ``IndexJoinIterator`` pipeline.  Ids are decoded back to
:class:`~repro.rdf.terms.Term` objects only when a fully-joined row leaves
the BGP, so intermediate results are integer slot arrays instead of per-row
``Solution`` dictionaries.

Group-level operators (FILTER / OPTIONAL / UNION / MINUS / BIND / VALUES /
sub-SELECT) are lazy generators as well, which lets LIMIT, ASK and EXISTS
stop consuming the pipeline as soon as they have what they need.  Grouping
and ORDER BY materialize, as they must.

Compiled BGPs can be cached across executions through a :class:`QueryPlan`
(the endpoint's plan cache stores one per query text); a plan transparently
recompiles itself when the graph object or its mutation epoch changes.

Every operator cooperates with an optional per-query
:class:`~repro.sparql.execution.ExecutionContext`: the hot join loops tick an
amortised checkpoint (one call per 256 iterations, so preemptability costs
the happy path almost nothing) and every other operator checkpoints per row,
letting a deadline, cancellation event, or work budget stop a hostile query
with a typed :class:`~repro.exceptions.QueryInterrupted` subclass.
:meth:`QueryEvaluator.stream_select` exposes the SELECT pipeline *lazily*
(variables + unconsumed row iterator) so the scheduler can suspend and resume
consumption mid-query without losing cursor state.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError, UpdateError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.terms import (
    IRI,
    BNode,
    Literal,
    Term,
    Triple,
    Variable,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.sparql.ast import (
    Aggregate,
    AlternativePath,
    AskQuery,
    BGP,
    BindPattern,
    ClearUpdate,
    ClosurePattern,
    ConstructQuery,
    DeleteDataUpdate,
    Expression,
    FilterPattern,
    GroupPattern,
    InsertDataUpdate,
    InversePath,
    LinkPath,
    MinusPattern,
    ModifyUpdate,
    MulPath,
    NegatedPath,
    NegatedPathPattern,
    OptionalPattern,
    PathPattern,
    Query,
    SelectItem,
    SelectQuery,
    SequencePath,
    SubSelectPattern,
    TriplePattern,
    UnionPattern,
    Update,
    ValuesPattern,
    VariableExpr,
)
from repro.sparql.execution import ExecutionContext
from repro.sparql.optimizer import (
    estimate_pattern_cardinality,
    reorder_group_elements,
    reorder_patterns,
)
from repro.sparql.paths import invert_path, normalize_path, rewrite_path_pattern
from repro.sparql.functions import (
    EvaluationContext,
    UDFRegistry,
    effective_boolean_value,
    evaluate_expression,
)
from repro.sparql.results import ResultSet, Solution

# ``reorder_patterns`` / ``estimate_pattern_cardinality`` grew up here and
# moved to :mod:`repro.sparql.optimizer`; they stay re-exported for the
# existing import sites.
__all__ = ["QueryEvaluator", "QueryPlan", "reorder_patterns",
           "estimate_pattern_cardinality"]


# ---------------------------------------------------------------------------
# Compiled BGPs and cached plans
# ---------------------------------------------------------------------------

class _CompiledBGP:
    """A BGP compiled to id space.

    ``specs`` holds one ``((s_const, s_slot), (p_const, p_slot),
    (o_const, o_slot))`` entry per kept (reordered) triple pattern, where
    exactly one of ``const`` (an interned term id) and ``slot`` (a variable
    slot index) is set per component.  ``empty`` marks a BGP containing a
    constant the dictionary has never interned — it cannot match anything.

    ``intersectors`` runs parallel to ``specs``: each entry is a tuple of
    ``(spec, unbound_position)`` pairs for patterns *folded out* of the
    backtracking join by :func:`_fold_intersectors` — enforced batch-at-a-
    time as id-set intersections at the level that binds their join
    variable, instead of one nested-loop level per pattern.  ``var_slots``
    still covers every variable of the original BGP (folded patterns never
    introduce new variables), so emitted rows are unchanged.
    """

    __slots__ = ("specs", "var_slots", "slot_vars", "num_slots", "empty",
                 "intersectors")

    def __init__(self, specs, var_slots: Dict[Variable, int], empty: bool,
                 intersectors=None) -> None:
        self.specs = specs
        self.var_slots = var_slots
        self.slot_vars = tuple(var_slots)  # slot index -> Variable
        self.num_slots = len(var_slots)
        self.empty = empty
        self.intersectors = (intersectors if intersectors is not None
                             else ((),) * len(specs))


def _fold_intersectors(specs):
    """Fold single-join-variable patterns into the level binding them.

    A pattern whose components are all bound by earlier levels — except a
    *join* variable ``v`` appearing exactly once — contributes no new
    bindings and at most one match per candidate value of ``v``: it is a
    membership test, not a scan.  Instead of spending a backtracking level
    probing it once per candidate, fold it into the level that binds ``v``:
    when that level enumerates candidates off one index set, every folded
    pattern narrows the whole set with a single C-level ``set & set``
    intersection (the canonical win is a star join: ``?s p1 o1 . ?s p2 o2 .
    ?s p3 ?name`` runs one scan plus one intersection, not a nested loop).

    Returns ``(kept_specs, intersectors)``, ``intersectors[i]`` being the
    ``(spec, unbound_position)`` pairs enforced at kept level ``i``.
    Multiset semantics are preserved exactly: a folded pattern's multiplicity
    per candidate is one (all other components ground), which is what set
    membership encodes.  Folding only considers *static* bindings — a level
    whose join variable arrives pre-bound at runtime (seeded input solution)
    degenerates to ground containment probes, handled by the runtime.
    """
    bound = set()            # slots statically bound by kept levels
    level_of_slot = {}       # slot -> kept level that first binds it
    target_slot = {}         # kept level -> its single new slot, if any
    kept = []
    intersectors = []
    for spec in specs:
        positions = [(index, slot) for index, (_, slot) in enumerate(spec)
                     if slot is not None]
        new = {slot for _, slot in positions if slot not in bound}
        if not new and positions:
            # Every variable already bound upstream: fold into the level
            # that binds the last of them, if that level enumerates exactly
            # that one variable (and it appears here exactly once — a
            # repeated variable needs the per-triple compatibility check).
            latest = max(level_of_slot[slot] for _, slot in positions)
            v = target_slot.get(latest)
            v_positions = [index for index, slot in positions if slot == v]
            if v is not None and len(v_positions) == 1:
                intersectors[latest] = intersectors[latest] + (
                    (spec, v_positions[0]),)
                continue
        level = len(kept)
        kept.append(spec)
        intersectors.append(())
        for _, slot in positions:
            if slot not in bound:
                bound.add(slot)
                level_of_slot[slot] = level
        if len(new) == 1:
            v = next(iter(new))
            if sum(1 for _, slot in positions if slot == v) == 1:
                target_slot[level] = v
    return kept, intersectors


def _compile_step(graph: Graph, path):
    """Compile a (normalized) path into an id-space successor function.

    The returned callable maps ``(node_id, tick)`` to an iterable of
    successor ids — one application of the path.  ``tick`` is the caller's
    amortised checkpoint hook; composite steps forward it into their inner
    loops so even a nested closure stays preemptable.  Constants the
    dictionary has never interned simply yield no successors.
    """
    lookup = graph.dictionary.lookup
    if isinstance(path, LinkPath):
        pid = lookup(path.iri)
        if pid is None:
            return lambda node, tick: ()
        object_ids = graph.object_ids
        return lambda node, tick: object_ids(node, pid)
    if isinstance(path, InversePath):
        inner = path.path
        if isinstance(inner, NegatedPath):
            # ^!(...) traverses the negated set's matching edges in reverse;
            # member-set swapping cannot express this (``!()`` matches every
            # forward edge, so ``^!()`` must match every reversed edge).
            forward_ids = {lookup(iri) for iri in inner.forward}
            forward_ids.discard(None)
            inverse_ids = {lookup(iri) for iri in inner.inverse}
            inverse_ids.discard(None)
            match_forward = inner.match_forward
            match_inverse = inner.match_inverse
            triples_ids = graph.triples_ids

            def inverse_negated_step(node, tick):
                out = set()
                if match_forward:
                    for subject, predicate, _ in triples_ids(None, None, node):
                        tick()
                        if predicate not in forward_ids:
                            out.add(subject)
                if match_inverse:
                    for _, predicate, obj in triples_ids(node, None, None):
                        tick()
                        if predicate not in inverse_ids:
                            out.add(obj)
                return out

            return inverse_negated_step
        if not isinstance(inner, LinkPath):  # pragma: no cover - normalize_path
            return _compile_step(graph, normalize_path(path))
        pid = lookup(inner.iri)
        if pid is None:
            return lambda node, tick: ()
        subject_ids = graph.subject_ids
        return lambda node, tick: subject_ids(pid, node)
    if isinstance(path, SequencePath):
        steps = [_compile_step(graph, step) for step in path.steps]

        def seq_step(node, tick):
            frontier = {node}
            for step in steps:
                successors = set()
                for member in frontier:
                    tick()
                    successors.update(step(member, tick))
                frontier = successors
                if not frontier:
                    break
            return frontier

        return seq_step
    if isinstance(path, AlternativePath):
        branches = [_compile_step(graph, alt) for alt in path.alternatives]

        def alt_step(node, tick):
            out = set()
            for branch in branches:
                out.update(branch(node, tick))
            return out

        return alt_step
    if isinstance(path, MulPath):
        inner = _compile_step(graph, path.path)
        modifier = path.modifier

        def mul_step(node, tick):
            out = set()
            if modifier in ("*", "?"):
                out.add(node)
            if modifier == "?":
                out.update(inner(node, tick))
                return out
            seen = set()
            frontier = [node]
            while frontier:
                next_frontier = []
                for member in frontier:
                    tick()
                    for successor in inner(member, tick):
                        if successor not in seen:
                            seen.add(successor)
                            next_frontier.append(successor)
                frontier = next_frontier
            out.update(seen)
            return out

        return mul_step
    if isinstance(path, NegatedPath):
        forward_ids = {lookup(iri) for iri in path.forward}
        forward_ids.discard(None)
        inverse_ids = {lookup(iri) for iri in path.inverse}
        inverse_ids.discard(None)
        match_forward = path.match_forward
        match_inverse = path.match_inverse
        triples_ids = graph.triples_ids

        def negated_step(node, tick):
            out = set()
            if match_forward:
                for _, predicate, obj in triples_ids(node, None, None):
                    tick()
                    if predicate not in forward_ids:
                        out.add(obj)
            if match_inverse:
                for subject, predicate, _ in triples_ids(None, None, node):
                    tick()
                    if predicate not in inverse_ids:
                        out.add(subject)
            return out

        return negated_step
    raise QueryError(f"unsupported path expression {type(path).__name__}")


class _CompiledClosure:
    """A ``*``/``+``/``?`` closure compiled to id-space step functions.

    ``forward`` applies the inner path once subject→object; ``backward``
    applies the structural inverse (used when only the object endpoint is
    bound, so the BFS can run object→subject over the POS index instead of
    enumerating the node universe).
    """

    __slots__ = ("forward", "backward")

    def __init__(self, graph: Graph, element: ClosurePattern) -> None:
        path = normalize_path(element.path)
        self.forward = _compile_step(graph, path)
        self.backward = _compile_step(graph, normalize_path(invert_path(path)))


class _CompiledNegated:
    """A negated property set compiled to excluded-predicate id sets."""

    __slots__ = ("forward_ids", "inverse_ids", "match_forward", "match_inverse")

    def __init__(self, graph: Graph, element: NegatedPathPattern) -> None:
        lookup = graph.dictionary.lookup
        path = element.path
        self.forward_ids = {lookup(iri) for iri in path.forward}
        self.forward_ids.discard(None)
        self.inverse_ids = {lookup(iri) for iri in path.inverse}
        self.inverse_ids.discard(None)
        self.match_forward = path.match_forward
        self.match_inverse = path.match_inverse


class _PlanState:
    """Compiled artifacts bound to one (graph identity, epoch, statistics
    epoch, optimize flag) target: compiled BGPs/closures/negated sets and
    cost-ordered group element lists."""

    __slots__ = ("graph_ref", "compiled")

    def __init__(self, graph: Graph) -> None:
        self.graph_ref = weakref.ref(graph)
        self.compiled: Dict[int, _CompiledBGP] = {}


class QueryPlan:
    """Reusable compilation state for one parsed query.

    Maps BGP nodes (by identity — the plan lives next to its AST in the
    endpoint's cache) to their compiled form, *per evaluation target*:
    :meth:`state_for` hands each evaluator the compiled-BGP store bound to
    its exact (graph object, mutation epoch, join-optimization flag), so a
    cached plan can never serve ids or join orders compiled under different
    conditions.

    Keying by target makes the plan safe under concurrency: two readers
    evaluating the same cached query against *different* pinned snapshots
    (e.g. across a writer's commit) get independent compiled state instead
    of clobbering one shared dict — the stale-plan race the differential
    concurrency suite checks for.  Graphs are held via weakref and verified
    by identity, so a recycled ``id()`` can never alias a dead graph's
    compiled ids.  A handful of states is retained LRU-style; with per-epoch
    snapshot caching the steady state is one live entry per target graph.
    """

    __slots__ = ("_lock", "_states")

    #: Retained (graph, epoch, flag) states; evicted oldest-first.
    MAX_STATES = 4

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._states: "OrderedDict[Tuple, _PlanState]" = OrderedDict()

    def state_for(self, graph: Graph, optimize_joins: bool) -> _PlanState:
        """The compiled-BGP store for exactly this graph object and epoch.

        The key also carries the graph's *statistics epoch*: cost-based
        join orders are a function of the optimizer statistics, so a
        statistics refresh must invalidate cached orderings even if it were
        ever decoupled from the triple-set mutation counter.
        """
        key = (id(graph), graph.epoch,
               getattr(graph, "stats_epoch", None), optimize_joins)
        with self._lock:
            state = self._states.get(key)
            if state is not None and state.graph_ref() is graph:
                self._states.move_to_end(key)
                return state
            state = _PlanState(graph)
            self._states[key] = state
            self._states.move_to_end(key)
            while len(self._states) > self.MAX_STATES:
                self._states.popitem(last=False)
            return state


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------

class QueryEvaluator:
    """Evaluates parsed SPARQL queries against a graph (or dataset)."""

    def __init__(self, graph: Graph, udfs: Optional[UDFRegistry] = None,
                 optimize_joins: bool = True,
                 plan: Optional[QueryPlan] = None,
                 execution: Optional[ExecutionContext] = None) -> None:
        self.graph = graph
        self.udfs = udfs or UDFRegistry()
        self.optimize_joins = optimize_joins
        self.plan = plan
        #: Cooperative-interruption state; ``None`` runs unguarded (the
        #: legacy embedded path pays zero per-row overhead).
        self.execution = execution
        #: Resolved lazily on first BGP: the plan's compiled store for this
        #: exact (graph, epoch) target.
        self._plan_state: Optional[Dict[int, _CompiledBGP]] = None
        self.context = EvaluationContext(udfs=self.udfs,
                                         exists_evaluator=self._evaluate_exists)
        #: Number of triple-pattern index lookups performed (for benchmarks).
        self.pattern_lookups = 0

    # -- public API ---------------------------------------------------------
    def evaluate(self, query: Query):
        if isinstance(query, SelectQuery):
            return self.evaluate_select(query)
        if isinstance(query, AskQuery):
            return self.evaluate_ask(query)
        if isinstance(query, ConstructQuery):
            return self.evaluate_construct(query)
        raise QueryError(f"unsupported query type {type(query).__name__}")

    def evaluate_select(self, query: SelectQuery) -> ResultSet:
        variables, solutions = self.stream_select(query)
        return ResultSet(variables, solutions)

    def stream_select(self, query: SelectQuery
                      ) -> Tuple[List[Variable], Iterator[Solution]]:
        """Evaluate a SELECT lazily: ``(variables, unconsumed row iterator)``.

        The returned iterator is the suspension point for time-sliced
        scheduling: the consumer can stop pulling rows mid-query and resume
        later with all generator cursor state intact.  Materialising
        operators (GROUP BY / aggregates / ORDER BY / SELECT ``*``) cannot
        be sliced — they drain their input eagerly when the iterator is
        first pulled, under the execution context's deadline/cancellation
        checkpoints.
        """
        project_hint = self._projection_hint(query)
        if project_hint is not None:
            # Single-BGP bare-variable SELECT: the join emits rows that
            # already carry exactly the projected variables, so the
            # projection step below reduces to an identity pass.
            solutions: Iterable[Solution] = self._stream_bgp(
                query.where.elements[0], iter((Solution(),)),
                project=project_hint)
        else:
            solutions = self._evaluate_group(query.where, iter((Solution(),)))
        # One guarded checkpoint per row leaving the lazy pattern pipeline:
        # everything downstream (grouping, sort, projection) inherits
        # interruptibility from it while it drains.
        solutions = self._guard(solutions)
        solutions = self._apply_grouping(query, solutions)
        solutions = self._apply_order(query, solutions)
        variables, solutions = self._apply_projection(query, solutions)
        if query.distinct or query.reduced:
            solutions = self._distinct(solutions, variables)
        solutions = self._apply_slice(query, solutions)
        return variables, self._count_rows(solutions)

    def _guard(self, solutions: Iterable[Solution]) -> Iterable[Solution]:
        """Checkpoint the execution context once per row pulled."""
        context = self.execution
        if context is None:
            return solutions
        checkpoint = context.checkpoint

        def guarded() -> Iterator[Solution]:
            for solution in solutions:
                checkpoint()
                yield solution

        return guarded()

    def _count_rows(self, solutions: Iterable[Solution]) -> Iterable[Solution]:
        """Account final result rows on the execution context."""
        context = self.execution
        if context is None:
            return solutions
        count_row = context.count_row

        def counted() -> Iterator[Solution]:
            for solution in solutions:
                count_row()
                yield solution

        return counted()

    @staticmethod
    def _projection_hint(query: SelectQuery) -> Optional[frozenset]:
        """The set of variables a single-BGP bare SELECT actually needs.

        Safe only when nothing downstream of the BGP (ORDER BY, GROUP BY,
        HAVING, other group elements, expression projections) could read a
        variable the projection drops.
        """
        if (query.select_all or query.order_by or query.group_by
                or query.having):
            return None
        if len(query.where.elements) != 1 or not isinstance(
                query.where.elements[0], BGP):
            return None
        for item in query.select_items:
            if not isinstance(item.expression, VariableExpr) or item.alias is not None:
                return None
        return frozenset(item.expression.variable for item in query.select_items)

    def evaluate_ask(self, query: AskQuery) -> bool:
        # Consume a single solution from the pipeline, then stop.
        for _ in self._guard(self._evaluate_group(query.where,
                                                  iter((Solution(),)))):
            return True
        return False

    def evaluate_construct(self, query: ConstructQuery) -> Graph:
        solutions = self._guard(
            self._evaluate_group(query.where, iter((Solution(),))))
        if query.limit is not None:
            solutions = islice(solutions, query.limit)
        result = Graph(namespaces=self.graph.namespaces.copy())
        for solution in solutions:
            for template in query.template:
                triple = _instantiate(template, solution)
                if triple is not None and triple.is_ground():
                    result.add(triple)
        return result

    # -- group pattern evaluation -------------------------------------------
    def _group_elements(self, group: GroupPattern) -> Sequence:
        """The group's elements in cost order (cached per plan target).

        Contiguous runs of join-commutative elements (BGPs, path patterns,
        closures, negated property sets) are reordered smallest-estimated-
        cardinality-first with bound-variable propagation, so e.g. an
        unanchored transitive closure runs after the patterns that bind one
        of its endpoints.  FILTER / OPTIONAL / MINUS / BIND / VALUES / UNION
        / sub-SELECT elements never move.  The ordering is cached in the
        plan store under the *group's* identity (disjoint from the BGP /
        closure entries, which key their own AST nodes).
        """
        elements = group.elements
        if not self.optimize_joins or len(elements) < 2:
            return elements
        store = self._plan_store()
        if store is not None:
            ordered = store.get(id(group))
            if ordered is not None:
                return ordered
        ordered = reorder_group_elements(self.graph, elements)
        if store is not None:
            store[id(group)] = ordered
        return ordered

    def _evaluate_group(self, group: GroupPattern,
                        solutions: Iterator[Solution]) -> Iterator[Solution]:
        """Chain one lazy operator per group element over ``solutions``."""
        stream = solutions
        for element in self._group_elements(group):
            if isinstance(element, BGP):
                stream = self._stream_bgp(element, stream)
            elif isinstance(element, PathPattern):
                stream = self._stream_path(element, stream)
            elif isinstance(element, ClosurePattern):
                stream = self._stream_closure(element, stream)
            elif isinstance(element, NegatedPathPattern):
                stream = self._stream_negated(element, stream)
            elif isinstance(element, FilterPattern):
                stream = self._stream_filter(element.expression, stream)
            elif isinstance(element, OptionalPattern):
                stream = self._stream_optional(element, stream)
            elif isinstance(element, UnionPattern):
                stream = self._stream_union(element, stream)
            elif isinstance(element, MinusPattern):
                stream = self._stream_minus(element, stream)
            elif isinstance(element, BindPattern):
                stream = self._stream_bind(element, stream)
            elif isinstance(element, ValuesPattern):
                stream = self._stream_values(element, stream)
            elif isinstance(element, SubSelectPattern):
                stream = self._stream_subselect(element, stream)
            else:  # pragma: no cover - defensive
                raise QueryError(f"unsupported pattern element {type(element).__name__}")
        return stream

    # -- BGP compilation ----------------------------------------------------
    def _plan_store(self) -> Optional[Dict[int, object]]:
        """The plan's compiled-pattern store for this (graph, epoch) target.

        Shared by BGPs, closures and negated-set patterns: entries are keyed
        by AST-node identity, and the store itself is keyed by (graph object,
        mutation epoch), so every compiled artifact is epoch-invalidated the
        same way.
        """
        store = self._plan_state
        if store is None and self.plan is not None:
            store = self._plan_state = self.plan.state_for(
                self.graph, self.optimize_joins).compiled
        return store

    def _compiled_bgp(self, bgp: BGP) -> _CompiledBGP:
        store = self._plan_store()
        if store is not None:
            compiled = store.get(id(bgp))
            if compiled is not None:
                return compiled
        compiled = self._compile_bgp(bgp)
        if store is not None:
            # Concurrent evaluators may both compile the same BGP; either
            # result is correct for this (graph, epoch) and the dict write
            # is atomic, so last-writer-wins is benign.
            store[id(bgp)] = compiled
        return compiled

    def _compiled_closure(self, element: ClosurePattern) -> _CompiledClosure:
        store = self._plan_store()
        if store is not None:
            compiled = store.get(id(element))
            if compiled is not None:
                return compiled
        compiled = _CompiledClosure(self.graph, element)
        if store is not None:
            store[id(element)] = compiled
        return compiled

    def _compiled_negated(self, element: NegatedPathPattern) -> _CompiledNegated:
        store = self._plan_store()
        if store is not None:
            compiled = store.get(id(element))
            if compiled is not None:
                return compiled
        compiled = _CompiledNegated(self.graph, element)
        if store is not None:
            store[id(element)] = compiled
        return compiled

    def _compile_bgp(self, bgp: BGP) -> _CompiledBGP:
        graph = self.graph
        patterns = list(bgp.triples)
        if self.optimize_joins and len(patterns) > 1:
            patterns = reorder_patterns(graph, patterns)
        lookup = graph.dictionary.lookup
        var_slots: Dict[Variable, int] = {}
        specs = []
        empty = False
        for pattern in patterns:
            spec = []
            for term in pattern:
                if isinstance(term, Variable):
                    slot = var_slots.setdefault(term, len(var_slots))
                    spec.append((None, slot))
                else:
                    term_id = lookup(term)
                    if term_id is None:
                        # Constant never stored: the whole BGP is empty.
                        empty = True
                    spec.append((term_id, None))
            specs.append(tuple(spec))
        if self.optimize_joins and not empty and len(specs) > 1:
            kept, intersectors = _fold_intersectors(specs)
            return _CompiledBGP(tuple(kept), var_slots, empty,
                                tuple(intersectors))
        return _CompiledBGP(tuple(specs), var_slots, empty)

    # -- streaming operators -------------------------------------------------
    def _stream_bgp(self, bgp: BGP, solutions: Iterator[Solution],
                    project: Optional[frozenset] = None) -> Iterator[Solution]:
        compiled = self._compiled_bgp(bgp)
        if compiled.empty:
            return
        graph = self.graph
        dictionary = graph.dictionary
        lookup = dictionary.lookup
        decode = dictionary.decode
        triples_ids = graph.triples_ids
        specs = compiled.specs
        num_patterns = len(specs)
        last_level = num_patterns - 1
        seed_items = tuple(compiled.var_slots.items())
        # Emitted rows carry every BGP variable unless a projection hint
        # restricts them (single-BGP SELECT fast path).
        slot_items = seed_items if project is None else tuple(
            item for item in seed_items if item[0] in project)
        slot_vars = compiled.slot_vars
        lookups = 0
        execution = self.execution
        checkpoint = execution.checkpoint if execution is not None else None
        # Amortised interruption ticks shared by both hot loops (the
        # backtracking join and the generic leaf scan): one checkpoint call
        # per 256 iterations keeps the per-iteration cost to an increment
        # and a bitmask test.
        ticks = 0

        # Iterative index-nested-loop join (one frame, no recursion): per
        # level we keep the running scan, the slots that were unbound when
        # the scan started, and the slots bound by the scan element being
        # explored.  The per-level state and the closures below are shared
        # across input solutions; the backtracking loop leaves every
        # `pending` entry cleared on exit, so no reset between solutions is
        # needed beyond re-seeding `env`.
        env: List[Optional[int]] = [None] * compiled.num_slots
        scans = [None] * num_patterns
        unbound = [()] * num_patterns
        pending = [()] * num_patterns
        # For levels with exactly one unbound slot the scan iterates the
        # completing index set directly (ids, no triple tuples);
        # single_slot[level] records which slot those ids bind.
        single_slot = [None] * num_patterns

        def resolve(level: int):
            """Resolve pattern ``level`` under ``env``: (s, p, o, unbound)."""
            (s_const, s_slot), (p_const, p_slot), (o_const, o_slot) = specs[level]
            s = s_const if s_slot is None else env[s_slot]
            p = p_const if p_slot is None else env[p_slot]
            o = o_const if o_slot is None else env[o_slot]
            unb = []
            if s_slot is not None and s is None:
                unb.append((0, s_slot))
            if p_slot is not None and p is None:
                unb.append((1, p_slot))
            if o_slot is not None and o is None:
                unb.append((2, o_slot))
            return s, p, o, unb

        def direct_values(s, p, o, position: int):
            """The index set completing a pattern with one unbound position."""
            if position == 2:
                return graph.object_ids(s, p)
            if position == 0:
                return graph.subject_ids(p, o)
            return graph.predicate_ids(s, o)

        intersectors = compiled.intersectors
        contains_ids = graph.contains_ids

        def resolve_ground(ispec):
            """Resolve a folded spec under ``env`` (join component → None)."""
            (s_const, s_slot), (p_const, p_slot), (o_const, o_slot) = ispec
            return (s_const if s_slot is None else env[s_slot],
                    p_const if p_slot is None else env[p_slot],
                    o_const if o_slot is None else env[o_slot])

        def intersect_values(level: int, values):
            """Narrow a level's candidate id set by its folded patterns.

            One ``set & set`` per folded pattern replaces one index probe
            per candidate per pattern inside the join loop.  Intersection
            allocates a fresh set every time — the stored index sets the
            graph hands out are never mutated.  Interruption cost is
            charged batch-at-a-time: one checkpoint call carries the whole
            intersection's work amount, keeping deadline/cancel latency
            bounded by a single batch instead of ticking per element.
            """
            for ispec, position in intersectors[level]:
                if not values:
                    break
                s, p, o = resolve_ground(ispec)
                probe = direct_values(s, p, o, position)
                if not probe:
                    return ()
                if checkpoint is not None:
                    checkpoint(min(len(values), len(probe)))
                values = values & probe
            return values

        def intersectors_hold(level: int) -> bool:
            """Folded patterns as ground containment probes.

            Taken when the level's join variable arrived pre-bound at
            runtime (seeded by the input solution), so there is no
            candidate set to intersect — each folded pattern is fully
            ground and holds iff the store contains its triple.
            """
            for ispec, _ in intersectors[level]:
                s, p, o = resolve_ground(ispec)
                if checkpoint is not None:
                    checkpoint(1)
                if not contains_ids(s, p, o):
                    return False
            return True

        def start_scan(level: int) -> None:
            s, p, o, unb = resolve(level)
            if len(unb) == 1:
                position, slot = unb[0]
                single_slot[level] = slot
                values = direct_values(s, p, o, position)
                if intersectors[level]:
                    values = intersect_values(level, values)
                scans[level] = iter(values)
                return
            single_slot[level] = None
            unbound[level] = unb
            if intersectors[level] and not unb \
                    and not intersectors_hold(level):
                scans[level] = iter(())
                return
            scans[level] = triples_ids(s, p, o)

        def emit_leaf(solution: Solution) -> Iterator[Solution]:
            """Resolve the innermost pattern under ``env`` and emit one
            decoded row per match.

            With a single unbound slot the completing ids come straight off
            an index set (no triple tuples), and the invariant part of each
            row is prebuilt once — the per-id work is one dict copy (which
            reuses cached key hashes) plus one insert.
            """
            s, p, o, unb = resolve(last_level)
            if len(unb) == 1:
                position, leaf_slot = unb[0]
                values = direct_values(s, p, o, position)
                if intersectors[last_level]:
                    values = intersect_values(last_level, values)
                if not values:
                    return
                base = Solution(solution)
                for var, slot in slot_items:
                    if slot != leaf_slot:
                        base[var] = decode(env[slot])
                leaf_var = slot_vars[leaf_slot]
                if project is not None and leaf_var not in project:
                    # Projection drops the leaf variable: emit one
                    # (duplicate) row per match, multiset semantics.
                    yield base
                    for _ in range(len(values) - 1):
                        yield Solution(base)
                    return
                if len(values) == 1:
                    # base is not reused: bind in place, skip the copy.
                    for value in values:
                        base[leaf_var] = decode(value)
                    yield base
                    return
                for value in values:
                    row = Solution(base)
                    row[leaf_var] = decode(value)
                    yield row
                return
            # Zero unbound slots (containment probe) or two/three unbound
            # slots (possibly a repeated variable): generic scan, binding
            # and undoing slots per element.  This is where a cross-product
            # adversary spends its life, so it ticks the amortised
            # checkpoint.  A leaf with folded patterns can only land here
            # fully ground (its join variable was seeded): the folds become
            # containment probes.
            nonlocal ticks
            if intersectors[last_level] and not intersectors_hold(last_level):
                return
            for triple_ids_row in triples_ids(s, p, o):
                ticks += 1
                if checkpoint is not None and not ticks & 255:
                    checkpoint(256)
                bound_here = []
                compatible = True
                for position, slot in unb:
                    value = triple_ids_row[position]
                    current = env[slot]
                    if current is None:
                        env[slot] = value
                        bound_here.append(slot)
                    elif current != value:
                        compatible = False
                        break
                if compatible:
                    row = Solution(solution)
                    for var, slot in slot_items:
                        row[var] = decode(env[slot])
                    yield row
                for slot in bound_here:
                    env[slot] = None

        try:
            for solution in solutions:
                for index in range(compiled.num_slots):
                    env[index] = None
                dead = False
                for var, slot in seed_items:
                    term = solution.get(var)
                    if term is not None:
                        term_id = lookup(term)
                        if term_id is None:
                            # Bound to a term the store has never seen: the
                            # conjunction cannot match for this solution.
                            dead = True
                            break
                        env[slot] = term_id
                if dead:
                    continue
                if num_patterns == 0:
                    yield Solution(solution)
                    continue
                if num_patterns == 1:
                    lookups += 1
                    yield from emit_leaf(solution)
                    continue

                lookups += 1
                start_scan(0)
                level = 0
                while level >= 0:
                    ticks += 1
                    if checkpoint is not None and not ticks & 255:
                        checkpoint(256)
                    # Undo bindings from the element previously explored at
                    # this level before pulling the next one.
                    for slot in pending[level]:
                        env[slot] = None
                    pending[level] = ()
                    item = next(scans[level], None)
                    if item is None:
                        level -= 1
                        continue
                    slot = single_slot[level]
                    if slot is not None:
                        # Direct index-set scan: item is the completing id.
                        env[slot] = item
                        pending[level] = (slot,)
                    else:
                        compatible = True
                        unb = unbound[level]
                        if unb:
                            bound_here = []
                            for position, bind_slot in unb:
                                value = item[position]
                                current = env[bind_slot]
                                if current is None:
                                    env[bind_slot] = value
                                    bound_here.append(bind_slot)
                                elif current != value:
                                    # Same variable twice in one pattern bound
                                    # to two different values by this triple.
                                    compatible = False
                                    break
                            pending[level] = bound_here
                        if not compatible:
                            continue
                    lookups += 1
                    if level == last_level - 1:
                        yield from emit_leaf(solution)
                    else:
                        level += 1
                        start_scan(level)
        finally:
            self.pattern_lookups += lookups

    # -- property paths ------------------------------------------------------
    def _stream_path(self, element: PathPattern,
                     solutions: Iterator[Solution]) -> Iterator[Solution]:
        """Evaluate a property-path pattern by lowering it to plain algebra.

        ``seq``/``alt``/``inv`` become BGPs and unions (compiled and cached
        like any other), ``*``/``+``/``?`` become closure iterators and
        ``!(...)`` a negated-set scan.  Fresh join variables introduced by
        the rewrite are stripped from emitted rows so they can never leak
        into projections (``SELECT *`` discovers variables from rows).
        """
        group, fresh = rewrite_path_pattern(element)
        stream = self._evaluate_group(group, solutions)
        if not fresh:
            return stream

        def stripped() -> Iterator[Solution]:
            for row in stream:
                present = [var for var in fresh if var in row]
                if present:
                    row = Solution(row)
                    for var in present:
                        del row[var]
                yield row

        return stripped()

    def _stream_closure(self, element: ClosurePattern,
                        solutions: Iterator[Solution]) -> Iterator[Solution]:
        """Streaming id-space BFS closure (``path*`` / ``path+`` / ``path?``).

        Per the SPARQL 1.1 ALP semantics each input solution contributes
        every *distinct* endpoint pair once; a bound subject runs a forward
        BFS over the SPO index, a bound object a backward BFS over POS via
        the inverted path, and two unbound endpoints enumerate the node
        universe.  Zero-length paths (``*``/``?``) match a bound endpoint
        even when the term is absent from the graph.  The frontier loop
        ticks the execution context's amortised checkpoint, so closures over
        cycle-heavy graphs honor deadline/cancel/budget and can be sliced by
        the scheduler.
        """
        compiled = self._compiled_closure(element)
        graph = self.graph
        dictionary = graph.dictionary
        lookup = dictionary.lookup
        decode = dictionary.decode
        execution = self.execution
        checkpoint = execution.checkpoint if execution is not None else None
        ticks = 0

        def tick() -> None:
            nonlocal ticks
            ticks += 1
            if checkpoint is not None and not ticks & 255:
                checkpoint(256)

        modifier = element.modifier
        subject = element.subject
        object_ = element.object
        s_is_var = isinstance(subject, Variable)
        o_is_var = isinstance(object_, Variable)
        same_var = s_is_var and o_is_var and subject is object_

        def directed(step, solution: Solution, start_term: Term,
                     end_term: Optional[Term],
                     bind_var: Optional[Variable]) -> Iterator[Solution]:
            """Emit pairs from a closure anchored at ``start_term``."""
            start_id = lookup(start_term)
            end_id = None
            if modifier in ("*", "?"):
                # Zero-length path: the bound endpoint matches itself even
                # when the term does not occur in the graph.
                if end_term is not None:
                    if end_term == start_term:
                        yield Solution(solution)
                else:
                    row = Solution(solution)
                    row[bind_var] = start_term
                    yield row
            if start_id is None:
                return  # unknown term: no edges, zero-length handled above
            if end_term is not None:
                end_id = lookup(end_term)
                if end_id is None:
                    return
            if modifier == "?":
                seen = set()
                for successor in step(start_id, tick):
                    tick()
                    if successor in seen:
                        continue
                    seen.add(successor)
                    if successor == start_id:
                        continue  # (x, x) already emitted as zero-length
                    if end_id is not None:
                        if successor == end_id:
                            yield Solution(solution)
                            return
                    else:
                        row = Solution(solution)
                        row[bind_var] = decode(successor)
                        yield row
                return
            skip_start = modifier == "*"
            seen = set()
            frontier = [start_id]
            while frontier:
                next_frontier = []
                for node in frontier:
                    tick()
                    for successor in step(node, tick):
                        tick()
                        if successor in seen:
                            continue
                        seen.add(successor)
                        next_frontier.append(successor)
                        if skip_start and successor == start_id:
                            continue  # zero-length pair already emitted
                        if end_id is not None:
                            if successor == end_id:
                                yield Solution(solution)
                                return
                        else:
                            row = Solution(solution)
                            row[bind_var] = decode(successor)
                            yield row
                frontier = next_frontier

        def unbound_pairs(solution: Solution) -> Iterator[Solution]:
            """Both endpoints unbound: every node of the graph is a start."""
            step = compiled.forward
            for node in self._node_ids(graph):
                tick()
                if modifier in ("*", "?"):
                    term = decode(node)
                    row = Solution(solution)
                    row[subject] = term
                    if not same_var:
                        row[object_] = term
                    yield row
                if modifier == "?":
                    seen = set()
                    for successor in step(node, tick):
                        tick()
                        if successor in seen or successor == node:
                            continue
                        seen.add(successor)
                        if same_var:
                            continue  # needs successor == node, emitted above
                        row = Solution(solution)
                        row[subject] = decode(node)
                        row[object_] = decode(successor)
                        yield row
                    continue
                seen = set()
                frontier = [node]
                while frontier:
                    next_frontier = []
                    for member in frontier:
                        tick()
                        for successor in step(member, tick):
                            tick()
                            if successor in seen:
                                continue
                            seen.add(successor)
                            next_frontier.append(successor)
                            if modifier == "*" and successor == node:
                                continue  # zero-length pair already emitted
                            if same_var:
                                if successor == node:
                                    row = Solution(solution)
                                    row[subject] = decode(node)
                                    yield row
                                continue
                            row = Solution(solution)
                            row[subject] = decode(node)
                            row[object_] = decode(successor)
                            yield row
                    frontier = next_frontier

        for solution in solutions:
            if checkpoint is not None:
                checkpoint()
            s_term = solution.get(subject) if s_is_var else subject
            o_term = solution.get(object_) if o_is_var else object_
            if s_term is not None:
                yield from directed(compiled.forward, solution, s_term, o_term,
                                    object_ if o_term is None else None)
            elif o_term is not None:
                yield from directed(compiled.backward, solution, o_term, None,
                                    subject)
            else:
                yield from unbound_pairs(solution)

    def _stream_negated(self, element: NegatedPathPattern,
                        solutions: Iterator[Solution]) -> Iterator[Solution]:
        """Negated property set: scan edges whose predicate is not excluded.

        Bag semantics (one row per matching triple per direction), matching
        the SPARQL 1.1 definition where ``!(...)`` is an edge step, not a
        closure.
        """
        compiled = self._compiled_negated(element)
        graph = self.graph
        dictionary = graph.dictionary
        lookup = dictionary.lookup
        decode = dictionary.decode
        triples_ids = graph.triples_ids
        execution = self.execution
        checkpoint = execution.checkpoint if execution is not None else None
        ticks = 0
        subject = element.subject
        object_ = element.object
        s_is_var = isinstance(subject, Variable)
        o_is_var = isinstance(object_, Variable)
        same_var = s_is_var and o_is_var and subject is object_
        forward_ids = compiled.forward_ids
        inverse_ids = compiled.inverse_ids

        for solution in solutions:
            if checkpoint is not None:
                checkpoint()
            s_term = solution.get(subject) if s_is_var else subject
            o_term = solution.get(object_) if o_is_var else object_
            s_id = lookup(s_term) if s_term is not None else None
            o_id = lookup(o_term) if o_term is not None else None
            if (s_term is not None and s_id is None) or \
                    (o_term is not None and o_id is None):
                continue  # bound to a term the store has never seen
            if compiled.match_forward:
                for s, predicate, o in triples_ids(s_id, None, o_id):
                    ticks += 1
                    if checkpoint is not None and not ticks & 255:
                        checkpoint(256)
                    if predicate in forward_ids:
                        continue
                    if same_var and s != o:
                        continue
                    row = Solution(solution)
                    if s_term is None:
                        row[subject] = decode(s)
                    if o_term is None and not same_var:
                        row[object_] = decode(o)
                    yield row
            if compiled.match_inverse:
                # The path matches (s, o) when a triple (o, p, s) exists
                # with p outside the inverse exclusion set.
                for o, predicate, s in triples_ids(o_id, None, s_id):
                    ticks += 1
                    if checkpoint is not None and not ticks & 255:
                        checkpoint(256)
                    if predicate in inverse_ids:
                        continue
                    if same_var and s != o:
                        continue
                    row = Solution(solution)
                    if s_term is None:
                        row[subject] = decode(s)
                    if o_term is None and not same_var:
                        row[object_] = decode(o)
                    yield row

    @staticmethod
    def _node_ids(graph: Graph):
        """All subject/object ids of the graph (the RDF 'node' universe)."""
        node_ids = getattr(graph, "node_ids", None)
        if node_ids is not None:
            return node_ids()
        out = set()
        for s, _, o in graph.triples_ids(None, None, None):
            out.add(s)
            out.add(o)
        return out

    def _stream_filter(self, expression: Expression,
                       solutions: Iterator[Solution]) -> Iterator[Solution]:
        execution = self.execution
        for solution in solutions:
            if execution is not None:
                execution.checkpoint()
            if effective_boolean_value(
                    evaluate_expression(expression, solution, self.context)):
                yield solution

    def _stream_optional(self, element: OptionalPattern,
                         solutions: Iterator[Solution]) -> Iterator[Solution]:
        execution = self.execution
        for solution in solutions:
            if execution is not None:
                execution.checkpoint()
            matched = False
            for extended in self._evaluate_group(element.pattern, iter((solution,))):
                matched = True
                yield extended
            if not matched:
                yield solution

    def _stream_union(self, element: UnionPattern,
                      solutions: Iterator[Solution]) -> Iterator[Solution]:
        base = list(self._guard(solutions))
        for alternative in element.alternatives:
            yield from self._guard(
                self._evaluate_group(alternative, iter(base)))

    def _stream_minus(self, element: MinusPattern,
                      solutions: Iterator[Solution]) -> Iterator[Solution]:
        execution = self.execution
        excluded = None
        for solution in solutions:
            if execution is not None:
                execution.checkpoint()
            if excluded is None:
                excluded = list(self._guard(
                    self._evaluate_group(element.pattern,
                                         iter((Solution(),)))))
            remove = False
            for other in excluded:
                shared = set(solution) & set(other)
                if shared and all(solution[v] == other[v] for v in shared):
                    remove = True
                    break
            if not remove:
                yield solution

    def _stream_bind(self, element: BindPattern,
                     solutions: Iterator[Solution]) -> Iterator[Solution]:
        execution = self.execution
        for solution in solutions:
            if execution is not None:
                execution.checkpoint()
            value = evaluate_expression(element.expression, solution, self.context)
            extended = Solution(solution)
            if value is not None:
                if element.variable in extended and extended[element.variable] != value:
                    continue
                extended[element.variable] = value
            yield extended

    def _stream_values(self, element: ValuesPattern,
                       solutions: Iterator[Solution]) -> Iterator[Solution]:
        value_solutions: List[Solution] = []
        for row in element.rows:
            sol = Solution()
            for var, term in zip(element.variables, row):
                if term is not None:
                    sol[var] = term
            value_solutions.append(sol)
        execution = self.execution
        for solution in solutions:
            if execution is not None:
                execution.checkpoint()
            for value_sol in value_solutions:
                merged = solution.merged(value_sol)
                if merged is not None:
                    yield merged

    def _stream_subselect(self, element: SubSelectPattern,
                          solutions: Iterator[Solution]) -> Iterator[Solution]:
        execution = self.execution
        sub_result = None
        for solution in solutions:
            if execution is not None:
                execution.checkpoint()
            if sub_result is None:
                sub_result = self.evaluate_select(element.query)
            for sub_sol in sub_result.solutions:
                merged_sol = solution.merged(sub_sol)
                if merged_sol is not None:
                    yield merged_sol

    def _evaluate_exists(self, pattern: GroupPattern, solution: Solution) -> bool:
        # Stop at the first witness instead of materialising every match.
        for _ in self._guard(self._evaluate_group(pattern,
                                                  iter((Solution(solution),)))):
            return True
        return False

    # -- grouping / aggregation ----------------------------------------------
    def _apply_grouping(self, query: SelectQuery,
                        solutions: Iterable[Solution]) -> Iterable[Solution]:
        has_aggregate = any(
            isinstance(item.expression, Aggregate) for item in query.select_items
        )
        if not query.group_by and not has_aggregate:
            return solutions  # passthrough: keep the pipeline lazy
        groups: Dict[Tuple, List[Solution]] = {}
        empty = True
        for solution in solutions:
            empty = False
            key = tuple(
                evaluate_expression(expr, solution, self.context)
                for expr in query.group_by
            )
            groups.setdefault(key, []).append(solution)
        if empty and not query.group_by:
            groups[()] = []
        aggregated: List[Solution] = []
        for key, members in groups.items():
            row = Solution()
            for expr, value in zip(query.group_by, key):
                if isinstance(expr, VariableExpr) and value is not None:
                    row[expr.variable] = value
            for item in query.select_items:
                if isinstance(item.expression, Aggregate):
                    target = item.alias or Variable(f"agg_{len(row)}")
                    value = self._compute_aggregate(item.expression, members)
                    if value is not None:
                        row[target] = value
            aggregated.append(row)
        return aggregated

    def _compute_aggregate(self, aggregate: Aggregate,
                           members: List[Solution]) -> Optional[Term]:
        values: List[Term] = []
        if aggregate.expr is None:
            values = [Literal(1)] * len(members)
        else:
            for member in members:
                value = evaluate_expression(aggregate.expr, member, self.context)
                if value is not None:
                    values.append(value)
        if aggregate.distinct:
            unique: List[Term] = []
            seen = set()
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        name = aggregate.name
        if name == "COUNT":
            return Literal(len(values), datatype=XSD_INTEGER)
        if not values:
            return None
        if name == "SAMPLE":
            return values[0]
        if name == "GROUP_CONCAT":
            return Literal(aggregate.separator.join(str(v) for v in values))
        if name in ("MIN", "MAX"):
            keyed = sorted(values, key=lambda t: (t.sort_key()
                           if not (isinstance(t, Literal) and t.is_numeric())
                           else (2, float(t.lexical))))
            numeric = [v for v in values if isinstance(v, Literal) and v.is_numeric()]
            if numeric and len(numeric) == len(values):
                chosen = min(numeric, key=lambda t: float(t.lexical)) if name == "MIN" \
                    else max(numeric, key=lambda t: float(t.lexical))
                return chosen
            return keyed[0] if name == "MIN" else keyed[-1]
        numbers = [float(v.lexical) for v in values
                   if isinstance(v, Literal) and v.is_numeric()]
        if not numbers:
            return None
        if name == "SUM":
            total = sum(numbers)
            return Literal(int(total)) if float(total).is_integer() else Literal(total)
        if name == "AVG":
            return Literal(sum(numbers) / len(numbers), datatype=XSD_DOUBLE)
        raise QueryError(f"unsupported aggregate {name!r}")

    # -- projection / modifiers ----------------------------------------------
    def _apply_projection(self, query: SelectQuery,
                          solutions: Iterable[Solution]) -> Tuple[List[Variable], Iterable[Solution]]:
        if query.select_all:
            # Variable discovery needs every solution; materialise.
            materialized = list(solutions)
            variables: List[Variable] = []
            for solution in materialized:
                for var in solution:
                    if var not in variables:
                        variables.append(var)
            if not variables:
                variables = query.projected_variables()
            return variables, materialized
        has_aggregate = any(isinstance(item.expression, Aggregate)
                            for item in query.select_items)
        variables = []
        for item in query.select_items:
            try:
                variables.append(item.output_variable)
            except ValueError:
                variables.append(Variable(f"expr{len(variables)}"))
        if has_aggregate:
            # Aggregate queries were materialised during grouping already.
            projected = [self._project_row(variables, query.select_items, solution)
                         for solution in solutions]
            if not query.group_by and not projected:
                projected = [Solution()]
            return variables, projected
        if all(isinstance(item.expression, VariableExpr) and item.alias is None
               for item in query.select_items):
            # Bare-variable projection (the hot case): plain binding copies,
            # no per-row expression dispatch.
            sources = [item.expression.variable for item in query.select_items]
            return variables, self._project_bare(variables, sources, solutions)
        return variables, (
            self._project_row(variables, query.select_items, solution)
            for solution in solutions)

    @staticmethod
    def _project_bare(variables: List[Variable], sources: List[Variable],
                      solutions: Iterable[Solution]) -> Iterator[Solution]:
        pairs = list(zip(variables, sources))
        unique = set(variables)
        width = len(unique)
        for solution in solutions:
            if len(solution) == width and unique.issubset(solution):
                # The solution binds exactly the projected variables:
                # projection is the identity, skip the row rebuild.
                yield solution
                continue
            row = Solution()
            for variable, source in pairs:
                value = solution.get(source)
                if value is not None:
                    row[variable] = value
            yield row

    def _project_row(self, variables: List[Variable],
                     select_items: List[SelectItem],
                     solution: Solution) -> Solution:
        row = Solution()
        for variable, item in zip(variables, select_items):
            if isinstance(item.expression, Aggregate):
                # Aggregates were already folded in during grouping.
                if variable in solution:
                    row[variable] = solution[variable]
                continue
            if isinstance(item.expression, VariableExpr) and item.alias is None:
                value = solution.get(item.expression.variable)
            else:
                value = evaluate_expression(item.expression, solution, self.context)
            if value is not None:
                row[variable] = value
        return row

    def _apply_order(self, query: SelectQuery,
                     solutions: Iterable[Solution]) -> Iterable[Solution]:
        if not query.order_by:
            return solutions

        def order_key(condition, solution: Solution) -> Tuple:
            value = evaluate_expression(condition.expression, solution, self.context)
            if value is None:
                return (0, "")
            if isinstance(value, Literal) and value.is_numeric():
                return (1, float(value.lexical))
            return (2, value.n3())

        # Decorate-sort-undecorate: every sort key is computed exactly once
        # per solution, then stable sorts compose from the last condition to
        # the first (each with its own direction).
        decorated = [
            ([order_key(condition, solution) for condition in query.order_by],
             solution)
            for solution in solutions
        ]
        for index in reversed(range(len(query.order_by))):
            descending = query.order_by[index].descending
            decorated.sort(key=lambda entry: entry[0][index], reverse=descending)
        return [solution for _, solution in decorated]

    def _distinct(self, solutions: Iterable[Solution],
                  variables: Optional[List[Variable]] = None) -> Iterator[Solution]:
        """Lazy hash-based dedup over tuples of projected bindings."""
        seen = set()
        if variables:
            for solution in solutions:
                key = tuple(solution.get(var) for var in variables)
                if key not in seen:
                    seen.add(key)
                    yield solution
        else:
            for solution in solutions:
                key = frozenset(solution.items())
                if key not in seen:
                    seen.add(key)
                    yield solution

    def _apply_slice(self, query: SelectQuery,
                     solutions: Iterable[Solution]) -> Iterable[Solution]:
        start = query.offset or 0
        if query.limit is None and not start:
            return solutions
        end = start + query.limit if query.limit is not None else None
        # islice stops pulling from the pipeline once the page is full, so
        # LIMIT short-circuits the whole scan/join chain upstream.
        return islice(iter(solutions), start, end)

    # -- updates --------------------------------------------------------------
    def apply_update(self, update: Update, dataset: Optional[Dataset] = None) -> int:
        """Apply a single update operation.

        When ``dataset`` is provided, graph-targeted operations (``INSERT INTO
        <g>``, ``GRAPH <g> {}``) go to the corresponding named graph; otherwise
        everything applies to the evaluator's graph.  Returns the number of
        affected triples.
        """
        def target(graph_iri: Optional[IRI]) -> Graph:
            if dataset is not None and graph_iri is not None:
                return dataset.graph(graph_iri)
            if dataset is not None:
                return dataset.default_graph
            return self.graph

        if isinstance(update, InsertDataUpdate):
            graph = target(update.graph)
            return sum(1 for triple in update.triples if graph.add(triple))
        if isinstance(update, DeleteDataUpdate):
            graph = target(update.graph)
            return sum(graph.remove(*triple) for triple in update.triples)
        if isinstance(update, ClearUpdate):
            graph = target(update.graph)
            count = len(graph)
            graph.clear()
            return count
        if isinstance(update, ModifyUpdate):
            # Materialise the WHERE solutions *before* mutating: the lazy
            # pipeline must not keep scanning indexes we are rewriting.
            solutions = list(self._guard(
                self._evaluate_group(update.where, iter((Solution(),)))))
            if self.execution is not None:
                # Last exit before mutation: a deadline or cancellation that
                # trips here aborts with the graph untouched; past this point
                # the update runs to completion, so no reader ever observes a
                # half-applied MODIFY.
                self.execution.checkpoint(0)
            graph = target(update.graph)
            affected = 0
            for solution in solutions:
                for template in update.delete_template:
                    triple = _instantiate(template, solution)
                    if triple is not None and triple.is_ground():
                        affected += graph.remove(*triple)
                for template in update.insert_template:
                    triple = _instantiate(template, solution)
                    if triple is not None and triple.is_ground():
                        if graph.add(triple):
                            affected += 1
            return affected
        raise UpdateError(f"unsupported update type {type(update).__name__}")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _instantiate(pattern: TriplePattern, solution: Solution) -> Optional[Triple]:
    """Substitute bindings into a triple template; None when a var is unbound."""
    terms = []
    for term in pattern:
        if isinstance(term, Variable):
            value = solution.get(term)
            if value is None:
                return None
            terms.append(value)
        else:
            terms.append(term)
    return Triple(*terms)
