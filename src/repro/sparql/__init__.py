"""SPARQL engine substrate (parser, evaluator, endpoint, UDF registry)."""

from repro.sparql.tokenizer import Token, tokenize
from repro.sparql.parser import SPARQLParser, parse, parse_query, parse_update
from repro.sparql.ast import (
    AlternativePath,
    ClosurePattern,
    InversePath,
    LinkPath,
    MulPath,
    NegatedPath,
    NegatedPathPattern,
    PathExpr,
    PathPattern,
    SequencePath,
)
from repro.sparql.paths import (
    invert_path,
    is_fresh_path_variable,
    normalize_path,
    rewrite_path_pattern,
)
from repro.sparql.serializer import serialize_path, serialize_query
from repro.sparql.evaluator import (
    QueryEvaluator,
    QueryPlan,
    estimate_pattern_cardinality,
    reorder_patterns,
)
from repro.sparql.execution import ExecutionContext, StreamingResult
from repro.sparql.reference import ReferenceQueryEvaluator
from repro.sparql.functions import (
    EvaluationContext,
    OpaqueValue,
    UDFRegistry,
    effective_boolean_value,
    evaluate_expression,
)
from repro.sparql.results import ResultSet, Solution
from repro.sparql.endpoint import (
    PlanCache,
    QueryStatistics,
    SPARQLEndpoint,
    explain_group,
)

__all__ = [
    "Token",
    "tokenize",
    "SPARQLParser",
    "parse",
    "parse_query",
    "parse_update",
    "PathExpr",
    "LinkPath",
    "InversePath",
    "SequencePath",
    "AlternativePath",
    "MulPath",
    "NegatedPath",
    "PathPattern",
    "ClosurePattern",
    "NegatedPathPattern",
    "invert_path",
    "normalize_path",
    "rewrite_path_pattern",
    "is_fresh_path_variable",
    "serialize_path",
    "serialize_query",
    "explain_group",
    "QueryEvaluator",
    "QueryPlan",
    "ExecutionContext",
    "StreamingResult",
    "ReferenceQueryEvaluator",
    "estimate_pattern_cardinality",
    "reorder_patterns",
    "EvaluationContext",
    "OpaqueValue",
    "UDFRegistry",
    "effective_boolean_value",
    "evaluate_expression",
    "ResultSet",
    "Solution",
    "PlanCache",
    "QueryStatistics",
    "SPARQLEndpoint",
]
