"""SPARQL engine substrate (parser, evaluator, endpoint, UDF registry)."""

from repro.sparql.tokenizer import Token, tokenize
from repro.sparql.parser import SPARQLParser, parse, parse_query, parse_update
from repro.sparql.evaluator import (
    QueryEvaluator,
    QueryPlan,
    estimate_pattern_cardinality,
    reorder_patterns,
)
from repro.sparql.execution import ExecutionContext, StreamingResult
from repro.sparql.reference import ReferenceQueryEvaluator
from repro.sparql.functions import (
    EvaluationContext,
    OpaqueValue,
    UDFRegistry,
    effective_boolean_value,
    evaluate_expression,
)
from repro.sparql.results import ResultSet, Solution
from repro.sparql.endpoint import PlanCache, QueryStatistics, SPARQLEndpoint

__all__ = [
    "Token",
    "tokenize",
    "SPARQLParser",
    "parse",
    "parse_query",
    "parse_update",
    "QueryEvaluator",
    "QueryPlan",
    "ExecutionContext",
    "StreamingResult",
    "ReferenceQueryEvaluator",
    "estimate_pattern_cardinality",
    "reorder_patterns",
    "EvaluationContext",
    "OpaqueValue",
    "UDFRegistry",
    "effective_boolean_value",
    "evaluate_expression",
    "ResultSet",
    "Solution",
    "PlanCache",
    "QueryStatistics",
    "SPARQLEndpoint",
]
